"""Ablations over the design choices DESIGN.md calls out.

* **Closed-form coll() vs event simulation**: the cascade closed form
  (S3) replaces the O(n²)-event engine for perceptive basic rounds; the
  ablation runs the same pipeline with cross-validation forced on (both
  engines per round) and measures the slowdown the fast path avoids.
* **Restoring probes**: protocols pair every information round with a
  REVERSEDROUND so discovery runs in the initial frame.  The ablation
  measures the probe overhead factor (exactly 2x on zero-rotation
  probes) and verifies the restored invariant is what the LD phases
  actually rely on.
* **Relay frame width**: the 1-bit channel spends 8·(width+1) rounds
  per hop; the ablation sweeps the width to expose the linear law and
  justify the compact frames RingDist uses.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

import time

from repro.core.scheduler import Scheduler
from repro.protocols.bitcomm import relay_flood
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.rotation_probe import probe_zero
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model


def test_ablation_closed_form_vs_event_engine(once):
    """Fast path vs full cross-validation on an identical workload."""

    def run(cross_validate: bool) -> float:
        state = random_configuration(24, seed=9, common_sense=False)
        sched = Scheduler(
            state, Model.PERCEPTIVE, cross_validate=cross_validate
        )
        discover_neighbors(sched)
        start = time.perf_counter()
        for _ in range(3):
            discover_neighbors(sched)
        return time.perf_counter() - start

    def measure():
        return {"closed_form": run(False), "cross_validated": run(True)}

    results = once(measure)
    print("\nclosed-form vs event-engine wall time (3x neighbor discovery):",
          {k: f"{v:.3f}s" for k, v in results.items()})
    # The closed form must win; the margin is the ablation's point.
    assert results["closed_form"] < results["cross_validated"]


def test_ablation_restoring_probes(once):
    """Restoring doubles probe cost and is what keeps positions fixed."""

    from fractions import Fraction

    from repro.ring.configs import explicit_configuration
    from repro.types import Chirality

    def lopsided_ring():
        # 7 clockwise vs 3 anticlockwise chiralities: the all-RIGHT
        # probe rotates by (7 - 3) mod 10 = 4 places.
        n = 10
        return explicit_configuration(
            positions=[Fraction(i, n) for i in range(n)],
            ids=list(range(1, n + 1)),
            chiralities=[
                Chirality.CLOCKWISE if i < 7 else Chirality.ANTICLOCKWISE
                for i in range(n)
            ],
            id_bound=2 * n,
        )

    def measure():
        out = {}
        for restore in (False, True):
            state = lopsided_ring()
            sched = Scheduler(state, Model.BASIC)
            start = state.snapshot()
            probe_zero(
                sched, lambda view: LocalDirection.RIGHT, restore=restore
            )
            out[restore] = {
                "rounds": sched.rounds,
                "restored": state.snapshot() == start,
            }
        return out

    results = once(measure)
    print("\nrestoring-probe ablation:", results)
    assert results[True]["rounds"] == 2 * results[False]["rounds"]
    assert results[True]["restored"] is True
    # The all-RIGHT probe on a mixed-chirality ring rotates the ring;
    # without restoration positions drift.
    assert results[False]["restored"] is False


def test_ablation_relay_width(once):
    """Relay cost is linear in the frame width: 8·(width+1) per hop."""

    def measure():
        state = random_configuration(10, seed=6, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        source = state.ids[0]
        costs = {}
        for width in (1, 4, 8):
            before = sched.rounds
            relay_flood(
                sched,
                lambda view: 1 if view.agent_id == source else None,
                distance=2,
                width=width,
            )
            costs[width] = sched.rounds - before
        return costs

    costs = once(measure)
    print("\nrelay rounds by frame width (distance 2):", costs)
    for width, rounds in costs.items():
        assert rounds == 8 * (width + 1) * 2
