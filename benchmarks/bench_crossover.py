"""Crossover study: where each model's location discovery wins.

The paper's tables imply, but never plot, the relative ordering of the
three models' total LD costs as n grows.  This bench measures it:

* the *discovery phase* ordering is immediate -- perceptive (n/2 + 3)
  beats lazy/basic (n) for every n > 6 -- and exact;
* the *total* cost ordering flips with n, because the perceptive
  coordination machinery (neighbor discovery, RingDist relays) has a
  large O(√n log N) constant while the lazy pipeline's overhead is a
  few dozen rounds: lazy wins small rings, and the perceptive total
  approaches n/2 + o(n) only once √n·log N ≪ n/2.

The measured series quantifies where our implementation's crossover
falls, which EXPERIMENTS.md reports as the reproduction's "who wins
where" statement.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.experiments import render_table
from repro.experiments.harness import ExperimentRow
from repro.api.session import RingSession
from repro.ring.configs import random_configuration
from repro.types import Model


def _measure(n: int, model: Model, seed: int = 4) -> dict:
    state = random_configuration(n, seed=seed, common_sense=False)
    result = RingSession.from_state(state, model=model).run(
        "location-discovery"
    )
    return {
        "total": result.rounds,
        "discovery": result.rounds_by_phase["discovery"],
    }


def test_discovery_phase_ordering(once):
    """Perceptive discovery beats the dist()-only sweeps at every even
    size; the ratio approaches exactly 1/2."""

    def sweep():
        rows = []
        for n in (8, 16, 32, 64):
            lazy = _measure(n, Model.LAZY)
            perceptive = _measure(n, Model.PERCEPTIVE)
            rows.append(ExperimentRow(
                label="discovery phase",
                params={"n": n},
                measured={
                    "lazy": lazy["discovery"],
                    "perceptive": perceptive["discovery"],
                },
                reference={"ratio_limit": 0.5},
            ))
        return rows

    rows = once(sweep)
    print("\n" + render_table(rows, "CROSSOVER -- discovery phase rounds"))
    for r in rows:
        n = r.params["n"]
        assert r.measured["lazy"] == n
        assert r.measured["perceptive"] == n // 2 + 3
        if n >= 8:
            assert r.measured["perceptive"] < r.measured["lazy"]
    big = rows[-1]
    ratio = big.measured["perceptive"] / big.measured["lazy"]
    assert ratio < 0.6  # approaching 1/2


def test_total_cost_crossover_location(once):
    """Totals: lazy wins small rings (tiny coordination overhead); the
    perceptive total's *sub-discovery* overhead is O(√n log N), so its
    per-agent cost falls as rings grow while the gap to lazy narrows."""

    def sweep():
        rows = []
        for n in (8, 16, 32, 64):
            lazy = _measure(n, Model.LAZY)
            perceptive = _measure(n, Model.PERCEPTIVE)
            rows.append(ExperimentRow(
                label="total rounds",
                params={"n": n},
                measured={
                    "lazy": lazy["total"],
                    "perceptive": perceptive["total"],
                    "perceptive_overhead": (
                        perceptive["total"] - perceptive["discovery"]
                    ),
                },
            ))
        return rows

    rows = once(sweep)
    print("\n" + render_table(rows, "CROSSOVER -- total rounds"))
    # Lazy wins at every laptop-scale size (its overhead is ~constant).
    for r in rows:
        assert r.measured["lazy"] < r.measured["perceptive"]
    # But the perceptive overhead is sublinear: overhead/n shrinks.
    overhead_per_n = [
        r.measured["perceptive_overhead"] / r.params["n"] for r in rows
    ]
    assert overhead_per_n[-1] < overhead_per_n[0]
    # Extrapolation witness: at the last size the overhead growth factor
    # per doubling has dropped well below 2 (≈ √2·(width growth)), so
    # the perceptive total must eventually cross below n + O(log N).
    growth = [
        rows[i + 1].measured["perceptive_overhead"]
        / rows[i].measured["perceptive_overhead"]
        for i in range(len(rows) - 1)
    ]
    print("overhead growth per doubling:", [round(g, 2) for g in growth])
    assert growth[-1] < 2.0
