"""E9: Lemma 5 (unsolvability) and Lemma 6 (round floors).

* Lemma 5: exhaustive witness that every basic round with even n has an
  even rotation index, and the pipeline raises InfeasibleProblemError.
* Lemma 6: measured discovery phases against the n-1 / n/2 information
  floors -- our implementations sit within o(n) of them.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.exceptions import InfeasibleProblemError
from repro.experiments import render_table
from repro.experiments.lower_bounds import lemma5_witness, lemma6_floors
from repro.api.session import RingSession
from repro.ring.configs import random_configuration
from repro.types import Model


def test_lemma5_unsolvability(once):
    row = once(lambda: lemma5_witness(n=8))
    print("\n" + render_table([row], "LEMMA 5 -- parity witness"))
    assert row.measured["rotation_parities"] == [0]
    state = random_configuration(8, seed=0, common_sense=False)
    with pytest.raises(InfeasibleProblemError):
        RingSession.from_state(state, model=Model.BASIC).run(
            "location-discovery"
        )


def test_lemma6_discovery_floors(once):
    rows = once(lambda: lemma6_floors(seed=1))
    print("\n" + render_table(rows, "LEMMA 6 -- location discovery floors"))
    for r in rows:
        measured = r.measured["discovery_rounds"]
        floor = r.reference["floor"]
        assert measured >= floor, (
            f"{r.label}: {measured} rounds beats the information floor "
            f"{floor} -- impossible; the harness is leaking information"
        )
        # Optimality up to o(n): within a small additive constant here.
        assert measured <= floor + 4


def test_lemma6_perceptive_halves_the_floor(once):
    """The perceptive discovery phase drops below the dist()-only floor
    n - 1: collision information really is worth a factor 2."""

    def measure():
        out = {}
        for n in (16, 32, 64):
            state = random_configuration(n, seed=2, common_sense=False)
            result = RingSession.from_state(
                state, model=Model.PERCEPTIVE
            ).run("location-discovery")
            out[n] = result.rounds_by_phase["discovery"]
        return out

    phases = once(measure)
    print("\nperceptive discovery rounds vs dist()-only floor:",
          {n: (c, n - 1) for n, c in phases.items()})
    for n, cost in phases.items():
        assert cost == n // 2 + 3
        assert cost < n - 1
