"""E1-E4: regenerate Table I (deterministic solutions, general setting).

Each test sweeps ring sizes for one row of Table I, prints the measured
rounds next to the paper's bound, and asserts the row's qualitative
claims: O(1)/O(log) cells stay flat or logarithmic, the even-n basic
and lazy cells stay bounded by the Θ(n log(N/n)/log n) budget, the
perceptive cells beat it, and Lemma 5's unsolvability holds.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.combinatorics import bounds
from repro.experiments import render_table
from repro.experiments.table1 import (
    row_basic_even,
    row_lazy_even,
    row_odd_n,
    row_perceptive_even,
)

ODD_SIZES = (9, 17, 33, 65)
EVEN_SIZES = (8, 16, 32, 64)


def test_table1_odd_n(once):
    rows = once(lambda: [row_odd_n(n, seed=1) for n in ODD_SIZES])
    print("\n" + render_table(rows, "TABLE I -- row 'odd n'"))
    for r in rows:
        n, big_n = r.params["n"], r.params["N"]
        assert r.measured["dir_agree"] == 4  # O(1)
        assert r.measured["leader"] <= 8 * bounds.log_n_bound(big_n)
        assert r.measured["nmove"] <= 4 * (bounds.log_ratio_bound(big_n, n) + 3)
        # LD = n + O(log N): the additive overhead is logarithmic.
        assert r.measured["ld"] - n <= 30 * bounds.log_n_bound(big_n)


def test_table1_basic_even(once):
    rows = once(lambda: [row_basic_even(n, seed=1) for n in EVEN_SIZES])
    print("\n" + render_table(rows, "TABLE I -- row 'basic model, even n'"))
    for r in rows:
        n, big_n = r.params["n"], r.params["N"]
        budget = 8 * bounds.coordination_even_bound(big_n, n) + 40
        assert r.measured["nmove"] <= budget
        assert r.measured["leader"] <= budget
        assert r.measured["dir_agree"] <= budget
        assert r.measured["ld"] == "not solvable"


def test_table1_lazy_even(once):
    rows = once(lambda: [row_lazy_even(n, seed=1) for n in EVEN_SIZES])
    print("\n" + render_table(rows, "TABLE I -- row 'lazy model, even n'"))
    for r in rows:
        n, big_n = r.params["n"], r.params["N"]
        budget = 8 * bounds.coordination_even_bound(big_n, n) + 40
        assert r.measured["nmove"] <= budget
        # LD = n + coordination overhead.
        assert r.measured["ld"] - n <= budget


def test_table1_perceptive_even(once):
    rows = once(lambda: [row_perceptive_even(n, seed=1) for n in EVEN_SIZES])
    print("\n" + render_table(rows, "TABLE I -- row 'perceptive, even n'"))
    for r in rows:
        n, big_n = r.params["n"], r.params["N"]
        # NMoveS stays within the O(√n log N) budget...
        assert r.measured["nmove"] <= 40 * bounds.nmove_perceptive_bound(
            big_n, n
        )
        # ...and the discovery phase is exactly n/2 + 3: the paper's
        # headline halving of the n-round dist()-only bound.
        assert r.measured["ld_discovery_phase"] == n // 2 + 3
    # Crossover claim: for large n the perceptive *total* beats the
    # dist()-only information floor of n - 1 rounds in the discovery
    # phase itself.
    big = rows[-1]
    assert big.measured["ld_discovery_phase"] < big.params["n"] - 1
