"""E12: simulator validation and throughput (Lemma 1 / Prop 4 substrate).

Not a paper table, but the substrate every experiment stands on: the
closed-form kinematics (rotation index, first-collision cascades) must
agree with the exact event-driven simulation, and the closed form must
be fast enough to carry the protocol suite.

This module also runs the kinematics-backend shootout (integer lattice
vs. exact Fractions, identical 64-agent perceptive workloads) and
writes the machine-readable ``BENCH_simulator.json`` report to the repo
root, so successive PRs can track the performance trajectory.
"""

from __future__ import annotations

import json
import random
from fractions import Fraction
from pathlib import Path

from repro.experiments.harness import backend_shootout
from repro.ring.collisions import (
    simulate_collisions,
    simulate_collisions_ticks,
)
from repro.ring.configs import random_configuration
from repro.ring.kinematics import (
    closed_form_round,
    first_collisions_basic,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _random_round(n: int, seed: int):
    rng = random.Random(seed)
    denom = 1 << 16
    ticks = sorted(rng.sample(range(denom), n))
    positions = [Fraction(t, denom) for t in ticks]
    velocities = [rng.choice((-1, 1)) for _ in range(n)]
    return positions, velocities


def test_event_sim_cross_validation(once):
    """Exhaustive agreement between both engines on random rounds."""

    def validate():
        checked = 0
        for seed in range(40):
            n = 4 + (seed % 12)
            pos, vel = _random_round(n, seed)
            traces, _ = simulate_collisions(pos, vel)
            closed = first_collisions_basic(pos, vel)
            assert [t.coll_distance for t in traces] == closed
            final, r = closed_form_round(pos, vel)
            assert [t.final_position for t in traces] == final
            checked += 1
        return checked

    checked = once(validate)
    print(f"\ncross-validated {checked} random rounds (coll + rotation)")
    assert checked == 40


def test_closed_form_throughput(benchmark):
    """Throughput of the per-round closed form at n = 256."""
    pos, vel = _random_round(256, seed=1)

    def run():
        return first_collisions_basic(pos, vel)

    result = benchmark(run)
    assert len(result) == 256


def test_event_sim_throughput(benchmark):
    """Throughput of the exact event simulation at n = 64 (the engine
    behind lazy rounds and cross-validation)."""
    pos, vel = _random_round(64, seed=2)

    def run():
        return simulate_collisions(pos, vel)

    traces, events = benchmark(run)
    assert len(traces) == 64
    assert events > 0


def test_event_sim_ticks_throughput(benchmark):
    """Throughput of the integer tick-space event engine on the same
    round as :func:`test_event_sim_throughput`, with an agreement check
    against the Fraction engine."""
    pos, vel = _random_round(64, seed=2)
    denom = 1 << 16
    ring_ticks = 4 * denom
    coords = [int(p * ring_ticks) for p in pos]

    def run():
        return simulate_collisions_ticks(coords, vel, ring_ticks)

    traces, events = benchmark(run)
    ref_traces, ref_events = simulate_collisions(pos, vel)
    assert events == ref_events
    assert [Fraction(t.final_coord, ring_ticks) for t in traces] == [
        t.final_position for t in ref_traces
    ]
    assert [
        None if t.coll_ticks is None else Fraction(t.coll_ticks, ring_ticks)
        for t in traces
    ] == [t.coll_distance for t in ref_traces]


def test_backend_shootout_perceptive_64(once):
    """The PR-gating perf target: the integer-lattice backend must beat
    the Fraction backend >= 5x on a 64-agent perceptive workload, with
    bit-exact agreement (checked inside the shootout).  Writes the
    machine-readable report to BENCH_simulator.json."""
    report = once(lambda: backend_shootout(n=64, rounds=256, seed=11))
    print("\nbackend shootout:", json.dumps(report["seconds"]),
          f"speedup={report['speedup_lattice_over_fraction']}x")
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact"] is True
    assert report["speedup_lattice_over_fraction"] >= 5.0


def test_full_pipeline_throughput(benchmark):
    """Wall-clock of a complete perceptive LD solve at n = 32."""
    from repro.api.session import RingSession
    from repro.types import Model

    def run():
        state = random_configuration(32, seed=7, common_sense=False)
        return RingSession.from_state(state, model=Model.PERCEPTIVE).run(
            "location-discovery"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.rounds_by_phase["discovery"] == 19
