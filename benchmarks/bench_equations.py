"""Fraction-free equation engine shootout on the analysis hot paths.

The data-dependent phases spend their time in exact linear algebra:
Algorithm 6 feeds every round's dist/coll observations into per-agent
equation systems, and the LD sweeps accumulate per-round gap columns.
Both used to materialise a ``Fraction`` per cell and eliminate over the
field.  This PR's ``IntEquationSystem`` runs Bareiss-style fraction-free
elimination on integer numerators over the backends' shared
denominator, and the columnar ``_GapHarvest`` keeps the sweep harvest
as an int matrix with Fractions materialised only on read.

This module times ``engine="int"`` (the default auto path) against
``engine="fraction"`` (the untouched spec engines) on the identical
native array-backend workload, with bit-exact agreement -- exact
``Fraction`` equality on every agent's gap vector -- enforced at every
size before any timing, and writes the machine-readable
``BENCH_equations.json`` report to the repo root.

Runs in the ``--bench-fast`` smoke suite (not ``bench_heavy``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import equations_shootout

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_equations.json"
)

#: Floor for the headline int-over-Fraction speedup on Algorithm 6 at
#: the largest benched n.  Elimination cost grows ~n^3 while the
#: fraction-free rows stay machine ints, so the ratio widens with n;
#: 3x at n=96 is well under the measured margin.
MIN_DISTANCES_SPEEDUP_AT_LARGEST = 3.0

#: Smaller distances sizes still beat the spec engine, but the shared
#: schedule/simulation work dilutes the ratio.
MIN_DISTANCES_SPEEDUP_FLOOR = 1.2

#: The sweeps' harvest is a smaller slice of each round, so the floor
#: only gates "the columnar harvest never loses".
MIN_SWEEPS_SPEEDUP_FLOOR = 1.0

#: Without numpy both engines run over stdlib buffers; int arithmetic
#: still wins but the margin narrows, so the fallback axis only gates
#: "no regression" (bit-exactness stays a hard gate on both axes).
MIN_SPEEDUP_FALLBACK = 0.8


def test_equations_shootout(once):
    """Distances at 24/48/96 + sweeps at 256/1024: bit-exact agreement
    between the int and Fraction engines is a hard gate at every size;
    the speedup gates apply when numpy is available (the committed
    report is generated with numpy)."""
    report = once(lambda: equations_shootout())
    for kind in ("distances", "sweeps"):
        for row in report[kind]:
            print(
                f"\nequations shootout {kind} n={row['n']}: "
                f"{json.dumps(row['seconds'])} "
                f"speedup={row['speedup_int_over_fraction']}x"
            )
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact"] is True
    # The cross-engine fingerprint checks really ran at every size.
    checked = report["workload"]["bit_exact_checked_at"]
    assert checked["distances"] == [24, 48, 96]
    assert checked["sweeps"] == [256, 1024]
    dist_by_n = {row["n"]: row for row in report["distances"]}
    sweep_by_n = {row["n"]: row for row in report["sweeps"]}
    assert set(dist_by_n) == {24, 48, 96}
    assert set(sweep_by_n) == {256, 1024}
    if report["numpy"] is not None:
        assert (
            dist_by_n[96]["speedup_int_over_fraction"]
            >= MIN_DISTANCES_SPEEDUP_AT_LARGEST
        )
        dist_floor = MIN_DISTANCES_SPEEDUP_FLOOR
        sweep_floor = MIN_SWEEPS_SPEEDUP_FLOOR
    else:
        dist_floor = sweep_floor = MIN_SPEEDUP_FALLBACK
    for row in report["distances"]:
        assert row["speedup_int_over_fraction"] >= dist_floor
    for row in report["sweeps"]:
        assert row["speedup_int_over_fraction"] >= sweep_floor
