"""Benchmark harness configuration.

Every benchmark in this directory regenerates one table or figure of
the paper: it runs the relevant experiment driver once under
pytest-benchmark timing, prints the rendered table (captured in the
bench log), records the measured round counts in ``extra_info``, and
asserts the paper's qualitative shape (who wins, how cells scale).

Smoke mode: ``python -m pytest benchmarks -q --bench-fast`` skips every
module marked ``bench_heavy`` (the multi-minute table/figure sweeps)
and runs only the fast substrate benchmarks -- including the backend
shootout that writes ``BENCH_simulator.json`` -- so CI can track the
performance trajectory cheaply.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-fast",
        action="store_true",
        default=False,
        help="run only the quick smoke benchmarks (skip bench_heavy)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "bench_heavy: long-running table/figure regeneration; skipped "
        "under --bench-fast",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list
) -> None:
    if not config.getoption("--bench-fast"):
        return
    skip = pytest.mark.skip(reason="--bench-fast smoke mode")
    for item in items:
        if item.get_closest_marker("bench_heavy"):
            item.add_marker(skip)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under timing (pipelines are deterministic,
    so repeated timing iterations only waste bench time)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
