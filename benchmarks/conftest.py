"""Benchmark harness configuration.

Every benchmark in this directory regenerates one table or figure of
the paper: it runs the relevant experiment driver once under
pytest-benchmark timing, prints the rendered table (captured in the
bench log), records the measured round counts in ``extra_info``, and
asserts the paper's qualitative shape (who wins, how cells scale).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under timing (pipelines are deterministic,
    so repeated timing iterations only waste bench time)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
