"""E7: regenerate Figure 2 -- reductions in the basic model, even n.

The constructive triangle replaces the O(log N) direction-agreement ->
leader edge with O(log² N) (emptiness-test bisection, Lemma 13); the
nonconstructive variant (Lemma 15, realised by the published random
sequence) keeps O(log N)-expected probing.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.combinatorics import bounds
from repro.core.scheduler import Scheduler
from repro.experiments import render_table
from repro.experiments.harness import ExperimentRow
from repro.protocols.direction_agreement import assume_common_frame
from repro.protocols.leader_election import elect_leader_common_sense
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.ring.configs import random_configuration
from repro.types import Model


def constructive_edge(n: int, seed: int) -> ExperimentRow:
    state = random_configuration(n, seed=seed, common_sense=True)
    sched = Scheduler(state, Model.BASIC)
    assume_common_frame(sched)
    elect_leader_common_sense(sched)
    return ExperimentRow(
        label="constructive: dir agreement -> leader (basic, even)",
        params={"n": n, "N": state.id_bound},
        measured={"rounds": sched.rounds},
        reference={"rounds": bounds.log_squared_bound(state.id_bound)},
    )


def nonconstructive_edge(n: int, seed: int) -> ExperimentRow:
    state = random_configuration(n, seed=seed, common_sense=True)
    sched = Scheduler(state, Model.BASIC)
    assume_common_frame(sched)
    nmove_seeded_family(sched)
    return ExperimentRow(
        label="nonconstructive: dir agreement -> nontrivial move",
        params={"n": n, "N": state.id_bound},
        measured={"rounds": sched.rounds},
        reference={"rounds": bounds.log_n_bound(state.id_bound)},
    )


def test_fig2_constructive_vs_nonconstructive(once):
    def sweep():
        rows = []
        for n in (8, 16, 32):
            rows.append(constructive_edge(n, seed=1))
            rows.append(nonconstructive_edge(n, seed=1))
        return rows

    rows = once(sweep)
    print("\n" + render_table(
        rows, "FIGURE 2 -- basic model (even n) reduction variants"
    ))
    for r in rows:
        big_n = r.params["N"]
        if r.label.startswith("constructive"):
            assert r.measured["rounds"] <= 10 * bounds.log_squared_bound(big_n)
        else:
            # The published-sequence probe succeeds within a handful of
            # candidate rounds on random instances.
            assert r.measured["rounds"] <= 8 * bounds.log_n_bound(big_n)

    # The figure's point: the constructive edge costs strictly more.
    for n in (16, 32):
        cons = next(
            r for r in rows
            if r.params["n"] == n and r.label.startswith("constructive")
        )
        noncons = next(
            r for r in rows
            if r.params["n"] == n and r.label.startswith("nonconstructive")
        )
        assert cons.measured["rounds"] > noncons.measured["rounds"]
