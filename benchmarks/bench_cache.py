"""Run-store benchmark: warm fetches and sweep dedup vs. recompute.

Deterministic runs make results pure functions of their
backend-independent spec, so the content-addressed run store
(:mod:`repro.store`) can serve a repeated sweep without recomputing a
single round.  This module runs the cache shootout -- an 8-ring
location-discovery sweep fetched warm vs. recomputed, plus a
4-distinct x 4-duplicate sweep deduplicated against a fresh store --
and writes the machine-readable ``BENCH_cache.json`` report to the
repo root next to ``BENCH_fleet.json``.

Bit-exactness is a hard gate enforced *before* any timing (inside
:func:`~repro.experiments.harness.cache_shootout`): fetched payloads
must equal recomputed ones, and a fraction-backend / callback-driver
variant sweep must be served by the very same entries -- the key's
backend-independence in action.  The speedup gates are deliberately
conservative: a warm fetch skips the whole simulation, so anything
under 20x would mean the store itself got expensive; intra-sweep dedup
of a 4-duplicate sweep computes a quarter of the work, so it must win
>= 1.5x even with store overhead.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import cache_shootout

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def test_cache_shootout_warm_and_dedup(once):
    """Warm fetches >= 20x over recompute; 4-dupe sweep dedup >= 1.5x;
    bit-identity enforced before any timed region."""
    report = once(lambda: cache_shootout(sessions=8, n=16, dupes=4))
    print("\ncache shootout:", json.dumps(report["seconds"]),
          f"warm={report['warm_speedup']}x "
          f"dedup={report['dedup_speedup']}x")
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact"] is True
    assert report["entries"] == 8
    # A warm hit replaces an entire protocol run with a store read.
    assert report["warm_speedup"] >= 20.0
    # 4 duplicates per key: a quarter of the compute, so the dedup
    # path must clearly beat recomputing every row.
    assert report["dedup_speedup"] >= 1.5
