"""Fleet execution benchmark: warm process pools vs. serial.

The Fleet runner executes independent sessions across the persistent
warm pools of :mod:`repro.parallel`: pools are spawned once and reused,
spec and result payloads travel through shared-memory slots, and
:meth:`~repro.api.fleet.Fleet.warm` runs before the timed repeats so
pool spin-up never lands in a timed region (the historic
``BENCH_fleet.json`` regression -- 0.83x "speedup" -- was exactly that
spin-up being timed).  This module runs the fleet shootout -- a 16-ring
location-discovery sweep, serial vs. the warm pools along a
per-worker-count scaling curve, bit-identical results enforced -- and
writes the machine-readable ``BENCH_fleet.json`` report to the repo
root so successive PRs can track the scaling trajectory next to
``BENCH_simulator.json``.

The speedup gate is honest about hardware: with 2+ CPUs the warm pool
must deliver real parallel speedup (>= 1.5x); on a single-CPU host it
only has to stay at least even with serial (>= 0.95x -- the pool adds
nothing but must no longer cost anything either).  ``cpu_count`` is
recorded in the report either way.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.harness import fleet_shootout

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def test_fleet_shootout_16_rings(once):
    """16 rings, warm pools at 1/2/4 workers: determinism is a hard
    gate everywhere; the parallel-speedup gate applies where the
    hardware can express it."""
    report = once(lambda: fleet_shootout(sessions=16, n=24, workers=4))
    print("\nfleet shootout:", json.dumps(report["seconds"]),
          f"speedup={report['parallel_speedup']}x "
          f"(cpus={report['cpu_count']})")
    print("scaling:", json.dumps(report["scaling"]))
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["deterministic_across_executors"] is True
    assert report["warm_pool"] is True
    assert [row["workers"] for row in report["scaling"]] == [1, 2, 4]
    # Every scaling row records the host CPU count so a single row
    # quoted out of context still reads honestly.
    assert all(row["cpu_count"] == (os.cpu_count() or 1)
               for row in report["scaling"])
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # Warm pools must deliver real parallel speedup on multicore.
        assert report["parallel_speedup"] >= 1.5
    else:
        # Single CPU: the pool cannot win, but with spin-up excluded
        # and zero-copy payloads it must at least break even.
        assert report["parallel_speedup"] >= 0.95
