"""Fleet execution benchmark: parallel ring sweeps vs. serial.

The Fleet runner executes independent sessions across a process pool;
on multicore hosts that is where throughput now comes from (the lattice
backend already owns the single-ring hot path).  This module runs the
fleet shootout -- a 16-ring location-discovery sweep, serial vs. a
4-worker pool, bit-identical results enforced -- and writes the
machine-readable ``BENCH_fleet.json`` report to the repo root so
successive PRs can track the scaling trajectory next to
``BENCH_simulator.json``.

The speedup gate is honest about hardware: process parallelism cannot
beat serial on a single-CPU host (the report still lands, with
``cpu_count`` recorded); with 2+ CPUs the pool must win.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.harness import fleet_shootout

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def test_fleet_shootout_16_rings(once):
    """16 rings x 4 workers: determinism is a hard gate everywhere; the
    parallel-speedup gate applies where the hardware can express it."""
    report = once(lambda: fleet_shootout(sessions=16, n=24, workers=4))
    print("\nfleet shootout:", json.dumps(report["seconds"]),
          f"speedup={report['parallel_speedup']}x "
          f"(cpus={report['cpu_count']})")
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["deterministic_across_executors"] is True
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # The pool must deliver real parallel speedup on multicore.
        assert report["parallel_speedup"] >= 1.3
    else:
        # Single CPU: only guard against pathological pool overhead.
        assert report["parallel_speedup"] >= 0.5
