"""Array-backend vs lattice-backend shootout on large rings.

PR 1 made round arithmetic integer (lattice backend) and PR 3 made
protocol decisions whole-population (native policies), but the lattice
backend still advances one round at a time and materialises per-agent
observations every round, so n >= 10^4 rings stay Python-loop-bound.
The array backend executes *fused stretches* -- probe/restore pairs,
bit-exchange frames -- as single closed-form vectorised steps over
numpy columns, materialising per-agent objects only when read.  This
module times the two backends on the identical workload (deterministic
rotation probes + neighbor discovery + sparse relay flood, the paper's
hot probe/communication phases) across an n sweep, with bit-exact
agreement enforced before any timing (against the exact Fraction
backend at the smallest size), and writes the machine-readable
``BENCH_array.json`` report to the repo root so successive PRs can
track the trajectory next to the other ``BENCH_*.json`` reports.

Runs in the ``--bench-fast`` smoke suite (not ``bench_heavy``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import array_shootout

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_array.json"

#: Floor for the headline (n = 16384) array-over-lattice speedup.  Both
#: backends run the same rounds in the same process, so the ratio is
#: pure execution-layer overhead and holds on any host; measured values
#: are far higher, the gate leaves slack for noisy CI neighbors.
MIN_SPEEDUP_AT_16384 = 3.0

#: Floor at the smallest swept size: fused execution must already pay
#: for its own bookkeeping at n = 1024.
MIN_SPEEDUP_AT_1024 = 1.2


#: Without numpy the fused path degrades to stdlib-array buffers at
#: roughly lattice speed; the sweep then only gates "no regression"
#: (bit-exactness stays a hard gate on both axes).
MIN_SPEEDUP_FALLBACK = 0.8


def test_array_shootout_n_sweep(once):
    """1024/4096/16384-agent sweep: determinism is a hard gate; the
    speedup gates apply at the smallest and largest sizes when numpy is
    available (the committed report is generated with numpy)."""
    report = once(lambda: array_shootout(sizes=(1024, 4096, 16384)))
    for row in report["sweep"]:
        print(
            f"\narray shootout n={row['n']}: {json.dumps(row['seconds'])} "
            f"speedup={row['speedup_array_over_lattice']}x"
        )
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact"] is True
    # The Fraction cross-check really ran, at the smallest size.
    assert report["workload"]["fraction_checked_at"] == 1024
    by_n = {row["n"]: row for row in report["sweep"]}
    assert set(by_n) == {1024, 4096, 16384}
    if report["numpy"] is not None:
        assert (
            by_n[16384]["speedup_array_over_lattice"]
            >= MIN_SPEEDUP_AT_16384
        )
        assert (
            by_n[1024]["speedup_array_over_lattice"] >= MIN_SPEEDUP_AT_1024
        )
        floor = 1.0  # vectorised execution must never lose outright
    else:
        floor = MIN_SPEEDUP_FALLBACK
    for row in report["sweep"]:
        assert row["speedup_array_over_lattice"] >= floor
