"""Sharded single-ring benchmark: one large ring, several workers.

:func:`repro.experiments.harness.shard_shootout` runs identical fused
spans through the serial :class:`~repro.ring.backends.ArrayBackend` and
the sharded :class:`~repro.parallel.shard.ShardedArrayBackend` over a
ring-size sweep, enforcing bit-exactness (a sha256 digest over the
rotation schedule, final offset, and every dist/coll column) on an
untimed check span *before* any timing runs.  The full sweep reaches
``n = 10**6`` agents and writes the machine-readable
``BENCH_shard.json`` to the repo root; under ``--bench-fast`` a small
sweep exercises the same path (including the bit-exactness gate)
without touching the committed report.

The speedup gate is hardware-conditional like the fleet bench: with
2+ CPUs the sharded path must win at the largest n (where the span
arithmetic dwarfs the IPC and copy-out overhead); on a single-CPU box
sharding is pure overhead by construction, so the gate is only a
sanity floor that catches pathological serialisation, not a win.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.harness import shard_shootout

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

#: Committed full sweep: spans at 10**6 agents take multi-second serial
#: times, so parallel wins are measurable well above timer noise.
FULL_SIZES = (65536, 262144, 1048576)
#: Smoke sweep: large enough to clear the shard thresholds, small
#: enough for CI.
FAST_SIZES = (16384, 65536)


def test_shard_shootout(once, pytestconfig):
    """Serial vs. sharded fused spans, bit-exact before timing."""
    from repro.ring.arrayops import get_numpy

    if get_numpy() is None:
        import pytest

        pytest.skip("sharding extends the array backend (needs numpy)")
    fast = pytestconfig.getoption("--bench-fast")
    sizes = FAST_SIZES if fast else FULL_SIZES
    rounds = 16 if fast else 48
    repeats = 2 if fast else 3
    report = once(lambda: shard_shootout(
        sizes=sizes, shards=4, rounds=rounds, repeats=repeats,
    ))
    for row in report["results"]:
        print(f"\nn={row['n']}: serial={row['seconds']['serial']}s "
              f"sharded={row['seconds']['sharded']}s "
              f"speedup={row['speedup']}x")
    if not fast:
        BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact_before_timing"] is True
    assert all(row["bit_exact"] for row in report["results"])
    cpus = os.cpu_count() or 1
    speedup = report["speedup_at_largest_n"]
    if cpus >= 2:
        # Real parallel hardware: sharding must pay for its IPC at the
        # largest ring (smoke rings are smaller, so the bar is lower).
        assert speedup >= (1.1 if fast else 1.5)
    else:
        # Single CPU: four processes time-slicing one core plus the
        # copy-out can only lose; gate against pathological collapse.
        assert speedup >= 0.25
