"""E6: regenerate Figure 1 -- reduction costs among coordination
problems (odd n / lazy / perceptive settings).

The figure annotates the triangle leader election <-> nontrivial move
<-> direction agreement with O(1) and O(log N) edges; we measure every
edge with its precondition granted and assert the annotation.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.combinatorics import bounds
from repro.experiments import render_table
from repro.experiments.figures import reduction_edges


def test_fig1_reduction_edges(once):
    rows = once(lambda: reduction_edges(n=12, seed=1))
    print("\n" + render_table(rows, "FIGURE 1 -- reduction edges"))
    by_label = {r.label: r for r in rows}

    # O(1) edges.
    assert by_label["leader -> nontrivial move"].measured["rounds"] <= 8
    assert by_label[
        "nontrivial move -> direction agreement"
    ].measured["rounds"] <= 4
    assert by_label["leader -> direction agreement"].measured["rounds"] <= 12

    # O(log N) edges.
    big_n = rows[0].params["N"]
    log_budget = 4 * bounds.log_n_bound(big_n)
    assert by_label[
        "nontrivial move -> leader election"
    ].measured["rounds"] <= log_budget
    assert by_label[
        "direction agreement -> leader (lazy)"
    ].measured["rounds"] <= log_budget


def test_fig1_edges_scale_logarithmically(once):
    """Doubling N adds a constant number of rounds to the log edges."""

    def sweep():
        return {n: reduction_edges(n=n, seed=1) for n in (8, 16, 32)}

    results = once(sweep)
    leader_edge = "nontrivial move -> leader election"
    costs = []
    for n, rows in sorted(results.items()):
        row = next(r for r in rows if r.label == leader_edge)
        costs.append((row.params["N"], row.measured["rounds"]))
    print("\nN -> rounds for", leader_edge, ":", costs)
    # rounds = 2 * ceil(log2 N): each doubling adds exactly 2.
    for (n1, c1), (n2, c2) in zip(costs, costs[1:]):
        assert c2 - c1 <= 4
