"""E10: distinguisher sizes (Lemma 23, Theorem 27, Corollary 29).

The combinatorial heart of the paper's lower bounds.  We regenerate:

* exact minimal (N,1)-distinguisher sizes (= ceil(log2 N), matching the
  Θ(n log(N/n)/log n) formula at n = 1) for small N;
* exact-vs-greedy sizes at n = 2;
* the greedy upper-bound curve against the counting lower bound
  (Lemma 43) -- the measured sizes must sit between the floor and a
  constant multiple of the Θ bound;
* verification that Theorem 27's random construction yields genuine
  distinguishers at the predicted O(n log(N/n)/log n) size.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

import math

from repro.combinatorics import bounds
from repro.combinatorics.distinguishers import (
    is_distinguisher,
    random_distinguisher,
)
from repro.experiments import render_table
from repro.experiments.lower_bounds import distinguisher_sizes


def test_distinguisher_size_curve(once):
    rows = once(distinguisher_sizes)
    print("\n" + render_table(rows, "COR 29 -- distinguisher sizes"))
    for r in rows:
        big_n, n = r.params["N"], r.params["n"]
        floor = bounds.distinguisher_counting_bound(big_n, n)
        size = r.measured.get("size") or r.measured.get("greedy")
        assert size is not None
        # Exact sizes respect the counting floor (greedy may exceed the
        # Θ curve by its ln factor but never undershoots the floor).
        if "size" in r.measured and r.measured["size"] is not None:
            assert r.measured["size"] >= math.floor(floor) - 1
    # n = 1 exact sizes are exactly ceil(log2 N).
    for r in rows:
        if r.label == "exact minimal (n=1)":
            assert r.measured["size"] == math.ceil(math.log2(r.params["N"]))


def test_theorem27_random_construction(once):
    """The published random sequence is a real distinguisher at the
    predicted size, for every small parameter pair we can verify."""

    def verify():
        results = []
        for universe, n in ((8, 1), (10, 1), (12, 1), (8, 2), (10, 2)):
            family = random_distinguisher(universe, n, seed=7)
            results.append((universe, n, len(family),
                            is_distinguisher(family, universe, n)))
        return results

    results = once(verify)
    print("\nTheorem 27 random construction: (N, n, size, valid):")
    for item in results:
        print("   ", item)
    assert all(valid for _N, _n, _size, valid in results)
    # Size follows the Θ(n log(N/n)/log n) recipe.
    for universe, n, size, _valid in results:
        assert size <= 10 * max(
            4.0, bounds.distinguisher_size_bound(universe, n)
        )


def test_weak_nmove_round_counts_track_distinguisher_reduction(once):
    """Proposition 22 in action: the rounds the basic even-n protocol
    consumes before finding a weak nontrivial move equal 1 (restored
    probes aside) once the published sequence distinguishes the actual
    chirality split -- and never exceed the family-size budget."""
    from repro.core.scheduler import Scheduler
    from repro.protocols.nontrivial_move import nmove_seeded_family
    from repro.ring.configs import random_configuration
    from repro.types import Model

    def measure():
        probes = []
        for seed in range(12):
            state = random_configuration(16, seed=seed, common_sense=False)
            sched = Scheduler(state, Model.BASIC)
            probes.append(nmove_seeded_family(sched, weak=True))
        return probes

    probes = once(measure)
    print("\nweak-nmove probes across seeds:", probes)
    budget = bounds.distinguisher_size_bound(64, 16)
    assert max(probes) <= 4 * budget + 8
