"""Native-policy vs per-agent-callback driver shootout.

The protocol layer's hot loop used to be per-agent Python: every round
of every phase driver dispatched one ``ChoiceFn`` call per agent plus a
stack of per-agent memory-dict operations.  The native policies of
:mod:`repro.protocols.policies` compute each round's whole direction
vector in one ``decide()`` from columnar state.  This module times the
two drivers on the identical workload (neighbor discovery + sparse
relay flood, the paper's hot communication phases) across an n sweep on
the lattice backend, with bit-exact agreement enforced before any
timing, and writes the machine-readable ``BENCH_policies.json`` report
to the repo root so successive PRs can track the trajectory next to
``BENCH_simulator.json`` and ``BENCH_fleet.json``.

Runs in the ``--bench-fast`` smoke suite (not ``bench_heavy``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import policy_shootout

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_policies.json"

#: Floor for the headline (n = 1024) native-over-callback speedup.  The
#: two drivers run the same rounds on the same backend, so the ratio is
#: pure protocol-layer overhead and holds on any host; measured values
#: are ~1.3-2x, the gate leaves slack for noisy CI neighbors.
MIN_SPEEDUP_AT_1024 = 1.1


def test_policy_shootout_n_sweep(once):
    """64/256/1024-agent sweep: determinism is a hard gate; the headline
    speedup gate applies at the largest size."""
    report = once(lambda: policy_shootout(sizes=(64, 256, 1024)))
    for row in report["sweep"]:
        print(
            f"\npolicy shootout n={row['n']}: {json.dumps(row['seconds'])} "
            f"speedup={row['speedup_native_over_callback']}x"
        )
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact"] is True
    by_n = {row["n"]: row for row in report["sweep"]}
    assert set(by_n) == {64, 256, 1024}
    assert (
        by_n[1024]["speedup_native_over_callback"] >= MIN_SPEEDUP_AT_1024
    )
    # The native driver must never lose outright at any size.
    for row in report["sweep"]:
        assert row["speedup_native_over_callback"] >= 0.9
