"""E5: regenerate Table II (common sense of direction).

With a shared chirality every coordination cell collapses to polylog:
leader election is O(log N) except the constructive basic-even case at
O(log² N); location discovery keeps its model-specific discovery cost.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.combinatorics import bounds
from repro.experiments import render_table
from repro.experiments.table2 import generate
from repro.types import Model


def test_table2_all_rows(once):
    rows = once(
        lambda: generate(odd_sizes=(9, 17, 33), even_sizes=(8, 16, 32), seed=1)
    )
    print("\n" + render_table(rows, "TABLE II -- common sense of direction"))
    for r in rows:
        n, big_n = r.params["n"], r.params["N"]
        even = n % 2 == 0
        basic_even = r.label.startswith("basic") and even
        leader_budget = (
            10 * bounds.log_squared_bound(big_n)
            if basic_even
            else 10 * bounds.log_n_bound(big_n)
        )
        assert r.measured["leader"] <= leader_budget, r.label
        # Theorem 7: nontrivial move from a leader is O(1) extra.
        assert r.measured["nmove"] <= 8, r.label
        if r.measured["ld"] == "not solvable":
            assert basic_even  # only Lemma 5's cell may be infeasible
        elif r.label.startswith("perceptive") and even:
            assert r.measured["ld"] <= n / 2 + 60 * (
                bounds.nmove_perceptive_bound(big_n, n)
            ), r.label
        else:
            assert r.measured["ld"] - n <= 10 * (
                bounds.log_squared_bound(big_n)
            ), r.label


def test_table2_vs_table1_speedup(once):
    """The point of Table II: with common chirality, even-n basic
    coordination drops from Θ(n log(N/n)/log n) to polylog."""
    from repro.experiments.table1 import row_basic_even
    from repro.experiments.table2 import row

    def measure():
        general = row_basic_even(32, seed=1)
        common = row(32, Model.BASIC, seed=1)
        return general, common

    general, common = once(measure)
    print("\nbasic even n=32: general leader rounds =",
          general.measured["leader"],
          "| common-sense leader rounds =", common.measured["leader"])
    # The general-setting cell grows with n; the common-sense one must
    # not -- at n = 32 the polylog pipeline may still pay a constant
    # overhead, so compare against the n-free budget instead of the
    # other measurement directly.
    assert common.measured["leader"] <= 10 * bounds.log_squared_bound(
        common.params["N"]
    )
