"""E11: NMoveS scaling (Lemma 36) -- O(√n log N) in the perceptive model.

The perceptive model breaks the Ω(n log(N/n)/log n) barrier: NMoveS's
round count must grow clearly slower than linearly in n.  We measure
the full algorithm (forcing the machinery by using common-chirality
rings, whose all-RIGHT probe is always trivial) across a sweep of n.
"""

from __future__ import annotations

from repro.combinatorics import bounds
from repro.core.scheduler import Scheduler
from repro.experiments import render_table
from repro.experiments.harness import ExperimentRow
from repro.protocols.nmove_perceptive import nmove_perceptive
from repro.ring.configs import random_configuration
from repro.types import Model


def measure(n: int, seed: int = 3, backend: str = None) -> ExperimentRow:
    state = random_configuration(n, seed=seed, common_sense=True)
    sched = Scheduler(state, Model.PERCEPTIVE, backend=backend)
    stats = nmove_perceptive(sched)
    return ExperimentRow(
        label="NMoveS (common chirality, worst-case path)",
        params={"n": n, "N": state.id_bound},
        measured={
            "rounds": stats["rounds"],
            "levels": stats["levels"],
            "family_probes": stats["family_probes"],
        },
        reference={"sqrt_bound": bounds.nmove_perceptive_bound(
            state.id_bound, n
        )},
    )


def test_nmove_scaling_sublinear(once):
    rows = once(lambda: [measure(n) for n in (8, 16, 32, 64)])
    print("\n" + render_table(rows, "LEMMA 36 -- NMoveS scaling"))
    # Shape: rounds / (√n log N) bounded by a constant band across the
    # sweep (allowing the 2^k staircase a factor).
    ratios = [
        r.measured["rounds"] / r.reference["sqrt_bound"] for r in rows
    ]
    print("rounds / (√n log N):", [round(x, 2) for x in ratios])
    assert max(ratios) <= 8 * min(ratios)
    # And strictly below the basic-model lower-bound curve at scale:
    # Ω(n log(N/n)/log n) would dwarf these counts for large n.  The
    # comparison is meaningful only as a trend; assert the measured
    # growth from n=8 to n=64 (8x) stays below 8x.
    assert rows[-1].measured["rounds"] <= 8 * rows[0].measured["rounds"]


def test_nmove_backends_agree_and_lattice_wins(once):
    """Both kinematics backends drive NMoveS to identical statistics;
    the lattice backend does it faster on the n = 64 instance."""
    import time

    def run():
        timings = {}
        rows = {}
        for backend in ("fraction", "lattice"):
            best = float("inf")
            for _ in range(3):  # best-of-3: robust to scheduler noise
                start = time.perf_counter()
                rows[backend] = measure(64, backend=backend)
                best = min(best, time.perf_counter() - start)
            timings[backend] = best
        return rows, timings

    rows, timings = once(run)
    assert rows["fraction"].measured == rows["lattice"].measured
    speedup = timings["fraction"] / timings["lattice"]
    print(f"\nNMoveS n=64 backend timings: "
          f"fraction={timings['fraction']:.4f}s "
          f"lattice={timings['lattice']:.4f}s ({speedup:.1f}x)")
    # The protocol spends rounds outside kinematics too, so the bar is
    # lower than the raw shootout's 5x.
    assert speedup > 1.0


def test_nmove_level_count_logarithmic(once):
    rows = once(lambda: [measure(n, seed=5) for n in (16, 64)])
    print("\nlevels:", {r.params["n"]: r.measured["levels"] for r in rows})
    for r in rows:
        n = r.params["n"]
        # Levels ~ log2(√n) + O(1).
        assert r.measured["levels"] <= (n.bit_length() + 1) // 2 + 3
