"""E8: regenerate Figure 3 -- the RingDist (Algorithm 5) anatomy.

Figure 3 illustrates how the Shift(k)/Shift(-k/2) interplay lets agents
at ring distance k + jk recognise themselves.  The measurable content:
labelled-agent coverage grows quadratically in the iteration radius k
(labels up to ~k² + 2k after iteration k), so the number of iterations
-- and with relay costs, total rounds O(√n log N) -- stays sublinear.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench_heavy

from repro.experiments import render_table
from repro.experiments.figures import ringdist_anatomy


def test_fig3_coverage_growth(once):
    rows = once(lambda: ringdist_anatomy(n=48, seed=1))
    print("\n" + render_table(rows, "FIGURE 3 -- RingDist labelling progress"))
    labelled = [r.measured["labelled"] for r in rows]
    # Coverage is monotone and complete.
    assert labelled == sorted(labelled)
    assert labelled[-1] == 48
    # The seed phase labels the leader's 4-neighborhood prefix (5 agents).
    assert labelled[0] == 5
    # Quadratic coverage: after iteration k the labelled prefix reaches
    # at least min(n, k^2 + 2k) but for the flood asymmetry; assert the
    # paper's k + k^2-ish floor with slack.
    for row in rows[1:]:
        k = int(row.label.split("k=")[1])
        expected_floor = min(48, k * k + 2)
        assert row.measured["labelled"] >= min(48, expected_floor // 2)


def test_fig3_rounds_scale_sublinearly(once):
    """Total RingDist rounds grow ~√n (times log N), far below the
    Θ(n) a hop-by-hop labelling would need for large rings."""

    def sweep():
        out = {}
        for n in (16, 64):
            rows = ringdist_anatomy(n=n, seed=2)
            out[n] = rows[-1].measured["rounds"] - rows[0].measured["rounds"]
        return out

    costs = once(sweep)
    print("\nRingDist main-loop rounds:", costs)
    # 4x the agents must cost well under 4x the rounds (≈2x for √n
    # scaling; allow the power-of-two staircase and width growth).
    assert costs[64] <= 3.0 * costs[16]
