"""Speculative-stretch shootout on the data-dependent phases.

PR 4's fused stretches covered spans whose direction vectors are known
up front; the paper's *data-dependent* phases -- the location-discovery
sweeps (agents stop when the collected gaps first sum to a full turn)
and the Convolution/Pivot schedule of Algorithm 6 (done when every
equation system reaches full rank) -- still ran scalar.  This PR's
speculative stretches fix that: the policy plans an optimistic span
plus a per-round stop predicate over the observation columns, and the
backend cuts the committed span back to the predicate's firing round
(a rotation-offset rewind under lazy position commits).

This module times lattice vs array on the identical sweep + Distances
workload across an n sweep, with bit-exact agreement enforced before
any timing (array vs lattice at every size; native vs callback drivers
and the exact Fraction backend at the smallest size), and writes the
machine-readable ``BENCH_speculative.json`` report to the repo root.

Runs in the ``--bench-fast`` smoke suite (not ``bench_heavy``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import speculative_shootout

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_speculative.json"
)

#: Floor for the headline (largest n) array-over-lattice speedup.  The
#: workload deliberately includes Algorithm 6 at a fixed small n, whose
#: equation solve is backend-independent and dilutes the ratio, so the
#: gate is the honest combined-workload number, not the sweeps' peak.
MIN_SPEEDUP_AT_LARGEST = 1.5

#: The smaller sizes only gate "vectorised execution never loses":
#: the shared Fraction-side work (equation systems, circulant inverse)
#: dominates there.
MIN_SPEEDUP_FLOOR = 1.0

#: Without numpy the speculative path runs over stdlib-array buffers at
#: roughly lattice speed; the sweep then only gates "no regression"
#: (bit-exactness stays a hard gate on both axes).
MIN_SPEEDUP_FALLBACK = 0.8


def test_speculative_shootout_n_sweep(once):
    """256/1024 sweep: determinism (vs callback drivers and vs the
    Fraction backend) is a hard gate; the speedup gates apply when
    numpy is available (the committed report is generated with
    numpy)."""
    report = once(lambda: speculative_shootout(sizes=(256, 1024)))
    for row in report["sweep"]:
        print(
            f"\nspeculative shootout n={row['n']}: "
            f"{json.dumps(row['seconds'])} "
            f"speedup={row['speedup_array_over_lattice']}x"
        )
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    assert report["bit_exact"] is True
    # The cross-driver and cross-backend checks really ran.
    assert report["workload"]["callback_checked_at"] == 256
    assert report["workload"]["fraction_checked_at"] == 256
    by_n = {row["n"]: row for row in report["sweep"]}
    assert set(by_n) == {256, 1024}
    if report["numpy"] is not None:
        assert (
            by_n[1024]["speedup_array_over_lattice"]
            >= MIN_SPEEDUP_AT_LARGEST
        )
        floor = MIN_SPEEDUP_FLOOR
    else:
        floor = MIN_SPEEDUP_FALLBACK
    for row in report["sweep"]:
        assert row["speedup_array_over_lattice"] >= floor
