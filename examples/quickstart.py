#!/usr/bin/env python3
"""Quickstart: solve location discovery on a ring of bouncing agents.

Six anonymous-looking agents sit at unknown positions on a circle; some
of them even disagree about which way is clockwise.  They cannot talk,
see, or leave marks -- they can only move, bounce, and measure how far
each round carried them.  This script runs the paper's full pipeline
(nontrivial move -> direction agreement -> leader election -> discovery
sweep) in the perceptive model and prints what each agent learned.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import Model, random_configuration, solve_location_discovery


def main() -> None:
    n = 8
    state = random_configuration(n=n, seed=2024, common_sense=False)
    print(f"ring with n={n} agents, ID space [1, {state.id_bound}]")
    print("true positions (hidden from agents):")
    for i in range(n):
        chir = "cw " if int(state.chiralities[i]) == 1 else "ccw"
        print(f"  agent id={state.ids[i]:3d}  pos={state.positions[i]}  "
              f"sense={chir}")

    result = solve_location_discovery(state, Model.PERCEPTIVE)

    print(f"\nsolved in {result.rounds} rounds:")
    for phase, rounds in result.rounds_by_phase.items():
        print(f"  {phase:22s} {rounds:5d} rounds")
    print(f"  (discovery itself took n/2 + 3 = {n // 2 + 3} rounds -- half "
          "of what dist()-only agents would need)")

    print("\nagent 0's reconstructed ring (gaps from itself, common frame):")
    gaps = result.gaps_by_agent[0]
    position = Fraction(0)
    for k, gap in enumerate(gaps):
        print(f"  +{k} places: at {position} (next gap {gap})")
        position += gap
    assert position == 1, "gaps must close the circle"

    # Omniscient check: the reconstruction matches the true gaps.
    true_gaps = state.initial_gaps()
    forward = [true_gaps[k % n] for k in range(n)]
    backward = [true_gaps[(-1 - k) % n] for k in range(n)]
    assert gaps in (forward, backward)
    print("\nreconstruction verified against ground truth ✓")


if __name__ == "__main__":
    main()
