#!/usr/bin/env python3
"""Quickstart: solve location discovery on a ring of bouncing agents.

Eight anonymous-looking agents sit at unknown positions on a circle;
some of them even disagree about which way is clockwise.  They cannot
talk, see, or leave marks -- they can only move, bounce, and measure how
far each round carried them.  This script drives the paper's full
pipeline through :class:`repro.RingSession`, the library's single entry
point: build a session, ask the registry what it plans to run, then
execute phase by phase and inspect what each agent learned.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import Model, RingSession


def main() -> None:
    n = 8
    session = RingSession(n=n, model=Model.PERCEPTIVE, seed=2024,
                          backend="lattice")
    state = session.state
    print(f"ring with n={n} agents, ID space [1, {state.id_bound}], "
          f"backend={session.backend_name}")
    print("true positions (hidden from agents):")
    for i in range(n):
        chir = "cw " if int(state.chiralities[i]) == 1 else "ccw"
        print(f"  agent id={state.ids[i]:3d}  pos={state.positions[i]}  "
              f"sense={chir}")

    # The registry plans the phase pipeline for this setting before a
    # single round runs; stepping executes one phase at a time.
    phases = session.start("location-discovery")
    print(f"\nplanned phases: {[p.name for p in phases]}")
    for _ in range(len(phases)):
        name, rounds = session.step()
        print(f"  ran {name:22s} {rounds:5d} rounds")
    result = session.resume()  # collects the final result

    print(f"\nsolved in {result.rounds} rounds")
    print(f"  (discovery itself took n/2 + 3 = {n // 2 + 3} rounds -- half "
          "of what dist()-only agents would need)")

    print("\nagent 0's reconstructed ring (gaps from itself, common frame):")
    gaps = result.gaps_by_agent[0]
    position = Fraction(0)
    for k, gap in enumerate(gaps):
        print(f"  +{k} places: at {position} (next gap {gap})")
        position += gap
    assert position == 1, "gaps must close the circle"

    # Omniscient check: the reconstruction matches the true gaps.
    true_gaps = state.initial_gaps()
    forward = [true_gaps[k % n] for k in range(n)]
    backward = [true_gaps[(-1 - k) % n] for k in range(n)]
    assert gaps in (forward, backward)
    print("\nreconstruction verified against ground truth ✓")


if __name__ == "__main__":
    main()
