#!/usr/bin/env python3
"""Equidistant redeployment and boundary patrol, enabled by location
discovery.

The paper's introduction motivates location discovery as the key that
unlocks higher coordination: "equidistant distribution along the
circumference of the circle and an optimal boundary patrolling scheme".
This example follows through:

1. Solve location discovery in the lazy model (n rounds + polylog).
2. Each agent -- *locally*, from its reconstructed gap vector --
   computes the displacement to its slot in the perfectly equidistant
   configuration that keeps the leader fixed and preserves ring order.
3. The planned targets are checked omnisciently: consistent across
   agents, equidistant, and order-preserving (so the redeployment can
   be executed without any collision by agents that may stop mid-move).
4. Print the resulting optimal patrol schedule: each agent sweeps its
   1/n arc back and forth; adjacent agents meet at shared endpoints,
   giving the classic idleness-optimal fence patrol.

Run:  python examples/equidistant_patrol.py
"""

from fractions import Fraction

from repro import Model, RingSession, random_configuration
from repro.core.scheduler import Scheduler
from repro.protocols.base import KEY_LD_GAPS, KEY_LEADER, common_dist
from repro.protocols.location_discovery import sweep_rotation_one


def main() -> None:
    n = 10
    state = random_configuration(n=n, seed=7, common_sense=False)
    sched = Scheduler(state, Model.LAZY)

    RingSession.from_scheduler(sched).run("coordination")
    sweep_rotation_one(sched)
    print(f"location discovery done in {sched.rounds} rounds (n = {n})")

    # --- Local planning: each agent computes its own displacement. ----
    plans = []
    for view in sched.views:
        gaps = view.memory[KEY_LD_GAPS]
        # My ring offset from the leader, walking common-clockwise: the
        # leader is the unique agent; every agent knows the offset at
        # which the leader sits in its own reconstructed ring only if it
        # knows who leads -- the leader flag is local, so express the
        # plan relative to the leader's announced slot: agents know
        # their label implicitly from coordination?  In the lazy
        # pipeline they do not, so each agent plans relative to itself:
        # target spacing 1/n, achieved by moving the k-th agent ahead of
        # me to prefix_sum_k' = k/n.  Consistency requires anchoring:
        # the leader anchors at its own position (displacement 0).
        is_leader = bool(view.memory.get(KEY_LEADER))
        plans.append((is_leader, gaps))

    # Find each agent's offset from the leader along its own frame: the
    # leader's position appears in everyone's gap vector as the unique
    # slot where the cumulative arc matches the leader's announced
    # anchor.  In this demonstration the anchor is distributed by ring
    # order: agent k places itself k/n clockwise of the leader.
    leader_index = next(
        i for i, (is_leader, _g) in enumerate(plans) if is_leader
    )

    # Omniscient assembly of the planned configuration (the harness can
    # do this because each agent's plan is purely local arithmetic).
    targets = {}
    leader_pos = state.initial_positions[leader_index]
    # Which objective direction is the common frame's clockwise?
    flip0 = sched.views[leader_index].memory["frame.flip"]
    chir0 = int(state.chiralities[leader_index])
    step = chir0 * (-1 if flip0 else 1)   # +1 = objective clockwise
    for k in range(n):
        agent = (leader_index + step * k) % n
        targets[agent] = (leader_pos + Fraction(k, n)
                          * step) % 1
    print("\nplanned equidistant deployment (leader anchored):")
    for i in range(n):
        move = (targets[i] - state.initial_positions[i]) % 1
        move = move if move <= Fraction(1, 2) else move - 1
        sign = "+" if move >= 0 else ""
        print(f"  agent id={state.ids[i]:3d}: {state.initial_positions[i]} "
              f"-> {targets[i]}  (move {sign}{move})")

    # --- Verify the plan. ---------------------------------------------
    sorted_targets = sorted(targets.values())
    diffs = {
        (b - a) % 1
        for a, b in zip(sorted_targets, sorted_targets[1:])
    } | {(sorted_targets[0] - sorted_targets[-1]) % 1}
    assert diffs == {Fraction(1, n)}, "targets must be equidistant"

    order_now = sorted(range(n), key=lambda i: state.initial_positions[i])
    order_then = sorted(range(n), key=lambda i: targets[i])
    ring_now = order_now[order_now.index(0):] + order_now[:order_now.index(0)]
    ring_then = (
        order_then[order_then.index(0):] + order_then[:order_then.index(0)]
    )
    assert ring_now in (ring_then, [ring_then[0]] + ring_then[1:][::-1]), (
        "redeployment must preserve the ring order"
    )
    print("\nplan verified: equidistant ✓  order-preserving ✓")

    # --- Patrol schedule. ----------------------------------------------
    print("\noptimal fence patrol (each agent sweeps its 1/n arc):")
    for k in range(min(n, 4)):
        agent = (leader_index + step * k) % n
        left = targets[agent]
        right = (left + Fraction(1, n) * step) % 1
        print(f"  agent id={state.ids[agent]:3d}: patrols "
              f"[{left}, {right}] (period 2/n = {Fraction(2, n)})")
    print("  ... (worst-case point idleness 2/n, the optimal bound)")


if __name__ == "__main__":
    main()
