#!/usr/bin/env python3
"""Explore (N,n)-distinguishers -- the combinatorics behind the paper's
superlinear lower bound.

Until a protocol produces its first nontrivial move, every agent is
locked into a fixed published sequence of subsets of the ID space
(Proposition 22).  Breaking the symmetry between the two chirality
classes of an adversarial even ring is then *exactly* the distinguisher
problem, so the minimal distinguisher size Θ(n log(N/n)/log n) is a
round-count lower bound.  This script makes the object concrete:

* builds and verifies distinguishers (random and greedy);
* finds exact minimal sizes by branch and bound for small N;
* shows a violating pair -- two ID sets a too-small family cannot
  tell apart -- and the bound curves.

Run:  python examples/distinguisher_explorer.py
"""

from repro.combinatorics import bounds
from repro.combinatorics.distinguishers import (
    greedy_distinguisher,
    is_distinguisher,
    minimal_distinguisher_size,
    random_distinguisher,
    violating_pair,
)


def main() -> None:
    print("exact minimal (N,1)-distinguisher sizes (= ceil(log2 N)):")
    for universe in range(4, 8):
        size = minimal_distinguisher_size(universe, 1)
        print(f"  N={universe}: minimal size {size}")

    print("\na family that is too small, and the pair it cannot split:")
    family = [frozenset({1, 2}), frozenset({3, 4})]
    assert not is_distinguisher(family, 6, 1)
    x1, x2 = violating_pair(family, 6, 1)
    print(f"  family {[set(f) for f in family]} over N=6, n=1")
    print(f"  indistinguishable pair: X1={set(x1)}, X2={set(x2)}")
    print("  (every member meets X1 and X2 in equally many elements)")

    print("\ngreedy vs exact at N=6, n=2:")
    exact = minimal_distinguisher_size(6, 2, max_size=4)
    greedy = greedy_distinguisher(6, 2)
    print(f"  exact minimal size : {exact}")
    print(f"  greedy family size : {len(greedy)}  "
          f"members: {[sorted(f) for f in greedy]}")

    print("\nTheorem 27's random construction, verified:")
    for universe, n in ((10, 1), (10, 2), (12, 2)):
        fam = random_distinguisher(universe, n, seed=42)
        ok = is_distinguisher(fam, universe, n)
        print(f"  N={universe:3d} n={n}: size {len(fam):3d} "
              f"valid={ok}  Θ-curve={bounds.distinguisher_size_bound(universe, n):.1f}")

    print("\nthe lower-bound curve Θ(n log(N/n)/log n) at protocol scale:")
    big_n = 1 << 16
    for n in (16, 64, 256, 1024):
        print(f"  N=2^16, n={n:5d}: "
              f"{bounds.distinguisher_size_bound(big_n, n):10.1f} rounds "
              f"(counting floor {bounds.distinguisher_counting_bound(big_n, n):8.1f})")
    print("\nsuperlinear in n for n = O(N^(1-ε)) -- the paper's Table I cell.")


if __name__ == "__main__":
    main()
