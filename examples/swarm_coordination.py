#!/usr/bin/env python3
"""A tour of the coordination problems across all three model variants.

For the same hidden configuration this script solves direction
agreement, leader election and nontrivial move under the basic, lazy
and perceptive rules, and contrasts the costs -- the live version of
the paper's Table I columns.  It also demonstrates the parity cliff:
the very same protocols that take a handful of rounds on an odd ring
must pay the distinguisher price on an even one.

Run:  python examples/swarm_coordination.py
"""

from repro import Model, RingSession, random_configuration
from repro.combinatorics import bounds


def tour(n: int, seed: int) -> None:
    print(f"\n=== n = {n} ({'even' if n % 2 == 0 else 'odd'}) ===")
    header = f"{'model':12s} {'nmove':>7s} {'diragree':>9s} {'leader':>7s} {'total':>7s}  leader id"
    print(header)
    print("-" * len(header))
    for model in Model:
        state = random_configuration(n=n, seed=seed, common_sense=False)
        result = RingSession.from_state(state, model=model).run("coordination")
        p = result.rounds_by_phase
        print(
            f"{model.value:12s} {p['nontrivial_move']:7d} "
            f"{p['direction_agreement']:9d} {p['leader_election']:7d} "
            f"{result.rounds:7d}  {result.leader_id}"
        )


def main() -> None:
    tour(n=9, seed=11)
    tour(n=16, seed=11)

    print("\nwhy the cliff?  For odd n any objectively split round breaks")
    print("symmetry (rotation index cannot be 0 or n/2), so coordination")
    print("is polylog.  For even n the basic/lazy models must solve the")
    print("distinguisher problem, Θ(n·log(N/n)/log n) in the worst case;")
    print("the perceptive model escapes through collision information:")
    for n, big_n in ((256, 1 << 10), (4096, 1 << 20), (65536, 1 << 24)):
        basic = bounds.coordination_even_bound(big_n, n)
        perceptive = bounds.nmove_perceptive_bound(big_n, n)
        winner = "perceptive" if perceptive < basic else "basic/lazy"
        print(f"  n={n:6d}, N=2^{big_n.bit_length() - 1}: "
              f"basic/lazy ~{basic:8.0f} vs perceptive ~{perceptive:8.0f} "
              f"-> {winner} wins")
    print("\nthe crossover: Θ(n log(N/n)/log n) grows superlinearly in n,")
    print("O(√n log N) sublinearly -- past it, collisions beat idling.")


if __name__ == "__main__":
    main()
