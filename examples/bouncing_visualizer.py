#!/usr/bin/env python3
"""Visualize the bouncing dynamics behind the paper's observations.

Three vignettes, each rendered as an ASCII space-time diagram (time
flows down, the circle is unrolled horizontally, `*` marks rows in
which a collision happened):

1. a head-on pair exchanging velocities;
2. the momentum relay: one mover among idle agents carries the
   rotation token all the way around (Lemma 1 with r = 1);
3. a Convolution round from Algorithm 6 -- alternating directions with
   one exception, the pattern whose first collisions hand every agent
   a gap equation.

Run:  python examples/bouncing_visualizer.py
"""

from fractions import Fraction

from repro.analysis.render import render_round, render_trajectory_summary

F = Fraction


def vignette(title: str, positions, velocities) -> None:
    print(f"\n=== {title} ===")
    print(render_round(positions, velocities, width=60, steps=12))
    print(render_trajectory_summary(positions, velocities))


def main() -> None:
    vignette(
        "head-on pair (elastic bounce = pass-through with relabelling)",
        [F(1, 8), F(5, 8)],
        [1, -1],
    )

    n = 8
    vignette(
        "momentum relay: one mover, seven idlers -> rotation index 1",
        [F(i, n) for i in range(n)],
        [1] + [0] * (n - 1),
    )

    # Convolution(3) on n = 6 (1-based exception label 6 -> agent 5).
    positions = [F(0), F(1, 7), F(2, 7), F(3, 7), F(5, 7), F(6, 7)]
    velocities = [1, -1, 1, -1, 1, 1]
    vignette(
        "Convolution round (Alg. 6): alternating with one exception",
        positions,
        velocities,
    )
    print("\nnote how the exception agent's neighbor collides late --")
    print("its coll() covers two gaps, exactly the extra equation the")
    print("Distances protocol harvests.")


if __name__ == "__main__":
    main()
