#!/usr/bin/env python3
"""Docs gate: executable examples, live links, committed bench numbers.

Run from the repo root (CI runs it as the ``docs`` job)::

    python tools/check_docs.py              # check everything
    python tools/check_docs.py --write-bench  # refresh README bench table

Three checks keep ``README.md`` and ``docs/`` from drifting:

1. **Code blocks execute.**  Every fenced ``python`` block in README.md,
   docs/*.md and examples/*.md is extracted and executed with ``src/``
   on the path:
   blocks containing ``>>>`` prompts run under :mod:`doctest` (with
   ``NORMALIZE_WHITESPACE``), plain blocks are ``exec``'d.  A block
   whose first line is ``# doctest: skip`` is exempt (for deliberately
   abstract sketches).
2. **Relative links resolve.**  Every markdown link target without a
   scheme must exist on disk relative to the linking document.
3. **Bench numbers come from the reports.**  The README's bench table
   lives between ``BENCH_TABLE`` markers and must byte-match what
   :func:`bench_markdown` renders from the committed ``BENCH_*.json``
   files -- hand-edited figures fail the job; regenerate with
   ``--write-bench`` after refreshing the reports.
"""

from __future__ import annotations

import argparse
import doctest
import json
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

BENCH_START = "<!-- BENCH_TABLE_START -->"
BENCH_END = "<!-- BENCH_TABLE_END -->"

_FENCE = re.compile(
    r"^```(?P<lang>[\w-]*)[^\n]*\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files() -> List[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    files.extend(sorted((REPO / "examples").glob("*.md")))
    return [f for f in files if f.exists()]


def code_blocks(path: Path) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(line_number, language, body)`` per fenced block."""
    text = path.read_text()
    for match in _FENCE.finditer(text):
        line = text[: match.start()].count("\n") + 1
        yield line, match.group("lang"), match.group("body")


def check_code(path: Path, errors: List[str]) -> int:
    """Execute the file's python blocks; returns how many ran.

    All blocks of one document share a namespace (a reader works
    through them top to bottom), so later examples may build on names
    an earlier block defined.
    """
    ran = 0
    globs = {"__name__": "__docs__"}
    for line, lang, body in code_blocks(path):
        if lang != "python":
            continue
        first = body.lstrip().splitlines()[0] if body.strip() else ""
        if first.startswith("# doctest: skip"):
            continue
        ran += 1
        where = f"{path.relative_to(REPO)}:{line}"
        if ">>>" in body:
            parser = doctest.DocTestParser()
            test = parser.get_doctest(body, globs, where, str(path), line)
            runner = doctest.DocTestRunner(
                optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
                verbose=False,
            )
            out: List[str] = []
            runner.run(test, out=out.append, clear_globs=False)
            globs.update(test.globs)
            if runner.failures:
                errors.append(
                    f"{where}: doctest block failed\n" + "".join(out)
                )
        else:
            try:
                exec(compile(body, where, "exec"), globs)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(f"{where}: code block raised {exc!r}")
    return ran


def check_links(path: Path, errors: List[str]) -> int:
    """Verify the file's relative link targets exist; returns count."""
    checked = 0
    for target in _LINK.findall(path.read_text()):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        checked += 1
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO)}: dead link -> {target}"
            )
    return checked


def _report(name: str) -> dict:
    return json.loads((REPO / name).read_text())


def bench_markdown() -> str:
    """The README bench table, rendered from the committed reports."""
    rows = []
    sim = _report("BENCH_simulator.json")
    rows.append((
        "`BENCH_simulator.json`",
        f"{sim['workload']['n']}-agent perceptive round sequence",
        f"lattice over fraction: "
        f"**{sim['speedup_lattice_over_fraction']}x**",
    ))
    pol = _report("BENCH_policies.json")
    head = max(pol["sweep"], key=lambda row: row["n"])
    rows.append((
        "`BENCH_policies.json`",
        "neighbor discovery + relay flood",
        f"native over callback at n={head['n']}: "
        f"**{head['speedup_native_over_callback']}x**",
    ))
    arr = _report("BENCH_array.json")
    parts = ", ".join(
        f"{row['speedup_array_over_lattice']}x at n={row['n']}"
        for row in arr["sweep"]
    )
    rows.append((
        "`BENCH_array.json`",
        "rotation probes + relay flood (fused stretches)",
        f"array over lattice: **{parts}**",
    ))
    spec = _report("BENCH_speculative.json")
    parts = ", ".join(
        f"{row['speedup_array_over_lattice']}x at n={row['n']}"
        for row in spec["sweep"]
    )
    rows.append((
        "`BENCH_speculative.json`",
        "LD sweeps + Algorithm 6 (speculative stretches)",
        f"array over lattice: **{parts}**",
    ))
    eqs = _report("BENCH_equations.json")
    dist_head = max(eqs["distances"], key=lambda row: row["n"])
    sweep_head = max(eqs["sweeps"], key=lambda row: row["n"])
    rows.append((
        "`BENCH_equations.json`",
        "fraction-free equation engine + columnar gap harvests",
        f"int over Fraction: "
        f"**{dist_head['speedup_int_over_fraction']}x** distances at "
        f"n={dist_head['n']}, "
        f"**{sweep_head['speedup_int_over_fraction']}x** sweeps at "
        f"n={sweep_head['n']}",
    ))
    fleet = _report("BENCH_fleet.json")
    rows.append((
        "`BENCH_fleet.json`",
        f"{fleet['workload']['sessions']}-ring sweep, "
        f"warm pools up to {fleet['workload']['workers']} workers",
        f"warm pool over serial: **{fleet['parallel_speedup']}x** "
        f"(on {fleet['cpu_count']} CPU"
        f"{'s' if fleet['cpu_count'] != 1 else ''})",
    ))
    shard = _report("BENCH_shard.json")
    shard_head = max(shard["results"], key=lambda row: row["n"])
    rows.append((
        "`BENCH_shard.json`",
        f"one ring at n={shard_head['n']}, "
        f"{shard['workload']['shards']} shards over shared memory",
        f"sharded over serial: **{shard_head['speedup']}x** "
        f"(on {shard['cpu_count']} CPU"
        f"{'s' if shard['cpu_count'] != 1 else ''})",
    ))
    cache = _report("BENCH_cache.json")
    rows.append((
        "`BENCH_cache.json`",
        f"{cache['workload']['sessions']}-ring sweep via the run store "
        f"(+ {cache['workload']['dupes']}-duplicate dedup)",
        f"warm fetch over recompute: **{cache['warm_speedup']}x**, "
        f"sweep dedup: **{cache['dedup_speedup']}x**",
    ))
    lines = [
        "| report | workload | headline (this machine) |",
        "|--------|----------|--------------------------|",
    ]
    lines.extend(f"| {a} | {b} | {c} |" for a, b, c in rows)
    return "\n".join(lines)


def check_bench_table(errors: List[str], write: bool) -> None:
    readme = REPO / "README.md"
    if not readme.exists():
        errors.append("README.md is missing")
        return
    text = readme.read_text()
    if BENCH_START not in text or BENCH_END not in text:
        errors.append("README.md: bench table markers missing")
        return
    head, rest = text.split(BENCH_START, 1)
    _stale, tail = rest.split(BENCH_END, 1)
    fresh = f"{BENCH_START}\n{bench_markdown()}\n{BENCH_END}"
    rendered = f"{head}{fresh}{tail}"
    if rendered != text:
        if write:
            readme.write_text(rendered)
            print("README.md: bench table refreshed")
        else:
            errors.append(
                "README.md: bench table does not match the committed "
                "BENCH_*.json reports (run `python tools/check_docs.py "
                "--write-bench`)"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-bench", action="store_true",
        help="rewrite the README bench table from the committed reports",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    errors: List[str] = []
    blocks = links = 0
    for path in doc_files():
        blocks += check_code(path, errors)
        links += check_links(path, errors)
    check_bench_table(errors, write=args.write_bench)
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    print(
        f"checked {len(doc_files())} docs: {blocks} python blocks, "
        f"{links} relative links; {len(errors)} error(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
