#!/usr/bin/env python3
"""Record a fault scenario into the regression corpus.

Run from the repo root::

    python tools/record_regression.py --protocol coordination --n 8 \
        --seed 3 --faults '{"seed":1,"crashes":{"2":1}}' \
        --note "crash during direction agreement"

The scenario is classified (its faulted run and its fault-free twin
both execute, landing it in the survive/detect/report trichotomy) and
the result is written as one JSON entry under
``tests/regression_corpus/`` -- whatever the scenario does *today*
becomes the pinned expectation the tier-1 suite replays forever.  The
fuzzer (``tests/test_fault_properties.py``) calls the same recording
path automatically when a property violation shrinks to a concrete
scenario; this tool is the manual on-ramp for scenarios found in the
wild.

Entries are content-addressed by scenario, so re-recording the same
scenario after a deliberate behaviour change overwrites the stale
expectation in place (commit the diff).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api.fleet import SessionSpec  # noqa: E402
from repro.exceptions import ReproError  # noqa: E402
from repro.faults.corpus import DEFAULT_CORPUS_DIR, record_scenario  # noqa: E402
from repro.faults.plan import FaultPlan  # noqa: E402


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        description="classify one fault scenario and pin it into the "
        "regression corpus"
    )
    parser.add_argument("--protocol", required=True,
                        help="registry protocol name")
    parser.add_argument("--n", type=int, required=True, help="ring size")
    parser.add_argument("--model", default="basic",
                        choices=("basic", "lazy", "perceptive"))
    parser.add_argument("--backend", default="lattice",
                        choices=("lattice", "fraction", "array"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--common-sense", action="store_true")
    parser.add_argument("--config", default="random")
    parser.add_argument("--driver", default="native",
                        choices=("native", "callback"))
    parser.add_argument("--faults", required=True, metavar="PLAN",
                        help="fault plan as inline JSON or @file.json")
    parser.add_argument("--note", default="",
                        help="free-form context stored with the entry")
    parser.add_argument("--corpus-dir",
                        default=str(REPO / DEFAULT_CORPUS_DIR),
                        help="corpus directory (default: the committed "
                        "tests/regression_corpus/)")
    args = parser.parse_args(argv)

    raw = args.faults
    if raw.startswith("@"):
        raw = Path(raw[1:]).read_text(encoding="ascii")
    try:
        plan = FaultPlan.coerce(raw)
    except ReproError as error:
        parser.error(f"unusable fault plan: {error}")
    if plan is None:
        parser.error("the fault plan is empty; the corpus records "
                     "*faulted* scenarios")

    spec = SessionSpec(
        n=args.n,
        protocol=args.protocol,
        model=args.model,
        backend=args.backend,
        seed=args.seed,
        common_sense=args.common_sense,
        config=args.config,
        driver=args.driver,
        faults=plan.canonical(),
    )
    try:
        path, classification = record_scenario(
            spec, directory=args.corpus_dir, note=args.note
        )
    except ReproError as error:
        # The fault-free twin failed: the scenario is misconfigured,
        # not a degradation case worth pinning.
        parser.error(f"fault-free twin failed ({type(error).__name__}): "
                     f"{error}")
    print(f"recorded {path}")
    print(f"  outcome: {classification.outcome}")
    if classification.error_type is not None:
        print(f"  error:   {classification.error_type}: "
              f"{classification.error_message}")
    elif classification.result is not None:
        print(f"  result:  {json.dumps(classification.result, sort_keys=True)[:120]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
