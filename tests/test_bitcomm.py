"""Tests for collision-based neighbor communication (Prop 31, Cor 32-34)."""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.bitcomm import (
    KEY_FROM_LEFT,
    KEY_FROM_RIGHT,
    exchange_bits,
    exchange_frame,
    relay_flood,
    received_messages,
)
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.ring.configs import random_configuration
from repro.types import Chirality, Model


def prepared_sched(n, seed, common_sense=None):
    state = random_configuration(n, seed=seed, common_sense=common_sense)
    sched = Scheduler(state, Model.PERCEPTIVE)
    discover_neighbors(sched)
    return sched


def own_right_index(state, i):
    """Ring index of agent i's own-frame right neighbor."""
    step = 1 if state.chiralities[i] is Chirality.CLOCKWISE else -1
    return (i + step) % state.n


class TestExchangeBits:
    @pytest.mark.parametrize("n", [5, 6, 9, 12])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bits_delivered_both_sides(self, n, seed):
        sched = prepared_sched(n, seed)
        state = sched.state
        # Each agent transmits its ID's parity.
        exchange_bits(sched, lambda view: view.agent_id & 1)
        for i, view in enumerate(sched.views):
            r = own_right_index(state, i)
            l = own_right_index(state, i) if False else None
            left_idx = (
                (i - 1) % state.n
                if state.chiralities[i] is Chirality.CLOCKWISE
                else (i + 1) % state.n
            )
            assert view.memory[KEY_FROM_RIGHT] == state.ids[r] & 1
            assert view.memory[KEY_FROM_LEFT] == state.ids[left_idx] & 1

    def test_positions_restored(self):
        sched = prepared_sched(8, seed=3)
        start = sched.state.snapshot()
        exchange_bits(sched, lambda view: 1)
        assert sched.state.snapshot() == start

    def test_uniform_bits(self):
        """All-equal bits: no collisions in some probes; decoding must
        still work (None coll means no approach)."""
        sched = prepared_sched(7, seed=4, common_sense=True)
        exchange_bits(sched, lambda view: 1)
        for view in sched.views:
            assert view.memory[KEY_FROM_RIGHT] == 1
            assert view.memory[KEY_FROM_LEFT] == 1

    def test_rejects_bad_bit(self):
        sched = prepared_sched(6, seed=0)
        with pytest.raises(ProtocolError):
            exchange_bits(sched, lambda view: 2)

    def test_requires_neighbor_discovery(self):
        state = random_configuration(6, seed=0)
        sched = Scheduler(state, Model.PERCEPTIVE)
        with pytest.raises(ProtocolError):
            exchange_bits(sched, lambda view: 0)

    def test_costs_four_rounds(self):
        sched = prepared_sched(6, seed=1)
        before = sched.rounds
        exchange_bits(sched, lambda view: view.agent_id & 1)
        assert sched.rounds - before == 4


class TestExchangeFrame:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_values_delivered(self, seed):
        sched = prepared_sched(8, seed=seed)
        state = sched.state
        exchange_frame(sched, lambda view: view.agent_id, width=6)
        for i, view in enumerate(sched.views):
            r = own_right_index(state, i)
            assert view.memory["comm.frame_from_right"] == state.ids[r]

    def test_none_frames(self):
        sched = prepared_sched(8, seed=2)
        exchange_frame(
            sched,
            lambda view: view.agent_id if view.agent_id & 1 else None,
            width=6,
        )
        state = sched.state
        for i, view in enumerate(sched.views):
            r = own_right_index(state, i)
            expected = state.ids[r] if state.ids[r] & 1 else None
            assert view.memory["comm.frame_from_right"] == expected

    def test_value_too_wide_rejected(self):
        sched = prepared_sched(6, seed=0)
        with pytest.raises(ProtocolError):
            exchange_frame(sched, lambda view: 64, width=6)


class TestRelayFlood:
    @pytest.mark.parametrize("n,seed", [(9, 0), (12, 1), (8, 5)])
    def test_single_source_flood(self, n, seed):
        sched = prepared_sched(n, seed)
        state = sched.state
        source_id = state.ids[0]
        distance = 3
        relay_flood(
            sched,
            lambda view: 5 if view.agent_id == source_id else None,
            distance=distance,
            width=4,
        )
        for i, view in enumerate(sched.views):
            msgs = received_messages(view)
            # Ring distances from agent 0 (objective both ways).
            cw_hops = (i - 0) % n      # source is cw_hops behind me
            ccw_hops = (0 - i) % n
            expect = []
            if 1 <= cw_hops <= distance:
                expect.append((cw_hops, 5))
            if 1 <= ccw_hops <= distance:
                expect.append((ccw_hops, 5))
            got = sorted((hop, value) for _side, hop, value in msgs)
            assert got == sorted(expect), f"agent {i}"

    def test_sides_are_consistent_with_chirality(self):
        sched = prepared_sched(10, seed=7)
        state = sched.state
        n = state.n
        source_id = state.ids[0]
        relay_flood(
            sched,
            lambda view: 1 if view.agent_id == source_id else None,
            distance=2,
            width=2,
        )
        for i, view in enumerate(sched.views):
            for side, hop, _value in received_messages(view):
                # Translate the own-frame side into an objective offset.
                chir = state.chiralities[i]
                sign = 1 if chir is Chirality.CLOCKWISE else -1
                offset = hop * sign if side == "right" else -hop * sign
                assert (i + offset) % n == 0, (
                    f"agent {i} misattributed the source's side"
                )

    def test_two_sparse_sources(self):
        sched = prepared_sched(12, seed=3)
        state = sched.state
        sources = {state.ids[0]: 2, state.ids[6]: 3}
        relay_flood(
            sched,
            lambda view: sources.get(view.agent_id),
            distance=2,
            width=3,
        )
        # Agent 1 is 1 hop cw of source 0 and far from source 6.
        msgs = received_messages(sched.views[1])
        values = {value for _s, _h, value in msgs}
        assert 2 in values and 3 not in values
