"""Property-based scenario fuzzer for the adversarial execution models.

Hypothesis draws whole scenarios -- a registry protocol, a model, a
backend, a ring size and a seeded :class:`~repro.faults.plan.FaultPlan`
-- and asserts the fault layer's contracts over the joint space:

* **Trichotomy.**  Every faulted run must *survive* (byte-identical
  payload to the fault-free twin), *detect* (a
  :class:`~repro.exceptions.ReproError`), or *report* (a visibly
  different payload).  Uncontrolled exceptions and silent wrong
  answers are the bugs this fuzzer hunts.
* **Null-plan equivalence.**  ``FaultPlan.none()`` threads through the
  whole stack (session, scheduler, fleet row) as structural ``None``:
  its result payload is byte-identical to a plain run's, on every
  backend.
* **Determinism.**  Classifying the same scenario twice gives the
  same outcome, error type and payload -- the precondition for the
  regression corpus being replayable at all.
* **Plan round-trips.**  ``FaultPlan`` survives dict / canonical-JSON /
  coerce round-trips unchanged.

When a draw violates a property, the scenario is recorded into
``tests/regression_corpus/`` (content-addressed, so shrink re-runs
overwrite rather than accumulate) and the failure message carries the
``tools/record_regression.py`` command that reproduces it.  The suite
runs with ``derandomize=True``: CI failures are reproducible by
construction, and the corpus -- not hypothesis' example database -- is
the cross-run memory.
"""

import json

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="the scenario fuzzer needs hypothesis"
)

from hypothesis import HealthCheck, assume, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.api import RingSession  # noqa: E402
from repro.api.fleet import SessionSpec  # noqa: E402
from repro.api.registry import list_protocols  # noqa: E402
from repro.faults.corpus import record_scenario  # noqa: E402
from repro.faults.plan import BYZANTINE_MODES, FaultPlan  # noqa: E402
from repro.faults.report import OUTCOMES, classify_spec  # noqa: E402

PROTOCOLS = tuple(spec.name for spec in list_protocols())
MODELS = ("perceptive", "lazy", "basic")
BACKENDS = ("lattice", "fraction", "array")

#: Infeasible by the paper's impossibility result (Table I).
INFEASIBLE = {("location-discovery", "basic", True)}

#: One fixed profile for every property: derandomized (CI failures
#: reproduce by construction), no deadline (the jammed-channel worst
#: case is slow on purpose), modest example counts (the parametrized
#: sweep in test_failure_injection.py covers breadth; the fuzzer
#: covers the cross-product corners those grids miss).
FUZZ = settings(
    derandomize=True,
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def plan_documents(n: int) -> st.SearchStrategy:
    """Fault-plan documents valid for an ``n``-agent ring."""
    slots = st.integers(min_value=0, max_value=n - 1)
    rounds = st.integers(min_value=0, max_value=12)
    return st.fixed_dictionaries({
        "seed": st.integers(min_value=0, max_value=2 ** 16),
        "crashes": st.dictionaries(slots, rounds, max_size=2),
        "byzantine": st.dictionaries(
            slots,
            st.fixed_dictionaries({
                "round": rounds,
                "mode": st.sampled_from(BYZANTINE_MODES),
            }),
            max_size=2,
        ),
        "delays": st.dictionaries(
            slots, st.integers(min_value=1, max_value=3), max_size=2
        ),
        "max_rounds": st.one_of(
            st.none(), st.integers(min_value=15, max_value=400)
        ),
    })


def _spec(protocol, model, n, seed, plan_doc):
    return SessionSpec(
        n=n, protocol=protocol, model=model, seed=seed,
        faults=None if plan_doc is None else FaultPlan.from_dict(
            plan_doc
        ).canonical(),
    )


def _reproduce_hint(spec: SessionSpec) -> str:
    return (
        "reproduce/pin with: python tools/record_regression.py "
        f"--protocol {spec.protocol} --n {spec.n} --model {spec.model} "
        f"--seed {spec.seed} --faults '{spec.faults}'"
    )


class TestTrichotomy:
    @FUZZ
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        model=st.sampled_from(MODELS),
        n=st.sampled_from((8, 9)),
        seed=st.integers(min_value=0, max_value=31),
        data=st.data(),
    )
    def test_fuzzed_scenario_obeys_trichotomy(
        self, protocol, model, n, seed, data
    ):
        assume((protocol, model, n % 2 == 0) not in INFEASIBLE)
        plan_doc = data.draw(plan_documents(n), label="fault plan")
        spec = _spec(protocol, model, n, seed, plan_doc)
        try:
            classification = classify_spec(spec)
            assert classification.outcome in OUTCOMES
            if classification.outcome == "detect":
                assert classification.error_type
            else:
                assert classification.result is not None
        except Exception as error:  # noqa: BLE001 -- record, then re-raise
            if spec.faults is not None:
                try:
                    record_scenario(
                        spec, note=f"fuzzer find: {type(error).__name__}"
                    )
                except Exception:  # noqa: BLE001 -- scenario unrecordable
                    pass  # the hint below is the fallback
            raise AssertionError(
                f"trichotomy violation for {spec!r}: "
                f"{type(error).__name__}: {error}\n{_reproduce_hint(spec)}"
            ) from error

    @FUZZ
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        model=st.sampled_from(MODELS),
        n=st.sampled_from((8, 9)),
        seed=st.integers(min_value=0, max_value=31),
        data=st.data(),
    )
    def test_classification_is_deterministic(
        self, protocol, model, n, seed, data
    ):
        assume((protocol, model, n % 2 == 0) not in INFEASIBLE)
        plan_doc = data.draw(plan_documents(n), label="fault plan")
        spec = _spec(protocol, model, n, seed, plan_doc)
        first = classify_spec(spec)
        second = classify_spec(spec)
        assert first.outcome == second.outcome, _reproduce_hint(spec)
        assert first.error_type == second.error_type
        assert json.dumps(first.result, sort_keys=True) == json.dumps(
            second.result, sort_keys=True
        )


class TestNullPlanEquivalence:
    @FUZZ
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        model=st.sampled_from(MODELS),
        n=st.sampled_from((8, 9)),
        seed=st.integers(min_value=0, max_value=31),
    )
    def test_none_plan_is_byte_identical_on_every_backend(
        self, protocol, model, n, seed
    ):
        """``FaultPlan.none()`` must be invisible: same payload bytes
        as no plan at all, on every backend (so the fault axis can ride
        every session without perturbing a single existing digest)."""
        assume((protocol, model, n % 2 == 0) not in INFEASIBLE)
        payloads = set()
        for backend in BACKENDS:
            for faults in (None, FaultPlan.none()):
                session = RingSession(
                    n=n, model=model, backend=backend, seed=seed,
                    faults=faults,
                )
                assert session.faults is None
                result = session.run(protocol)
                payloads.add(json.dumps(result.to_dict(), sort_keys=True))
        assert len(payloads) == 1


class TestPlanRoundTrips:
    @FUZZ
    @given(data=st.data())
    def test_plan_survives_dict_and_json_round_trips(self, data):
        plan_doc = data.draw(plan_documents(10), label="fault plan")
        plan = FaultPlan.from_dict(plan_doc)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(plan.canonical()) == plan
        assert FaultPlan.coerce(plan.canonical()) == (
            None if plan.is_none() else plan
        )
        # Canonical JSON is a fixed point: reserialising the parsed
        # form reproduces the exact bytes (the store key relies on it).
        assert FaultPlan.from_json(plan.canonical()).canonical() == (
            plan.canonical()
        )

    @FUZZ
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_empty_plans_coerce_to_none(self, seed):
        assert FaultPlan.coerce({"seed": seed}) is None
        assert FaultPlan(seed=seed).is_none()
        assert FaultPlan.coerce(None) is None
