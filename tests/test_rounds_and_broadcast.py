"""Tests for the round helpers (SINGLEROUND machinery) and the
rotation-coded global broadcast."""

import pytest

from repro.core.rounds import (
    get_direction,
    reversed_round,
    run_marked_sequence,
    run_set_round,
    set_direction,
    single_round,
)
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.direction_agreement import assume_common_frame
from repro.protocols.global_broadcast import (
    KEY_BROADCAST_VALUE,
    broadcast_value,
)
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model

R, L = LocalDirection.RIGHT, LocalDirection.LEFT


class TestSingleReversedRounds:
    def test_default_direction_is_right(self):
        state = random_configuration(6, seed=0)
        sched = Scheduler(state, Model.BASIC)
        assert get_direction(sched.views[0]) is R

    def test_single_then_reversed_restores(self):
        state = random_configuration(7, seed=1, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        for i, view in enumerate(sched.views):
            set_direction(view, R if i % 2 else L)
        start = state.snapshot()
        single_round(sched)
        reversed_round(sched)
        assert state.snapshot() == start

    def test_two_singles_rotate_twice(self):
        state = random_configuration(6, seed=2, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        for i, view in enumerate(sched.views):
            set_direction(view, R if i == 0 else L)
        # r = (1 - 5) mod 6 = 2 per round.
        single_round(sched)
        single_round(sched)
        expected = list(state.initial_positions)
        assert state.positions == [expected[(i + 4) % 6] for i in range(6)]


class TestSetRounds:
    def test_run_set_round_rotation(self):
        state = random_configuration(6, seed=3, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        outcome = run_set_round(sched, set(state.ids[:2]))
        # RI(B) = 2|B| mod n = 4.
        assert outcome.rotation_index == 4

    def test_marked_sequence_stop_predicate(self):
        state = random_configuration(6, seed=4, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        sets = [set(), {state.ids[0]}, {state.ids[0], state.ids[1]}]
        outcomes = run_marked_sequence(
            sched,
            sets,
            is_marked=lambda view: True,
            stop=lambda outcome: outcome.rotation_index != 0,
        )
        # The empty set gives r = -n = 0; the singleton gives r = 2-n != 0.
        assert len(outcomes) == 2
        assert outcomes[-1].rotation_index != 0

    def test_unmarked_agents_move_right(self):
        state = random_configuration(6, seed=5, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        marked_id = state.ids[0]
        outcomes = run_marked_sequence(
            sched,
            [set()],
            is_marked=lambda view: view.agent_id == marked_id,
        )
        # One marked agent moves LEFT (not in the set); rest RIGHT.
        assert outcomes[0].rotation_index == (6 - 2) % 6


class TestGlobalBroadcast:
    def _sched(self, n=8, seed=1):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        # Broadcast needs a common frame; grant it via the test's
        # omniscient knowledge of chirality.
        from repro.protocols.base import KEY_FRAME_FLIP
        from repro.types import Chirality

        for i, view in enumerate(sched.views):
            view.memory[KEY_FRAME_FLIP] = (
                state.chiralities[i] is Chirality.ANTICLOCKWISE
            )
        return sched, state

    @pytest.mark.parametrize("value", [0, 1, 5, 13, 31])
    def test_value_received_by_all(self, value):
        sched, state = self._sched()
        announcer = state.ids[3]
        got = broadcast_value(
            sched,
            is_announcer=lambda v: v.agent_id == announcer,
            value_of=lambda v: value,
        )
        assert got == value
        assert all(
            v.memory[KEY_BROADCAST_VALUE] == value for v in sched.views
        )

    def test_positions_restored(self):
        sched, state = self._sched()
        start = state.snapshot()
        broadcast_value(
            sched,
            is_announcer=lambda v: v.agent_id == state.ids[0],
            value_of=lambda v: 9,
        )
        assert state.snapshot() == start

    def test_round_cost(self):
        sched, state = self._sched()
        broadcast_value(
            sched,
            is_announcer=lambda v: v.agent_id == state.ids[0],
            value_of=lambda v: 3,
            width=5,
        )
        assert sched.rounds == 10  # 2 per bit

    def test_requires_unique_announcer(self):
        sched, state = self._sched()
        with pytest.raises(ProtocolError):
            broadcast_value(
                sched, is_announcer=lambda v: True, value_of=lambda v: 1
            )
        with pytest.raises(ProtocolError):
            broadcast_value(
                sched, is_announcer=lambda v: False, value_of=lambda v: 1
            )

    def test_value_must_fit(self):
        sched, state = self._sched()
        with pytest.raises(ProtocolError):
            broadcast_value(
                sched,
                is_announcer=lambda v: v.agent_id == state.ids[0],
                value_of=lambda v: 1 << 20,
                width=4,
            )

    def test_requires_common_frame(self):
        state = random_configuration(6, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            broadcast_value(
                sched,
                is_announcer=lambda v: v.agent_id == state.ids[0],
                value_of=lambda v: 1,
            )
