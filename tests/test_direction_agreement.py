"""Tests for direction agreement (Algorithm 1 and Proposition 17)."""

from fractions import Fraction

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_NMOVE_DIR
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    agree_direction_odd,
    assume_common_frame,
)
from repro.ring.configs import random_configuration
from repro.types import Chirality, LocalDirection, Model


def frames_are_common(sched: Scheduler) -> bool:
    """Omniscient check: chirality XOR flip must be constant."""
    effective = set()
    for view, chir in zip(sched.views, sched.state.chiralities):
        flip = view.memory[KEY_FRAME_FLIP]
        effective.add(int(chir) * (-1 if flip else 1))
    return len(effective) == 1


class TestOddDirectionAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_chirality(self, seed):
        state = random_configuration(7, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        start = state.snapshot()
        agree_direction_odd(sched)
        assert frames_are_common(sched)
        assert state.snapshot() == start  # position restoring
        assert sched.rounds == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_already_common(self, seed):
        state = random_configuration(9, seed=seed, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        agree_direction_odd(sched)
        assert frames_are_common(sched)
        # Nobody should flip when senses already agree.
        assert all(not v.memory[KEY_FRAME_FLIP] for v in sched.views)

    def test_rejects_even_n(self):
        state = random_configuration(8, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            agree_direction_odd(sched)

    @pytest.mark.parametrize("n", [5, 7, 11, 15])
    def test_various_sizes(self, n):
        state = random_configuration(n, seed=n, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        agree_direction_odd(sched)
        assert frames_are_common(sched)


class TestAlgorithmOne:
    def _sched_with_nmove(self, n, seed, model=Model.BASIC):
        """Set up a scheduler with an omnisciently-chosen nontrivial move."""
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, model)
        # Omniscient nontrivial move: exactly one agent objectively cw.
        # r = (1 - (n-1)) mod n = 2 (mod n), nontrivial for n > 4.
        for i, view in enumerate(sched.views):
            objective = 1 if i == 0 else -1
            local_cw = objective * int(state.chiralities[i])
            view.memory[KEY_NMOVE_DIR] = (
                LocalDirection.RIGHT if local_cw > 0 else LocalDirection.LEFT
            )
        return sched

    @pytest.mark.parametrize("n", [6, 7, 8, 12])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_agreement_from_nontrivial_move(self, n, seed):
        sched = self._sched_with_nmove(n, seed)
        start = sched.state.snapshot()
        agree_direction_from_nontrivial_move(sched)
        assert frames_are_common(sched)
        assert sched.state.snapshot() == start
        assert sched.rounds == 4

    def test_raises_without_nmove(self):
        state = random_configuration(6, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            agree_direction_from_nontrivial_move(sched)

    def test_raises_on_trivial_move(self):
        state = random_configuration(6, seed=0, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        # All agents share chirality, all move RIGHT: r = n mod n = 0.
        for view in sched.views:
            view.memory[KEY_NMOVE_DIR] = LocalDirection.RIGHT
        with pytest.raises(ProtocolError):
            agree_direction_from_nontrivial_move(sched)


class TestAssumeCommonFrame:
    def test_sets_flips_without_rounds(self):
        state = random_configuration(6, seed=0, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        assume_common_frame(sched)
        assert sched.rounds == 0
        assert frames_are_common(sched)
