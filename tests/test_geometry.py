"""Unit tests for exact circle arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    ccw_arc,
    cw_arc,
    gaps,
    interleave_sum,
    is_ring_ordered,
    normalize,
    sort_ring,
)

F = Fraction


def frac(denom_bits: int = 10):
    denom = 1 << denom_bits
    return st.integers(min_value=-3 * denom, max_value=3 * denom).map(
        lambda k: Fraction(k, denom)
    )


class TestNormalize:
    def test_identity_in_range(self):
        assert normalize(F(1, 3)) == F(1, 3)

    def test_wraps_above_one(self):
        assert normalize(F(7, 3)) == F(1, 3)

    def test_wraps_negative(self):
        assert normalize(F(-1, 4)) == F(3, 4)

    def test_zero(self):
        assert normalize(F(0)) == 0
        assert normalize(F(1)) == 0

    @given(frac())
    def test_result_in_unit_interval(self, x):
        y = normalize(x)
        assert 0 <= y < 1

    @given(frac(), st.integers(min_value=-5, max_value=5))
    def test_invariant_under_integer_shift(self, x, k):
        assert normalize(x + k) == normalize(x)


class TestArcs:
    def test_cw_simple(self):
        assert cw_arc(F(1, 4), F(3, 4)) == F(1, 2)

    def test_cw_wraps(self):
        assert cw_arc(F(3, 4), F(1, 4)) == F(1, 2)

    def test_cw_zero(self):
        assert cw_arc(F(2, 5), F(2, 5)) == 0

    def test_ccw_is_complement(self):
        assert ccw_arc(F(1, 4), F(3, 4)) == F(1, 2)
        assert ccw_arc(F(0), F(1, 3)) == F(2, 3)

    @given(frac(), frac())
    def test_cw_plus_ccw_is_one_or_zero(self, a, b):
        total = cw_arc(a, b) + ccw_arc(a, b)
        assert total in (0, 1)
        assert (total == 0) == (normalize(a) == normalize(b))

    @given(frac(), frac(), frac())
    def test_cw_triangle_additivity(self, a, b, c):
        # Walking a->b->c clockwise covers a->c plus possibly full turns.
        walked = cw_arc(a, b) + cw_arc(b, c)
        assert normalize(walked) == cw_arc(a, c)


class TestGaps:
    def test_gaps_sum_to_one(self):
        p = [F(0), F(1, 8), F(1, 2), F(3, 4)]
        assert sum(gaps(p)) == 1

    def test_gap_values(self):
        p = [F(0), F(1, 4), F(1, 2)]
        assert gaps(p) == [F(1, 4), F(1, 4), F(1, 2)]

    def test_ring_ordered_accepts_rotated_start(self):
        p = [F(1, 2), F(3, 4), F(0), F(1, 4)]
        assert is_ring_ordered(p)

    def test_ring_ordered_rejects_shuffled(self):
        p = [F(0), F(1, 2), F(1, 4), F(3, 4)]
        assert not is_ring_ordered(p)

    def test_ring_ordered_rejects_duplicates(self):
        p = [F(0), F(1, 2), F(1, 2)]
        assert not is_ring_ordered(p)

    def test_sort_ring(self):
        p = [F(1, 2), F(0), F(3, 4)]
        assert sort_ring(p) == [1, 0, 2]


class TestInterleaveSum:
    def test_window(self):
        vals = [F(1), F(2), F(3), F(4)]
        assert interleave_sum(vals, 1, 2) == 5

    def test_wraparound(self):
        vals = [F(1), F(2), F(3), F(4)]
        assert interleave_sum(vals, 3, 2) == 5

    def test_zero_count(self):
        assert interleave_sum([F(1)], 0, 0) == 0

    def test_full_cycle_is_total(self):
        vals = [F(1, 3), F(1, 3), F(1, 3)]
        assert interleave_sum(vals, 2, 3) == 1
