"""Tests for RingState validation and RingSimulator observation frames."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, ModelViolationError
from repro.geometry import cw_arc
from repro.ring.configs import (
    clustered_configuration,
    explicit_configuration,
    jittered_equidistant_configuration,
    random_configuration,
)
from repro.ring.simulator import RingSimulator
from repro.ring.state import RingState
from repro.types import Chirality, LocalDirection, Model

F = Fraction
R, L, I = LocalDirection.RIGHT, LocalDirection.LEFT, LocalDirection.IDLE


def make_state(n=6, chiralities=None, id_bound=None):
    return explicit_configuration(
        positions=[F(i, n) for i in range(n)],
        ids=list(range(1, n + 1)),
        chiralities=chiralities or [Chirality.CLOCKWISE] * n,
        id_bound=id_bound or 2 * n,
    )


class TestRingStateValidation:
    def test_rejects_small_n(self):
        with pytest.raises(ConfigurationError):
            RingState(
                positions=[F(0), F(1, 4), F(1, 2), F(3, 4)],
                ids=[1, 2, 3, 4],
                chiralities=[Chirality.CLOCKWISE] * 4,
                id_bound=8,
            )

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ConfigurationError):
            RingState(
                positions=[F(i, 5) for i in range(5)],
                ids=[1, 2, 3, 3, 5],
                chiralities=[Chirality.CLOCKWISE] * 5,
                id_bound=10,
            )

    def test_rejects_unordered_positions(self):
        with pytest.raises(ConfigurationError):
            RingState(
                positions=[F(0), F(1, 2), F(1, 4), F(3, 4), F(7, 8)],
                ids=[1, 2, 3, 4, 5],
                chiralities=[Chirality.CLOCKWISE] * 5,
                id_bound=10,
            )

    def test_rejects_id_above_bound(self):
        with pytest.raises(ConfigurationError):
            RingState(
                positions=[F(i, 5) for i in range(5)],
                ids=[1, 2, 3, 4, 11],
                chiralities=[Chirality.CLOCKWISE] * 5,
                id_bound=10,
            )

    def test_gaps_and_rotation(self):
        st6 = make_state(6)
        assert st6.gaps() == [F(1, 6)] * 6
        st6.apply_rotation(2)
        assert st6.positions[0] == F(2, 6)

    def test_snapshot_restore(self):
        st6 = make_state(6)
        snap = st6.snapshot()
        st6.apply_rotation(3)
        assert st6.positions != list(snap)
        st6.restore(snap)
        assert st6.positions == list(snap)

    def test_index_of_id(self):
        st6 = make_state(6)
        assert st6.index_of_id(3) == 2
        with pytest.raises(ConfigurationError):
            st6.index_of_id(99)


class TestConfigGenerators:
    @pytest.mark.parametrize("n", [5, 6, 9, 16])
    def test_random_configuration_valid(self, n):
        state = random_configuration(n, seed=3)
        assert state.n == n
        assert sum(state.gaps()) == 1

    def test_reproducible(self):
        a = random_configuration(8, seed=5)
        b = random_configuration(8, seed=5)
        assert a.positions == b.positions and a.ids == b.ids

    def test_common_sense_flag(self):
        state = random_configuration(8, seed=1, common_sense=True)
        assert set(state.chiralities) == {Chirality.CLOCKWISE}
        state = random_configuration(8, seed=1, common_sense=False)
        assert len(set(state.chiralities)) == 2

    def test_jittered_equidistant(self):
        state = jittered_equidistant_configuration(10, seed=2)
        assert state.n == 10

    def test_clustered(self):
        state = clustered_configuration(10, seed=2)
        span = cw_arc(state.positions[0], state.positions[-1])
        assert span <= F(1, 16)


class TestSimulatorFrames:
    def test_idle_rejected_in_basic(self):
        sim = RingSimulator(make_state(), Model.BASIC)
        with pytest.raises(ModelViolationError):
            sim.execute([I, R, R, R, R, R])

    def test_idle_allowed_in_lazy(self):
        sim = RingSimulator(make_state(), Model.LAZY)
        outcome = sim.execute([I, R, R, R, R, R])
        assert outcome.rotation_index == 5

    def test_flipped_agent_moves_objectively_left(self):
        chir = [Chirality.ANTICLOCKWISE] + [Chirality.CLOCKWISE] * 5
        sim = RingSimulator(make_state(chiralities=chir), Model.LAZY)
        outcome = sim.execute([R, I, I, I, I, I])
        # Agent 0 chose RIGHT but objectively moves anticlockwise: r = -1.
        assert outcome.rotation_index == 5  # -1 mod 6

    def test_dist_is_reported_in_own_frame(self):
        n = 6
        chir = [Chirality.CLOCKWISE] * 5 + [Chirality.ANTICLOCKWISE]
        sim = RingSimulator(make_state(chiralities=chir), Model.LAZY)
        outcome = sim.execute([R, I, I, I, I, I])
        # r = 1: every agent shifts one slot clockwise (arc 1/6).
        assert outcome.rotation_index == 1
        for i in range(5):
            assert outcome.observations[i].dist == F(1, 6)
        # The flipped agent measures the same arc anticlockwise: 5/6.
        assert outcome.observations[5].dist == F(5, 6)

    def test_no_coll_outside_perceptive(self):
        sim = RingSimulator(make_state(), Model.BASIC)
        outcome = sim.execute([R, L, R, L, R, L])
        assert all(o.coll is None for o in outcome.observations)

    def test_coll_reported_in_perceptive(self):
        sim = RingSimulator(make_state(), Model.PERCEPTIVE)
        outcome = sim.execute([R, L, R, L, R, L])
        assert all(o.coll == F(1, 12) for o in outcome.observations)

    def test_cross_validation_mode(self):
        sim = RingSimulator(make_state(), Model.BASIC, cross_validate=True)
        outcome = sim.execute([R, R, L, L, R, L])
        assert outcome.collision_events > 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=5, max_value=10), st.integers(0, 10_000))
    def test_round_then_reverse_restores_positions(self, n, seed):
        state = random_configuration(n, seed=seed)
        sim = RingSimulator(state, Model.PERCEPTIVE, cross_validate=True)
        start = state.snapshot()
        import random as _random

        rng = _random.Random(seed)
        dirs = [rng.choice((R, L)) for _ in range(n)]
        sim.execute(dirs)
        sim.execute([d.opposite() for d in dirs])
        assert state.snapshot() == start


class TestSchedulerBasics:
    def test_views_hide_world_state(self):
        from repro.core.scheduler import Scheduler

        sched = Scheduler(make_state(), Model.BASIC)
        for view in sched.views:
            assert not hasattr(view, "positions")
            assert not hasattr(view, "chirality")
        assert sched.rounds == 0
        sched.run_fixed(R)
        assert sched.rounds == 1
        assert all(len(v.log) == 1 for v in sched.views)

    def test_observations_private_per_agent(self):
        from repro.core.scheduler import Scheduler

        chir = [Chirality.ANTICLOCKWISE] + [Chirality.CLOCKWISE] * 5
        sched = Scheduler(make_state(chiralities=chir), Model.BASIC)
        sched.run_fixed(R)
        # Mixed chirality all-RIGHT round: r = (1*5 - 1) mod 6 = 4.
        dists = {v.last.dist for v in sched.views}
        assert len(dists) > 1  # frames differ, so observations differ
