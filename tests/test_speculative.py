"""Speculative fused stretches and unchecked execution.

Three guarantees are pinned here:

* **Cut-back semantics** -- a :class:`SpeculativeStretch`'s stop
  predicate decides the committed span length on every backend: firing
  at round 0 commits one round, never firing commits the full span,
  firing mid probe/restore pair leaves the world at the probe boundary
  (the rollback really is a state-level cut, not a view trick).  The
  predicate is called once per executed round, in order, on both the
  columnar and the scalar path.
* **Equivalence under chunking** -- the speculative sweeps stay
  bit-exact against the callback drivers even when forced to speculate
  in tiny multi-chunk spans (truncation in the middle of a chunk).
* **Unchecked execution** -- skipping the provably-restoring rounds of
  probe/restore pairs preserves final positions and protocol results
  across all three backends while executing strictly fewer rounds.
"""

import pytest

from repro.api import RingSession, SpeculativeStretch, Stretch
from repro.core.scheduler import Scheduler
from repro.protocols.policies.base import PhasePolicy
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model

R, L = LocalDirection.RIGHT, LocalDirection.LEFT

BACKENDS = ("lattice", "array", "fraction")


def fresh_sched(backend, n=8, seed=2, model=Model.PERCEPTIVE, **kwargs):
    return Scheduler(
        random_configuration(n, seed=seed), model, backend=backend,
        **kwargs,
    )


class TestStopPredicate:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fires_at_round_zero(self, backend):
        sched = fresh_sched(backend)
        vec = [R, L] * 4
        result = sched.run_stretch(
            SpeculativeStretch(vec, 5, stop=lambda result, j: True)
        )
        assert result.k == 1
        assert sched.rounds == 1
        ref = fresh_sched("fraction")
        outcome = ref.simulator.execute(vec)
        assert sched.state.snapshot() == ref.state.snapshot()
        assert result.observations(0) == outcome.observations

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_never_fires_commits_full_span(self, backend):
        vec = [R, L] * 4
        spec = fresh_sched(backend)
        result = spec.run_stretch(
            SpeculativeStretch(vec, 6, stop=lambda result, j: False)
        )
        assert result.k == 6
        assert spec.rounds == 6
        plain = fresh_sched(backend)
        ref = plain.run_stretch(Stretch(vec, 6))
        assert spec.state.snapshot() == plain.state.snapshot()
        for j in range(6):
            assert result.observations(j) == ref.observations(j)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fires_mid_probe_restore_pair(self, backend):
        # The plan is a fused probe/restore pair; the predicate fires
        # on the probe, so the restore must never happen -- the world
        # ends at the post-probe rotation, bit-exact with a scalar
        # probe-only reference.
        vec = [R, L, R, R, L, R, L, L]
        sched = fresh_sched(backend)
        pair = Stretch.probe_restore(vec)
        result = sched.run_stretch(
            SpeculativeStretch(pairs=pair.pairs, stop=lambda r, j: j == 0)
        )
        assert result.k == 1
        assert sched.rounds == 1
        ref = fresh_sched("fraction")
        ref.simulator.execute(vec)
        assert sched.state.snapshot() == ref.state.snapshot()

    @pytest.mark.parametrize("backend", ("lattice", "array"))
    def test_predicate_called_once_per_round_in_order(self, backend):
        sched = fresh_sched(backend)
        seen = []

        def stop(result, j):
            seen.append(j)
            # The result must already hold rounds 0..j.
            assert result.k >= j + 1
            return j == 3

        result = sched.run_stretch(
            SpeculativeStretch([R] * 8, 7, stop=stop)
        )
        assert seen == [0, 1, 2, 3]
        assert result.k == 4
        assert sched.rounds == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cut_back_rewinds_lazy_commit(self, backend):
        # After the cut, history holds exactly the committed rounds and
        # a subsequent plain round continues from the boundary.
        sched = fresh_sched(backend)
        vec = [R] * 8
        sched.run_stretch(SpeculativeStretch(vec, 6, stop=lambda r, j: j == 1))
        assert len(sched.population.history) == 2
        sched.run_fixed(L, k=1)
        ref = fresh_sched(backend)
        ref.run_fixed(R, k=2)
        ref.run_fixed(L, k=1)
        assert sched.state.snapshot() == ref.state.snapshot()
        assert sched.rounds == ref.rounds == 3


class TestSpeculativeSweepChunking:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_chunk_sweeps_stay_bit_exact(self, backend, monkeypatch):
        # Chunks of 3 force several speculative spans plus a mid-chunk
        # truncation; results must not move.
        from repro.protocols.policies import location_discovery as native

        def run(chunk):
            if chunk is not None:
                monkeypatch.setattr(native, "_MAX_CHUNK", chunk)
            session = RingSession(
                n=9, model="lazy", backend=backend, seed=5,
            )
            result = session.run("location-discovery")
            return (
                session.rounds,
                session.state.snapshot(),
                result.to_dict(),
            )

        chunked = run(3)
        monkeypatch.undo()
        assert chunked == run(None)

    def test_distances_speculative_matches_callback(self):
        fingerprints = {}
        for driver in ("native", "callback"):
            session = RingSession(
                n=12, model="perceptive", backend="array", seed=7,
                driver=driver,
            )
            result = session.run("location-discovery")
            fingerprints[driver] = (
                session.rounds,
                session.state.snapshot(),
                result.to_dict(),
                [list(v.log) for v in session.views],
            )
        assert fingerprints["native"] == fingerprints["callback"]


def result_core(session, result):
    """The unchecked-invariant part of a run: world + protocol output
    (round counts and logs are legitimately different)."""
    payload = result.to_dict()
    payload.pop("rounds", None)
    payload.pop("rounds_by_phase", None)
    return (session.state.snapshot(), payload)


class TestUnchecked:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "protocol,model,n",
        [
            ("coordination", "perceptive", 12),
            ("location-discovery", "perceptive", 12),
            ("coordination", "lazy", 9),
        ],
    )
    def test_positions_and_results_restore(
        self, protocol, model, n, backend
    ):
        checked = RingSession(n=n, model=model, backend=backend, seed=7)
        unchecked = RingSession(
            n=n, model=model, backend=backend, seed=7, unchecked=True,
        )
        r_checked = checked.run(protocol)
        r_unchecked = unchecked.run(protocol)
        assert result_core(unchecked, r_unchecked) == result_core(
            checked, r_checked
        )
        # The fast mode really skipped something.
        assert unchecked.rounds < checked.rounds

    def test_unchecked_identical_across_backends(self):
        fingerprints = []
        for backend in BACKENDS:
            session = RingSession(
                n=12, model="perceptive", backend=backend, seed=3,
                unchecked=True,
            )
            result = session.run("location-discovery")
            fingerprints.append((
                session.rounds,
                result_core(session, result),
                [dict(v.memory) for v in session.views],
                [list(v.log) for v in session.views],
            ))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_push_probe_restores_positions_in_one_round(self, backend):
        sched = fresh_sched(backend, unchecked=True)
        before = sched.state.snapshot()
        policy = PhasePolicy(sched)
        seen = []
        policy.push_probe([R, L] * 4, lambda obs: seen.append(len(obs)))
        policy.run()
        assert seen == [8]
        assert sched.rounds == 1  # the restore never ran ...
        assert sched.state.snapshot() == before  # ... yet positions restored

    def test_cross_validation_disables_skipping(self):
        sched = fresh_sched("array", cross_validate=True, unchecked=True)
        assert sched.unchecked is False
        policy = PhasePolicy(sched)
        policy.push_probe([R, L] * 4)
        policy.run()
        assert sched.rounds == 2

    def test_cli_unchecked_smoke(self, capsys):
        import json

        from repro.__main__ import main

        assert main([
            "run", "coordination", "--n", "8", "--unchecked", "--json",
        ]) == 0
        fast = json.loads(capsys.readouterr().out)
        assert fast["unchecked"] is True
        assert main(["run", "coordination", "--n", "8", "--json"]) == 0
        ref = json.loads(capsys.readouterr().out)
        assert fast["result"]["leader_id"] == ref["result"]["leader_id"]
        assert fast["result"]["rounds"] < ref["result"]["rounds"]

    def test_sweep_unchecked_spec(self):
        from repro.api import sweep

        specs = sweep(sizes=(8,), seeds=(0,), unchecked=True)
        assert all(spec.unchecked for spec in specs)
