"""Hypothesis property tests for emptiness testing (Lemma 12).

Emptiness is the one protocol whose answer depends on an arbitrary
input set B, so it deserves a randomized sweep: any B, any geometry,
any chirality pattern, all four model/parity variants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.scheduler import Scheduler
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    agree_direction_odd,
)
from repro.protocols.emptiness import KEY_EMPTY_RESULT, emptiness_test
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.ring.configs import random_configuration
from repro.types import Model

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def prepared(n, seed, model):
    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, model)
    if n % 2 == 1:
        agree_direction_odd(sched)
    else:
        nmove_seeded_family(sched)
        agree_direction_from_nontrivial_move(sched)
    return sched


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=5, max_value=11))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    model = draw(st.sampled_from(list(Model)))
    sched = prepared(n, seed, model)
    id_bound = sched.views[0].id_bound
    candidate = draw(st.sets(
        st.integers(min_value=1, max_value=id_bound), max_size=id_bound
    ))
    return sched, candidate


class TestEmptinessProperties:
    @SLOW
    @given(instances())
    def test_answer_matches_ground_truth(self, instance):
        sched, candidate = instance
        present = set(sched.state.ids)
        truth = not (candidate & present)
        assert emptiness_test(sched, candidate) is truth

    @SLOW
    @given(instances())
    def test_consensus_and_restoration(self, instance):
        sched, candidate = instance
        start = sched.state.snapshot()
        emptiness_test(sched, candidate)
        answers = {v.memory[KEY_EMPTY_RESULT] for v in sched.views}
        assert len(answers) == 1
        assert sched.state.snapshot() == start

    @SLOW
    @given(st.integers(min_value=3, max_value=5),
           st.integers(min_value=0, max_value=1_000))
    def test_exact_half_intersections(self, half, seed):
        """The adversarial even-basic case |B ∩ A| = n/2 across sizes."""
        n = 2 * half
        if n <= 4:
            n = 6
        sched = prepared(n, seed, Model.BASIC)
        subset = set(sched.state.ids[: sched.state.n // 2])
        assert emptiness_test(sched, subset) is False
