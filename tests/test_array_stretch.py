"""Fused-stretch execution: plans, laziness, and zero per-round
overhead on the array backend.

Three guarantees are pinned here:

* **Equivalence** -- registry protocols run unchanged (same rounds,
  positions, logs, final memory) under ``backend="array"`` for both the
  native and the callback driver, against the lattice and Fraction
  backends.
* **Laziness** -- a fused span commits positions as a pending thunk
  (built only on an external read) and files its observation rows
  without materialising per-agent objects until something reads them.
* **Zero per-round dispatch** -- a fused span performs zero per-round
  ``decide()`` calls and zero per-agent memory-adapter accesses (the
  companion of PR 3's zero-ChoiceFn assertion, one level down).
"""

import pytest

from repro.api import RingSession, Stretch
from repro.core.agent import id_bits
from repro.core.population import LazyObsRow, MemorySlot
from repro.core.scheduler import Scheduler
from repro.protocols.policies.base import PhasePolicy
from repro.protocols.policies.bitcomm import relay_flood
from repro.protocols.policies.neighbor_discovery import discover_neighbors
from repro.ring.configs import random_configuration
from repro.ring.simulator import RingSimulator
from repro.types import LocalDirection, Model

R, L = LocalDirection.RIGHT, LocalDirection.LEFT


def session_fingerprint(session, result):
    sched = session.scheduler
    return (
        sched.rounds,
        sched.state.snapshot(),
        [list(v.log) for v in sched.views],
        [dict(v.memory) for v in sched.views],
        result.to_dict(),
    )


class TestRegistryEquivalenceOnArray:
    @pytest.mark.parametrize("driver", ["native", "callback"])
    @pytest.mark.parametrize(
        "protocol,model,n",
        [
            ("coordination", "perceptive", 12),
            ("location-discovery", "perceptive", 12),
            ("coordination", "lazy", 9),
        ],
    )
    def test_protocols_bit_exact_across_backends(
        self, protocol, model, n, driver
    ):
        fingerprints = {}
        for backend in ("lattice", "array", "fraction"):
            session = RingSession(
                n=n, model=model, backend=backend, seed=7, driver=driver,
            )
            result = session.run(protocol)
            fingerprints[backend] = session_fingerprint(session, result)
        assert fingerprints["array"] == fingerprints["lattice"]
        assert fingerprints["array"] == fingerprints["fraction"]

    def test_cross_validated_array_session(self):
        # Cross-validation forces the scalar fallback inside fused
        # plans; results must not change.
        plain = RingSession(
            n=9, model="perceptive", backend="array", seed=3,
        )
        checked = RingSession(
            n=9, model="perceptive", backend="array", seed=3,
            cross_validate=True,
        )
        r1 = plain.run("coordination")
        r2 = checked.run("coordination")
        assert session_fingerprint(plain, r1) == session_fingerprint(
            checked, r2
        )


class TestStretchPlans:
    def test_stretch_shapes(self):
        vec = [R, L, R, L, R]
        assert Stretch(vec, 3).rounds == 3
        assert Stretch.of([vec, vec]).rounds == 2
        pair = Stretch.probe_restore(vec)
        assert pair.rounds == 2
        assert pair.pairs[1][0] == [d.opposite() for d in vec]
        assert pair.last_row == pair.pairs[1][0]
        with pytest.raises(ValueError):
            Stretch(vec, 0)
        with pytest.raises(ValueError):
            Stretch()

    def test_run_fixed_stretch_matches_lattice_loop(self):
        make_state = lambda: random_configuration(9, seed=12)
        sched_a = Scheduler(make_state(), Model.PERCEPTIVE, backend="array")
        sched_l = Scheduler(make_state(), Model.PERCEPTIVE, backend="lattice")
        last_a = sched_a.run_fixed(R, k=6)
        last_l = sched_l.run_fixed(R, k=6)
        assert last_a == last_l
        assert sched_a.rounds == sched_l.rounds == 6
        for va, vb in zip(sched_a.views, sched_l.views):
            assert va.log == vb.log

    def test_stretch_memoised_across_repeats(self):
        sim = RingSimulator(
            random_configuration(8, seed=2), Model.PERCEPTIVE,
            backend="array",
        )
        vec = [R, L, R, L, R, L, R, L]
        first = sim.execute_stretch(Stretch.probe_restore(vec))
        second = sim.execute_stretch(Stretch.probe_restore(vec))
        # Identical (rows, offset) key: the whole span is one dict hit.
        assert second is first
        assert sim.rounds_executed == 4

    def test_policy_may_return_stretch_from_decide(self):
        sched = Scheduler(
            random_configuration(8, seed=2), Model.PERCEPTIVE,
            backend="array",
        )
        policy = PhasePolicy(sched)
        seen = []
        vec = [R, L] * 4
        policy.push_stretch(
            Stretch.probe_restore(vec),
            lambda result: seen.append(result.k),
        )
        policy.run()
        assert seen == [2]
        assert sched.rounds == 2

    @pytest.mark.parametrize("backend", ["lattice", "array"])
    def test_run_rounds_materialises_stretch_outcomes(self, backend):
        # run_rounds keeps its contract for stretch-planning policies:
        # one RoundOutcome per executed round, at least k of them.
        from repro.types import RoundOutcome

        sched = Scheduler(
            random_configuration(8, seed=2), Model.PERCEPTIVE,
            backend=backend,
        )
        vec = [R, L] * 4

        class PairPolicy(PhasePolicy):
            def decide(self, views):
                if not self._queue:
                    self.push_stretch(Stretch.probe_restore(vec))
                return super().decide(views)

        outcomes = sched.run_rounds(PairPolicy(sched), 3)
        # The second pair straddles k=3, so the span runs whole.
        assert len(outcomes) == 4
        assert sched.rounds == 4
        assert all(isinstance(o, RoundOutcome) for o in outcomes)
        ref = Scheduler(
            random_configuration(8, seed=2), Model.PERCEPTIVE,
            backend="fraction",
        )
        from repro.api.policy import VectorPolicy

        opp = [d.opposite() for d in vec]
        expected = [
            ref.run_round(VectorPolicy(v)) for v in (vec, opp, vec, opp)
        ]
        assert outcomes == expected


class TestGuardRails:
    def test_oversized_denominator_declines_vectorised_plans(self):
        # A shared denominator past int64 range must push every layer
        # back to the exact scalar paths, bit-exact with lattice.
        from fractions import Fraction as F

        from repro.ring.configs import explicit_configuration
        from repro.types import Chirality

        P = (1 << 66) + 3
        n = 6
        positions = [F(i, P) for i in range(n - 1)] + [F(P - 1, P)]

        def build():
            return explicit_configuration(
                positions, list(range(1, n + 1)),
                [Chirality.CLOCKWISE] * n, 2 * n,
            )

        sched = Scheduler(build(), Model.PERCEPTIVE, backend="array")
        assert sched.array_module is None  # not int64-fusable
        discover_neighbors(sched)
        ref = Scheduler(build(), Model.PERCEPTIVE, backend="lattice")
        discover_neighbors(ref)
        assert [dict(v.memory) for v in sched.views] == [
            dict(v.memory) for v in ref.views
        ]

    def test_malformed_sign_row_rejected(self):
        from repro.exceptions import SimulationError

        sim = Scheduler(
            random_configuration(6, seed=1), Model.PERCEPTIVE,
            backend="array",
        ).simulator
        with pytest.raises(SimulationError):
            sim.execute_stretch(Stretch([2, 1, 1, 1, 1, 1], 1))


class TestLaziness:
    def test_positions_materialise_only_on_read(self):
        state = random_configuration(9, seed=4)
        sim = RingSimulator(state, Model.PERCEPTIVE, backend="array")
        vec = [R, L, R, R, L, R, L, L, R]
        sim.execute_stretch(Stretch.probe_restore(vec))
        assert state._positions is None  # pending thunk, nothing built
        snap = state.snapshot()  # external read materialises once
        assert state._positions is not None
        ref = RingSimulator(
            random_configuration(9, seed=4), Model.PERCEPTIVE,
            backend="fraction",
        )
        ref.execute(vec)
        ref.execute([d.opposite() for d in vec])
        assert list(snap) == ref.state.positions

    def test_log_rows_stay_lazy_until_read(self):
        sched = Scheduler(
            random_configuration(8, seed=5), Model.PERCEPTIVE,
            backend="array",
        )
        sched.run_fixed(R, k=3)
        rows = sched.population.history._rows
        assert len(rows) == 3
        assert all(isinstance(row, LazyObsRow) for row in rows)
        # Reading one agent's view of round 1 materialises that row
        # (shared across agents), not the others.
        _ = sched.views[0].log[1]
        assert rows[1]._result._obs.get(1) is not None
        assert rows[0]._result._obs.get(0) is None

    def test_version_advances_per_round_in_stretch(self):
        state = random_configuration(8, seed=5)
        sim = RingSimulator(state, Model.PERCEPTIVE, backend="array")
        before = state.version
        sim.execute_stretch(Stretch([R] * 8, 4))
        assert state.version == before + 4


class TestZeroPerRoundOverhead:
    """A fused span: zero per-round ``decide()`` calls, zero per-agent
    memory-adapter accesses (satellite companion of PR 3's profiled
    zero-ChoiceFn test)."""

    def _instrument(self, monkeypatch):
        counts = {"decide": 0, "slot_ops": 0}
        real_decide = PhasePolicy.decide

        def counting_decide(self, views):
            counts["decide"] += 1
            return real_decide(self, views)

        monkeypatch.setattr(PhasePolicy, "decide", counting_decide)
        for name in ("__getitem__", "__setitem__", "__contains__"):
            real = getattr(MemorySlot, name)

            def counting(self, *args, _real=real, **kwargs):
                counts["slot_ops"] += 1
                return _real(self, *args, **kwargs)

            monkeypatch.setattr(MemorySlot, name, counting)
        return counts

    def test_fused_flood_span(self, monkeypatch):
        state = random_configuration(16, seed=5, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE, backend="array")
        if sched.array_module is None:
            pytest.skip("vectorised bitcomm plan requires numpy")
        discover_neighbors(sched)
        width = id_bits(sched.population.id_bound)
        counts = self._instrument(monkeypatch)
        before = sched.rounds
        relay_flood(
            sched,
            [
                agent_id if agent_id % 4 == 1 else None
                for agent_id in sched.population.ids
            ],
            distance=2,
            width=width,
        )
        rounds = sched.rounds - before
        assert rounds == 8 * (width + 1) * 2
        # One decide per fused 4-round exchange, not one per round.
        assert counts["decide"] == rounds // 4
        assert counts["slot_ops"] == 0

    def test_lattice_fallback_still_zero_slot_ops(self, monkeypatch):
        # The fused plan on a scalar backend replays per round but
        # still never touches the per-agent memory adapters.
        state = random_configuration(16, seed=5, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE, backend="lattice")
        discover_neighbors(sched)
        width = id_bits(sched.population.id_bound)
        counts = self._instrument(monkeypatch)
        relay_flood(
            sched,
            [
                agent_id if agent_id % 4 == 1 else None
                for agent_id in sched.population.ids
            ],
            distance=1,
            width=width,
        )
        assert counts["slot_ops"] == 0


class TestCliBackendArray:
    def test_run_verb_accepts_array_backend(self, capsys):
        import json

        from repro.__main__ import main

        assert main([
            "run", "coordination", "--n", "8", "--backend", "array",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "array"
        assert main([
            "run", "coordination", "--n", "8", "--backend", "lattice",
            "--json",
        ]) == 0
        ref = json.loads(capsys.readouterr().out)
        assert payload["result"] == ref["result"]
        # Compare names and rounds, not driver labels: on the
        # cache-enabled CI axis the rerun is a fetch ([cached]).
        assert [
            (p["name"], p["rounds"]) for p in payload["phases"]
        ] == [(p["name"], p["rounds"]) for p in ref["phases"]]
