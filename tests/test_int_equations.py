"""Tests for the fraction-free equation engine and the columnar
location-discovery harvests.

The load-bearing claim is equivalence: :class:`IntEquationSystem` must
be observably identical to the exact-`Fraction`
:class:`EquationSystem` spec (rank trajectory, contradiction
behaviour, solutions), and the lazy integer harvests must leave the
protocols' outputs bit-for-bit unchanged.  The payoff claim is also
tested: an integer-mode Distances run on the array backend performs
*zero* Fraction arithmetic.
"""

import builtins
import sys
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.equations import Equation, EquationSystem
from repro.analysis.int_equations import IntEquation, IntEquationSystem
from repro.analysis.linear_system import (
    solve_cyclic_pair_sums,
    solve_cyclic_pair_sums_ints,
)
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError, SingularSystemError
from repro.experiments.harness import _speculative_preset
from repro.protocols.base import KEY_LD_GAPS
from repro.protocols.policies.distances import discover_distances
from repro.protocols.policies.location_discovery import (
    LazyGapColumn,
    sweep_rotation_one,
    sweep_rotation_two,
)
from repro.ring import arrayops
from repro.ring.configs import random_configuration
from repro.types import Model

F = Fraction

DEN = 840  # highly divisible shared denominator, like the backends'


def _spec_window(n, start, count, num):
    return Equation.window(n, start, count, F(1), F(num, DEN))


class TestIntEquationWindow:
    def test_matches_spec_window_and_stays_integer(self):
        for n, start, count in [(4, 3, 2), (5, 0, 5), (6, 4, 9), (3, 2, 1)]:
            eq = IntEquation.window(n, start, count, value=7)
            spec = Equation.window(n, start, count, F(1), F(7, DEN))
            assert [F(c) for c in eq.coeffs] == list(spec.coeffs)
            assert all(type(c) is int for c in eq.coeffs)
            assert type(eq.value) is int

    def test_numpy_row_matches_list_row(self):
        np = pytest.importorskip("numpy")
        for n, start, count in [(5, 3, 4), (6, 5, 14), (4, 1, 4)]:
            plain = IntEquation.window(n, start, count, value=3)
            vec = IntEquation.window(n, start, count, value=3, xp=np)
            assert vec.coeffs.dtype == np.int64
            assert vec.coeffs.tolist() == plain.coeffs


class TestIntEquationSystemEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_rank_trajectory_contradictions_and_solutions(self, data):
        """Feed the same random window equations (occasionally
        corrupted into contradictions) to both engines and require
        identical observable behaviour at every step."""
        import random

        n = data.draw(st.integers(min_value=3, max_value=12))
        rng = random.Random(data.draw(st.integers(0, 100_000)))
        x_nums = [rng.randint(-3 * DEN, 3 * DEN) for _ in range(n)]
        int_sys = IntEquationSystem(n, DEN)
        spec = EquationSystem(n)
        for _ in range(4 * n):
            start = rng.randrange(n)
            count = rng.randint(1, 2 * n)
            num = sum(x_nums[(start + k) % n] for k in range(count))
            if rng.random() < 0.1:
                num += rng.randint(1, 5)  # corrupt: may contradict
            int_raised = spec_raised = False
            try:
                grew = int_sys.add(IntEquation.window(n, start, count, num))
            except SingularSystemError:
                int_raised = True
            try:
                expected = spec.add(_spec_window(n, start, count, num))
            except SingularSystemError:
                spec_raised = True
            assert int_raised == spec_raised
            if not int_raised:
                assert grew == expected
            assert int_sys.rank == spec.rank
            assert int_sys.full_rank == spec.full_rank
        if int_sys.full_rank:
            assert int_sys.solve() == spec.solve()
        else:
            with pytest.raises(SingularSystemError):
                int_sys.solve()
            assert int_sys.solve_if_ready() is None

    def test_recovers_exact_gaps_at_larger_n(self):
        import random

        for n in (17, 33, 64):
            rng = random.Random(n)
            x_nums = [rng.randint(0, DEN) for _ in range(n)]
            int_sys = IntEquationSystem(n, DEN)
            while not int_sys.full_rank:
                start = rng.randrange(n)
                count = rng.randint(1, n)
                num = sum(x_nums[(start + k) % n] for k in range(count))
                int_sys.add(IntEquation.window(n, start, count, num))
            assert int_sys.solve() == [F(v, DEN) for v in x_nums]

    def test_cross_check_mode_runs_both_engines(self):
        sys_ = IntEquationSystem(3, DEN, cross_check=True)
        assert sys_.add(IntEquation.window(3, 0, 1, 10))
        assert sys_.add(IntEquation.window(3, 1, 1, 20))
        assert not sys_.add(IntEquation.window(3, 0, 2, 30))
        assert sys_.add(IntEquation.window(3, 0, 3, 60))
        assert sys_._shadow is not None and sys_._shadow.rank == 3
        assert sys_.solve() == [F(10, DEN), F(20, DEN), F(30, DEN)]
        with pytest.raises(SingularSystemError):
            sys_.add(IntEquation.window(3, 0, 3, 61))

    def test_invalid_den_rejected(self):
        with pytest.raises(ValueError):
            IntEquationSystem(3, 0)


class TestIntEquationSystemOverflow:
    def test_huge_coefficients_retreat_to_python_ints(self):
        """Coefficients beyond int64 must take the arbitrary-precision
        path (the numpy constructor raises OverflowError) and still
        agree with the spec."""
        n = 3
        big = 1 << 70
        int_sys = IntEquationSystem(n, DEN)
        spec = EquationSystem(n)
        rows = [
            ([big, 1, 0], 5),
            ([0, big, 1], 7),
            ([1, 0, big], 9),
        ]
        for coeffs, num in rows:
            assert int_sys.add(IntEquation(coeffs, num))
            spec.add(Equation(
                tuple(F(c) for c in coeffs), F(num, DEN)
            ))
        assert int_sys.solve() == spec.solve()

    def test_growth_under_elimination_retreats_before_int64_overflow(self):
        """Rows that start inside int64 but whose combination would
        overflow must be handed to the Python-int path mid-stream, with
        results unchanged."""
        n = 3
        p = (1 << 35) + 3
        q = (1 << 35) + 7  # coprime to p, so no content to strip
        x_nums = [1, 2, 3]  # ground truth, numerators over DEN

        def both_add(int_sys, spec, coeffs):
            num = sum(c * v for c, v in zip(coeffs, x_nums))
            grew = int_sys.add(IntEquation(list(coeffs), num))
            expected = spec.add(Equation(
                tuple(F(c) for c in coeffs), F(num, DEN)
            ))
            assert grew == expected

        int_sys = IntEquationSystem(n, DEN)
        spec = EquationSystem(n)
        # Eliminating the second row against the first cross-multiplies
        # to ~p*q =~ 2^70 coefficients: past the int64 guard.
        both_add(int_sys, spec, (p, 1, 0))
        both_add(int_sys, spec, (1, q, 0))
        both_add(int_sys, spec, (1, 1, 1))
        assert int_sys.full_rank
        assert int_sys.solve() == spec.solve()
        assert int_sys.solve() == [F(v, DEN) for v in x_nums]
        # The retreat really happened: at least one basis row must have
        # left the int64 representation.
        assert any(
            isinstance(row, list)
            for row, _val, _bmax in int_sys._basis.values()
        )


class TestIntEquationSystemWithoutNumpy:
    def test_stdlib_path_matches_spec(self, monkeypatch):
        real_import = builtins.__import__

        def blocked(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("numpy unavailable in this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", blocked)
        for mod in [
            m for m in list(sys.modules)
            if m == "numpy" or m.startswith("numpy.")
        ]:
            monkeypatch.delitem(sys.modules, mod)
        arrayops.reset_numpy_cache()
        try:
            int_sys = IntEquationSystem(3, DEN)
            assert int_sys._np is None
            spec = EquationSystem(3)
            for start, count, num in [(0, 2, 30), (1, 2, 50), (0, 3, 60)]:
                int_sys.add(IntEquation.window(3, start, count, num))
                spec.add(_spec_window(3, start, count, num))
            assert int_sys.full_rank
            assert int_sys.solve() == spec.solve()
            for row, _val, _bmax in int_sys._basis.values():
                assert isinstance(row, list)
        finally:
            monkeypatch.undo()
            arrayops.reset_numpy_cache()


class TestCyclicPairSumsInts:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_matches_fraction_solver(self, data):
        import random

        n = data.draw(st.sampled_from([3, 5, 7, 9, 11]))
        rng = random.Random(data.draw(st.integers(0, 9999)))
        x_nums = [rng.randint(-5 * DEN, 5 * DEN) for _ in range(n)]
        sums = [x_nums[j] + x_nums[(j + 1) % n] for j in range(n)]
        got = solve_cyclic_pair_sums_ints(sums, DEN)
        want = solve_cyclic_pair_sums([F(s, DEN) for s in sums])
        assert got == want
        assert got == [F(v, DEN) for v in x_nums]

    def test_even_n_raises(self):
        with pytest.raises(SingularSystemError):
            solve_cyclic_pair_sums_ints([1, 2, 3, 4], DEN)

    def test_shared_cache_interns_across_calls(self):
        cache = {}
        a = solve_cyclic_pair_sums_ints([3, 4, 5], DEN, cache=cache)
        b = solve_cyclic_pair_sums_ints([3, 4, 5], DEN, cache=cache)
        for cell_a, cell_b in zip(a, b):
            assert cell_a is cell_b


def _distances_sched(n, seed, **kwargs):
    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend="array", **kwargs)
    _speculative_preset(sched, leader=False, labels=True)
    return sched


class TestNativeDistancesEngines:
    def test_engines_agree_bit_exactly(self):
        results = {}
        for engine in ("int", "fraction"):
            sched = _distances_sched(10, seed=3)
            rounds = discover_distances(sched, engine=engine)
            results[engine] = (
                rounds,
                sched.state.snapshot(),
                [
                    list(col)
                    for col in sched.population.get_column(KEY_LD_GAPS)
                ],
            )
        assert results["int"] == results["fraction"]

    def test_unknown_engine_rejected(self):
        sched = _distances_sched(8, seed=0)
        with pytest.raises(ProtocolError, match="unknown equation engine"):
            discover_distances(sched, engine="decimal")

    def test_cross_engine_runs_lockstep_shadow(self, monkeypatch):
        seen = []
        original = IntEquationSystem.__init__

        def spy(self, n, den, cross_check=False):
            seen.append(cross_check)
            original(self, n, den, cross_check=cross_check)

        monkeypatch.setattr(IntEquationSystem, "__init__", spy)
        sched = _distances_sched(8, seed=1)
        discover_distances(sched, engine="cross")
        assert seen == [True] * 8
        gaps = sched.population.get_column(KEY_LD_GAPS)
        assert sum(gaps[0], F(0)) == 1

    def test_int_mode_runs_zero_fraction_arithmetic(self, monkeypatch):
        """The acceptance gate: a native array-backend Distances run in
        integer mode must perform no Fraction arithmetic at all --
        harvest, elimination and back-substitution are integer-only,
        and Fractions appear solely via constructor calls on read."""
        pytest.importorskip("numpy")
        sched = _distances_sched(12, seed=5)
        calls = {"arith": 0}
        adds = {"n": 0}

        def counting(name):
            real = getattr(Fraction, name)

            def wrapper(self, other):
                calls["arith"] += 1
                return real(self, other)

            return wrapper

        real_add = IntEquationSystem.add

        def counting_add(self, eq):
            adds["n"] += 1
            return real_add(self, eq)

        monkeypatch.setattr(IntEquationSystem, "add", counting_add)
        for name in (
            "__mul__", "__rmul__", "__add__", "__radd__",
            "__sub__", "__rsub__", "__truediv__", "__rtruediv__",
        ):
            monkeypatch.setattr(Fraction, name, counting(name))
        rounds = discover_distances(sched)
        assert rounds == 12 // 2 + 3
        assert adds["n"] > 0, "the int engine was not exercised"
        assert calls["arith"] == 0, (
            f"{calls['arith']} Fraction arithmetic calls leaked into "
            "the integer-mode hot path"
        )
        # The run still produced the exact gap vectors.
        gaps = sched.population.get_column(KEY_LD_GAPS)
        assert sum(gaps[0], F(0)) == 1


def _sweep_sched(n, seed, model, **kwargs):
    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, model, backend="array", **kwargs)
    _speculative_preset(sched, leader=True, labels=False)
    return sched


class TestColumnarSweepHarvest:
    def test_rotation_one_engines_agree_and_columns_are_lazy(self):
        results = {}
        for engine in ("int", "fraction"):
            sched = _sweep_sched(9, seed=2, model=Model.LAZY)
            rounds = sweep_rotation_one(sched, engine=engine)
            column = sched.population.get_column(KEY_LD_GAPS)
            results[engine] = (rounds, [list(cells) for cells in column])
            if engine == "int":
                assert all(
                    isinstance(cells, LazyGapColumn) for cells in column
                )
        assert results["int"] == results["fraction"]

    def test_rotation_two_engines_agree(self):
        results = {}
        for engine in ("int", "fraction"):
            sched = _sweep_sched(11, seed=4, model=Model.BASIC)
            rounds = sweep_rotation_two(sched, engine=engine)
            column = sched.population.get_column(KEY_LD_GAPS)
            results[engine] = (rounds, [list(cells) for cells in column])
        assert results["int"] == results["fraction"]

    def test_lazy_column_contract(self):
        sched = _sweep_sched(7, seed=1, model=Model.LAZY)
        sweep_rotation_one(sched)
        column = sched.population.get_column(KEY_LD_GAPS)
        cells = column[0]
        assert isinstance(cells, LazyGapColumn)
        # ints() exposes the raw numerators without materialising.
        nums = cells.ints()
        assert all(type(v) is int for v in nums)
        assert cells._cells is None
        # Reads materialise interned Fractions; equality works against
        # plain lists from either side, and mismatches stay False.
        as_list = list(cells)
        assert cells._cells is not None
        assert cells == as_list
        assert as_list == cells
        assert cells == tuple(as_list)
        assert not (cells == as_list[:-1])
        assert cells != object()
        assert hash(cells) == hash(tuple(as_list))
        assert len(cells) == len(as_list)
        assert cells[0] == as_list[0]
        assert sum(as_list, F(0)) == 1

    def test_unknown_engine_rejected(self):
        sched = _sweep_sched(7, seed=0, model=Model.LAZY)
        with pytest.raises(ProtocolError, match="unknown harvest engine"):
            sweep_rotation_one(sched, engine="decimal")
