"""Tests for (N,n)-distinguishers and the lower-bound machinery."""

import pytest

from repro.combinatorics.distinguishers import (
    greedy_distinguisher,
    is_distinguisher,
    is_strong_distinguisher,
    minimal_distinguisher_size,
    random_distinguisher,
    violating_pair,
)
from repro.combinatorics.intersection_free import (
    chromatic_lower_bound,
    frankl_furedi_bound,
    is_intersection_free,
    max_intersection_free_exhaustive,
)
from repro.combinatorics import bounds


class TestIsDistinguisher:
    def test_empty_family_fails(self):
        assert not is_distinguisher([], 4, 1)

    def test_singletons_distinguish_singletons(self):
        family = [{x} for x in range(1, 5)]
        assert is_distinguisher(family, 4, 1)

    def test_single_set_cannot_distinguish_everything(self):
        # {1,2} gives equal counts on the disjoint pair ({1},{2}).
        assert not is_distinguisher([{1, 2}], 4, 1)

    def test_violating_pair_reports_witness(self):
        pair = violating_pair([{1, 2}], 4, 1)
        assert pair is not None
        x1, x2 = pair
        assert len(x1 & x2) == 0
        counts = (len({1, 2} & x1), len({1, 2} & x2))
        assert counts[0] == counts[1]

    def test_violating_pair_none_for_valid(self):
        family = [{x} for x in range(1, 5)]
        assert violating_pair(family, 4, 1) is None

    def test_balanced_pairs_need_witness(self):
        """For n=2, the pair ({1,2},{3,4}) defeats any set containing
        exactly one of each."""
        family = [{1, 3}, {2, 4}]
        assert not is_distinguisher(family, 4, 2)


class TestConstructions:
    @pytest.mark.parametrize("universe,n", [(6, 1), (8, 1), (8, 2), (10, 2)])
    def test_random_distinguisher_verifies(self, universe, n):
        family = random_distinguisher(universe, n, seed=1)
        assert is_distinguisher(family, universe, n)

    @pytest.mark.parametrize("universe,n", [(6, 1), (8, 2)])
    def test_greedy_is_valid(self, universe, n):
        family = greedy_distinguisher(universe, n)
        assert is_distinguisher(family, universe, n)

    def test_greedy_not_larger_than_random(self):
        g = greedy_distinguisher(8, 1)
        r = random_distinguisher(8, 1, seed=0)
        assert len(g) <= len(r)

    def test_strong_distinguisher_prefixes(self):
        family = greedy_distinguisher(8, 2)
        # Extend with singleton-distinguishing prefix reuse: the same
        # family must handle n=1 and n=2 with suitable prefixes.
        full = family + greedy_distinguisher(8, 1)
        lengths = {2: len(family), 1: len(full)}
        assert is_strong_distinguisher(full, 8, lengths)

    def test_strong_distinguisher_fails_short_prefix(self):
        family = greedy_distinguisher(8, 1)
        assert not is_strong_distinguisher(family, 8, {1: 1})


class TestMinimalSize:
    def test_trivial_when_no_pairs(self):
        # n > N/2: no two disjoint n-subsets exist.
        assert minimal_distinguisher_size(4, 3) == 0

    @pytest.mark.parametrize("universe", [4, 5, 6])
    def test_n1_exact(self, universe):
        """Distinguishing singleton pairs is exactly the classic
        'identify one coordinate' game; the answer is ceil(log2 N)
        sets (each set halves the candidates)."""
        import math

        k = minimal_distinguisher_size(universe, 1)
        assert k == math.ceil(math.log2(universe))

    def test_matches_greedy_upper_bound(self):
        exact = minimal_distinguisher_size(6, 2, max_size=5)
        greedy = greedy_distinguisher(6, 2)
        assert exact is not None
        assert exact <= len(greedy)
        assert is_distinguisher(greedy, 6, 2)


class TestIntersectionFree:
    def test_detects_violation(self):
        assert not is_intersection_free([{1, 2}, {2, 3}], 2, 1)
        assert is_intersection_free([{1, 2}, {3, 4}], 2, 1)

    def test_size_mismatch_fails(self):
        assert not is_intersection_free([{1, 2, 3}], 2, 1)

    def test_frankl_furedi_requires_power_of_two(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            frankl_furedi_bound(1024, 3)

    def test_frankl_furedi_value(self):
        import math

        assert frankl_furedi_bound(1024, 2) == pytest.approx(
            (22 / 12) * math.log2(512)
        )

    def test_exhaustive_max_family_respects_bound(self):
        """For tiny parameters, the true extremal size obeys Fact 25's
        shape: forbidding the half-intersection caps the family."""
        size = max_intersection_free_exhaustive(6, 2, 1)
        # All 2-subsets of [6] number 15; forbidding |A∩B| = 1 forces a
        # pairwise-disjoint-or-equal structure: max is a perfect
        # matching of 3 + nothing else... verified exhaustively.
        assert size == 3

    def test_chromatic_bound_positive(self):
        assert chromatic_lower_bound(128, 4) > 0


class TestBoundFormulas:
    def test_monotonicity_in_n(self):
        assert bounds.coordination_even_bound(1 << 12, 64) > (
            bounds.coordination_even_bound(1 << 12, 16)
        )

    def test_distinguisher_bound_equals_coordination_bound(self):
        assert bounds.distinguisher_size_bound(256, 16) == (
            bounds.coordination_even_bound(256, 16)
        )

    def test_ld_lower_bounds(self):
        assert bounds.ld_lower_bound(10, perceptive=False) == 9
        assert bounds.ld_lower_bound(10, perceptive=True) == 5

    def test_fits_bound_accepts_constant_ratio(self):
        measured = [10, 20, 40]
        inputs = [(64, 8), (64, 16), (64, 32)]
        fake = lambda N, n: n  # noqa: E731
        assert bounds.fits_bound(measured, inputs, fake, tolerance=1.5)

    def test_fits_bound_rejects_wrong_shape(self):
        measured = [10, 100, 1000]
        inputs = [(64, 8), (64, 16), (64, 32)]
        fake = lambda N, n: n  # noqa: E731
        assert not bounds.fits_bound(measured, inputs, fake, tolerance=3.0)

    def test_guards(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            bounds.coordination_even_bound(16, 3)
