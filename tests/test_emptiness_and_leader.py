"""Tests for emptiness testing (Lemma 12) and leader election (Alg 2, Lemma 13)."""

import pytest

from repro.core.agent import id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_LEADER, KEY_NMOVE_DIR
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    agree_direction_odd,
    assume_common_frame,
)
from repro.protocols.emptiness import KEY_EMPTY_RESULT, emptiness_test
from repro.protocols.leader_election import (
    elect_leader_common_sense,
    elect_leader_with_nontrivial_move,
)
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.ring.configs import random_configuration
from repro.types import Model


def sched_with_frame(n, seed, model, common_sense=None):
    state = random_configuration(n, seed=seed, common_sense=common_sense)
    sched = Scheduler(state, model)
    if common_sense:
        assume_common_frame(sched)
    elif n % 2 == 1:
        agree_direction_odd(sched)
    else:
        nmove_seeded_family(sched)
        agree_direction_from_nontrivial_move(sched)
    return sched


class TestEmptiness:
    @pytest.mark.parametrize("model", [Model.BASIC, Model.LAZY, Model.PERCEPTIVE])
    @pytest.mark.parametrize("n", [7, 8])
    def test_empty_and_nonempty(self, model, n):
        sched = sched_with_frame(n, seed=3, model=model)
        present = set(sched.state.ids)
        absent = set(range(1, sched.state.id_bound + 1)) - present

        assert emptiness_test(sched, set(list(absent)[:3])) is True
        assert emptiness_test(sched, {next(iter(present))}) is False
        mixed = set(list(absent)[:2]) | {next(iter(present))}
        assert emptiness_test(sched, mixed) is False
        assert emptiness_test(sched, set()) is True

    def test_consensus_recorded(self):
        sched = sched_with_frame(7, seed=1, model=Model.BASIC)
        emptiness_test(sched, {sched.state.ids[0]})
        assert all(v.memory[KEY_EMPTY_RESULT] is False for v in sched.views)

    def test_positions_restored(self):
        sched = sched_with_frame(8, seed=5, model=Model.LAZY)
        start = sched.state.snapshot()
        emptiness_test(sched, {sched.state.ids[2]})
        assert sched.state.snapshot() == start

    def test_requires_frame(self):
        state = random_configuration(7, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            emptiness_test(sched, {1})

    def test_even_basic_costs_log_rounds(self):
        sched = sched_with_frame(8, seed=2, model=Model.BASIC,
                                 common_sense=True)
        before = sched.rounds
        emptiness_test(sched, {sched.state.ids[0]})
        used = sched.rounds - before
        bits = id_bits(sched.state.id_bound)
        assert used == 2 * (1 + bits)  # probes + restores

    def test_lazy_costs_one_probe(self):
        sched = sched_with_frame(8, seed=2, model=Model.LAZY,
                                 common_sense=True)
        before = sched.rounds
        emptiness_test(sched, {sched.state.ids[0]})
        assert sched.rounds - before == 2  # 1 probe + 1 restore

    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_even_basic_half_occupancy_detected(self, n):
        """The adversarial case: |B ∩ A| = n/2 has rotation index 0."""
        sched = sched_with_frame(n, seed=4, model=Model.BASIC,
                                 common_sense=True)
        half = set(sched.state.ids[: n // 2])
        assert emptiness_test(sched, half) is False


class TestLeaderElectionCommonSense:
    @pytest.mark.parametrize("model", [Model.BASIC, Model.LAZY, Model.PERCEPTIVE])
    @pytest.mark.parametrize("n", [7, 8])
    def test_elects_min_id(self, model, n):
        sched = sched_with_frame(n, seed=9, model=model, common_sense=True)
        winner = elect_leader_common_sense(sched)
        assert winner == min(sched.state.ids)
        flags = [v.memory[KEY_LEADER] for v in sched.views]
        assert flags.count(True) == 1

    def test_positions_restored(self):
        sched = sched_with_frame(8, seed=11, model=Model.LAZY,
                                 common_sense=True)
        start = sched.state.snapshot()
        elect_leader_common_sense(sched)
        assert sched.state.snapshot() == start


class TestLeaderElectionAlgorithm2:
    @pytest.mark.parametrize("n", [6, 8, 10, 12])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unique_leader_even_rings(self, n, seed):
        sched = sched_with_frame(n, seed=seed, model=Model.BASIC)
        leader = elect_leader_with_nontrivial_move(sched)
        assert leader in sched.state.ids
        flags = [v.memory[KEY_LEADER] for v in sched.views]
        assert flags.count(True) == 1

    @pytest.mark.parametrize("n", [7, 9])
    def test_unique_leader_odd_rings(self, n):
        sched = sched_with_frame(n, seed=5, model=Model.BASIC)
        # Odd pipeline: frame agreed; derive a nontrivial move from the
        # all-RIGHT-in-common-frame round? Simplest: seeded family works
        # for odd n too (any split round is nontrivial).
        nmove_seeded_family(sched)
        leader = elect_leader_with_nontrivial_move(sched)
        flags = [v.memory[KEY_LEADER] for v in sched.views]
        assert flags.count(True) == 1
        assert leader in sched.state.ids

    def test_round_cost_is_logarithmic(self):
        sched = sched_with_frame(8, seed=3, model=Model.BASIC)
        before = sched.rounds
        elect_leader_with_nontrivial_move(sched)
        used = sched.rounds - before
        assert used == 2 * id_bits(sched.state.id_bound)

    def test_requires_preconditions(self):
        state = random_configuration(8, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            elect_leader_with_nontrivial_move(sched)
