"""Run-key tests: canonical serialisation pinned byte-for-byte, digest
stability, and exactly which spec fields are (and are not) in the key."""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

import pytest

from repro.api.fleet import SessionSpec
from repro.store.keys import (
    KEY_SCHEMA,
    canonical_json,
    key_document,
    run_key,
    safe_key,
)

SPEC = SessionSpec(n=7, protocol="location-discovery", model="basic", seed=3)

#: The canonical serialisation of ``SPEC``'s key document, pinned
#: byte-for-byte: any drift here silently invalidates (or worse,
#: cross-wires) every stored entry, so it must be a deliberate
#: KEY_SCHEMA bump, never an accident.
PINNED_CANONICAL = (
    '{"common_sense":false,"config":"random","id_bound":null,'
    '"key_schema":1,"model":"basic","n":7,'
    '"phases":["direction_agreement","leader_election",'
    '"nontrivial_move","discovery"],'
    '"protocol":"location-discovery","seed":3,"unchecked":false}'
)

#: SHA-256 of the pinned serialisation -- the known-answer digest.
PINNED_DIGEST = (
    "e1a45a517fc5c804bfd6f30ab67a6a8f8691b3a1c6e8d602ef48dd0289117cfa"
)


class TestCanonicalJson:
    def test_sorted_compact_ascii(self):
        doc = {"b": 1, "a": [1, 2], "c": {"z": None, "y": "é"}}
        text = canonical_json(doc)
        assert text == '{"a":[1,2],"b":1,"c":{"y":"\\u00e9","z":null}}'

    def test_insertion_order_invisible(self):
        one = canonical_json({"a": 1, "b": 2})
        other = canonical_json({"b": 2, "a": 1})
        assert one == other

    def test_round_trips_through_json(self):
        doc = key_document(SPEC)
        assert json.loads(canonical_json(doc)) == doc


class TestPinnedSerialisation:
    def test_exact_bytes(self):
        assert canonical_json(key_document(SPEC)) == PINNED_CANONICAL

    def test_known_answer_digest(self):
        assert run_key(SPEC) == PINNED_DIGEST
        assert run_key(SPEC) == hashlib.sha256(
            PINNED_CANONICAL.encode("ascii")
        ).hexdigest()

    def test_schema_field_present(self):
        assert key_document(SPEC)["key_schema"] == KEY_SCHEMA


class TestBackendIndependence:
    """Backend, driver, shards, executor and workers are equivalent
    ways of computing the same result, so they must not key."""

    def test_backend_excluded(self):
        for backend in ("lattice", "fraction", "array"):
            assert run_key(replace(SPEC, backend=backend)) == PINNED_DIGEST

    def test_driver_excluded(self):
        assert run_key(replace(SPEC, driver="callback")) == PINNED_DIGEST

    def test_document_never_mentions_them(self):
        doc = key_document(SPEC)
        assert "backend" not in doc
        assert "driver" not in doc


class TestResultDeterminingFieldsKey:
    @pytest.mark.parametrize("field,value", [
        ("n", 9),
        ("seed", 4),
        ("protocol", "coordination"),
        ("model", "perceptive"),
        ("config", "jittered"),
        ("id_bound", 4096),
        ("common_sense", True),
        ("unchecked", True),
    ])
    def test_changing_field_changes_digest(self, field, value):
        assert run_key(replace(SPEC, **{field: value})) != PINNED_DIGEST

    def test_phase_plan_keys(self):
        # coordination and location-discovery plan different phases;
        # the phases list is itself part of the key, so a protocol
        # routing change can never serve a stale result.
        ld = key_document(SPEC)
        coord = key_document(replace(SPEC, protocol="coordination"))
        assert ld["phases"] != coord["phases"]

    def test_model_changes_plan_and_digest(self):
        # perceptive coordination reorders/changes phases vs. basic.
        basic = key_document(replace(SPEC, protocol="coordination"))
        perceptive = key_document(
            replace(SPEC, protocol="coordination", model="perceptive")
        )
        assert basic != perceptive


class TestSafeKey:
    def test_matches_run_key(self):
        digest, doc = safe_key(SPEC)
        assert digest == run_key(SPEC)
        assert doc == key_document(SPEC)

    def test_unknown_protocol_uncacheable(self):
        assert safe_key(replace(SPEC, protocol="frisbee")) is None

    def test_infeasible_setting_uncacheable(self):
        # Location discovery on an even basic ring is paper-proven
        # infeasible; the plan raises, so the spec cannot be keyed --
        # the failure surfaces at compute time, exactly as uncached.
        assert safe_key(replace(SPEC, n=8)) is None

    def test_bad_model_uncacheable(self):
        assert safe_key(replace(SPEC, model="psychic")) is None


class TestFaults:
    """The fault plan is result-determining, so it keys -- but only
    when present: fault-free documents keep their historical bytes."""

    PLAN = '{"seed":1,"crashes":{"2":1}}'

    def test_fault_free_document_has_no_faults_field(self):
        # The pinned bytes above already prove this; assert it directly
        # so the conditional-inclusion contract is named, not implied.
        assert "faults" not in key_document(SPEC)

    def test_faulted_spec_keys_differently_from_twin(self):
        faulted = replace(SPEC, faults=self.PLAN)
        assert run_key(faulted) != PINNED_DIGEST
        assert run_key(replace(faulted, faults=None)) == PINNED_DIGEST

    def test_document_carries_the_full_plan(self):
        doc = key_document(replace(SPEC, faults=self.PLAN))
        assert doc["faults"]["crashes"] == {"2": 1}
        assert doc["faults"]["seed"] == 1

    def test_equal_plans_key_equal_regardless_of_spelling(self):
        # SessionSpec normalises any parseable plan to canonical JSON,
        # so key-order / whitespace variants dedup to one digest.
        respelled = '{"crashes": {"2": 1}, "seed": 1}'
        assert run_key(replace(SPEC, faults=self.PLAN)) == run_key(
            replace(SPEC, faults=respelled)
        )

    def test_different_plans_key_differently(self):
        one = run_key(replace(SPEC, faults=self.PLAN))
        other = run_key(
            replace(SPEC, faults='{"seed":1,"crashes":{"2":2}}')
        )
        assert one != other

    def test_malformed_plan_uncacheable(self):
        # Unparseable JSON is kept verbatim on the spec (it must stay
        # constructible so the failure surfaces at run time), but such
        # a spec cannot be keyed.
        assert safe_key(replace(SPEC, faults="{not json")) is None

    def test_out_of_range_plan_uncacheable(self):
        # Slot 9 does not exist on a 7-ring: validate_for raises in
        # key_document, so safe_key declines rather than keying a spec
        # that cannot run.
        assert safe_key(
            replace(SPEC, faults='{"seed":1,"crashes":{"9":0}}')
        ) is None

    def test_backend_still_excluded_for_faulted_specs(self):
        faulted = replace(SPEC, faults=self.PLAN)
        digests = {
            run_key(replace(faulted, backend=backend))
            for backend in ("lattice", "fraction", "array")
        }
        assert len(digests) == 1
