"""Tests for the Distances protocol (Algorithm 6)."""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LD_GAPS
from repro.protocols.direction_agreement import agree_direction_from_nontrivial_move
from repro.protocols.distances import (
    coll_window,
    convolution_direction,
    discover_distances,
    pivot_direction,
)
from repro.protocols.leader_election import elect_leader_with_nontrivial_move
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.protocols.ring_distance import publish_ring_size, ring_distances
from repro.ring.configs import (
    clustered_configuration,
    jittered_equidistant_configuration,
    random_configuration,
)
from repro.types import Model

from tests.test_location_discovery_walk import check_reconstruction


def prepared(state):
    sched = Scheduler(state, Model.PERCEPTIVE)
    nmove_seeded_family(sched)
    agree_direction_from_nontrivial_move(sched)
    elect_leader_with_nontrivial_move(sched)
    discover_neighbors(sched)
    ring_distances(sched)
    publish_ring_size(sched)
    return sched


class TestDirectionMaps:
    def test_convolution_alternates_with_exception(self):
        moves = convolution_direction(6, exception_label=4)
        # 1-based: 1R 2L 3R 4R(exc) 5R 6L  ->  0-based evens + label0 3.
        assert [moves(t) for t in range(6)] == [
            True, False, True, True, True, False,
        ]

    def test_pivot_half_ring(self):
        moves = pivot_direction(6, j=6)
        # Labels 4,5,6 RIGHT; 1,2,3 LEFT (1-based).
        assert [moves(t) for t in range(6)] == [
            False, False, False, True, True, True,
        ]

    def test_pivot_wraps(self):
        moves = pivot_direction(6, j=2)
        # Labels 6,1,2 RIGHT; 3,4,5 LEFT.
        assert [moves(t) for t in range(6)] == [
            True, True, False, False, False, True,
        ]

    def test_coll_window_right_mover(self):
        moves = convolution_direction(6, exception_label=6)
        # 0-based dirs: R L R L R R(exc=5).
        assert coll_window(6, moves, 0, rho=0) == (0, 1)
        assert coll_window(6, moves, 4, rho=0) == (4, 3)  # 5R, 0R, 1L
        assert coll_window(6, moves, 5, rho=0) == (5, 2)

    def test_coll_window_left_mover_walks_back(self):
        moves = convolution_direction(6, exception_label=6)
        assert coll_window(6, moves, 1, rho=0) == (0, 1)
        assert coll_window(6, moves, 3, rho=0) == (2, 1)

    def test_coll_window_rho_shift(self):
        moves = convolution_direction(6, exception_label=6)
        assert coll_window(6, moves, 0, rho=2) == (2, 1)

    def test_uniform_direction_returns_none(self):
        assert coll_window(4, lambda t: True, 0, 0) is None


class TestDiscoverDistances:
    @pytest.mark.parametrize("n", [6, 8, 10, 12, 14, 16, 20, 26])
    def test_reconstruction_even_rings(self, n):
        state = random_configuration(n, seed=n + 1, common_sense=False)
        sched = prepared(state)
        start = state.snapshot()
        rounds = discover_distances(sched)
        assert rounds == n // 2 + 3
        assert state.snapshot() == start
        check_reconstruction(sched)

    @pytest.mark.parametrize("maker", [
        jittered_equidistant_configuration,
        clustered_configuration,
    ])
    def test_stress_geometries(self, maker):
        state = maker(12, seed=5, common_sense=False)
        sched = prepared(state)
        discover_distances(sched)
        check_reconstruction(sched)

    def test_rejects_odd_n(self):
        state = random_configuration(9, seed=2, common_sense=False)
        sched = prepared(state)
        with pytest.raises(ProtocolError):
            discover_distances(sched)

    def test_requires_labels(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE)
        with pytest.raises(ProtocolError):
            discover_distances(sched)

    def test_total_rounds_near_half_n(self):
        """Headline of Theorem 42: the discovery phase itself takes
        n/2 + O(1) rounds -- half of what dist()-only protocols need."""
        n = 20
        state = random_configuration(n, seed=3, common_sense=False)
        sched = prepared(state)
        before = sched.rounds
        discover_distances(sched)
        assert sched.rounds - before == n // 2 + 3
