"""Tests for the experiment drivers and the table harness."""

import pytest

from repro.experiments.harness import (
    ExperimentRow,
    geometric_sizes,
    render_table,
)
from repro.experiments import figures, lower_bounds, table1, table2
from repro.types import Model


class TestHarness:
    def test_geometric_sizes(self):
        assert geometric_sizes(8, 64) == [8, 16, 32, 64]
        assert geometric_sizes(5, 50, factor=3) == [5, 15, 45]
        assert geometric_sizes(100, 50) == []

    def test_render_empty(self):
        assert "(empty)" in render_table([], "title")

    def test_render_alignment(self):
        rows = [
            ExperimentRow("a", {"n": 8}, {"x": 1}, {"x": 2.0}),
            ExperimentRow("bee", {"n": 100}, {"x": 12345}, {"x": None}),
        ]
        out = render_table(rows, "T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned
        assert "12345" in out
        assert "2.0" in out
        assert "-" in lines[-1]  # None renders as dash


class TestTable1Rows:
    def test_odd_row_fields(self):
        row = table1.row_odd_n(9, seed=0)
        assert row.measured["dir_agree"] == 4
        assert row.measured["ld"] > 9
        assert row.reference["nmove"] > 0

    def test_basic_even_row_unsolvable(self):
        row = table1.row_basic_even(8, seed=0)
        assert row.measured["ld"] == "not solvable"

    def test_lazy_even_row(self):
        row = table1.row_lazy_even(8, seed=0)
        assert row.measured["ld"] >= 8

    def test_perceptive_even_row(self):
        row = table1.row_perceptive_even(8, seed=0)
        assert row.measured["ld_discovery_phase"] == 7

    def test_generate_covers_all_rows(self):
        rows = table1.generate(odd_sizes=(9,), even_sizes=(8,))
        labels = [r.label for r in rows]
        assert labels == [
            "odd n (basic)", "basic, even n", "lazy, even n",
            "perceptive, even n",
        ]

    def test_parity_preconditions_enforced(self):
        with pytest.raises(AssertionError):
            table1.row_odd_n(8)
        with pytest.raises(AssertionError):
            table1.row_basic_even(9)


class TestTable2Rows:
    @pytest.mark.parametrize("model", list(Model))
    def test_even_rows(self, model):
        row = table2.row(8, model, seed=0)
        assert row.measured["nmove"] <= 8
        if model is Model.BASIC:
            assert row.measured["ld"] == "not solvable"
        else:
            assert row.measured["ld"] >= 4

    def test_odd_basic_row(self):
        row = table2.row(9, Model.BASIC, seed=0)
        assert isinstance(row.measured["ld"], int)

    def test_generate_shape(self):
        rows = table2.generate(odd_sizes=(9,), even_sizes=(8,))
        assert len(rows) == 1 + 3


class TestFigures:
    def test_reduction_edges_labels(self):
        rows = figures.reduction_edges(n=8, seed=0)
        labels = {r.label for r in rows}
        assert "leader -> nontrivial move" in labels
        assert "nontrivial move -> leader election" in labels
        assert len(rows) == 6

    def test_ringdist_anatomy_monotone(self):
        rows = figures.ringdist_anatomy(n=16, seed=0)
        labelled = [r.measured["labelled"] for r in rows]
        assert labelled == sorted(labelled)
        assert labelled[-1] == 16


class TestLowerBounds:
    def test_lemma5_witness(self):
        row = lower_bounds.lemma5_witness(6)
        assert row.measured["rotation_parities"] == [0]

    def test_lemma6_rows_respect_floor(self):
        for row in lower_bounds.lemma6_floors(seed=0):
            assert row.measured["discovery_rounds"] >= row.reference["floor"]

    def test_distinguisher_rows(self):
        rows = lower_bounds.distinguisher_sizes(max_exact_universe=5)
        n1 = [r for r in rows if r.label == "exact minimal (n=1)"]
        assert [r.measured["size"] for r in n1] == [2, 3]
