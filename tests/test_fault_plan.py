"""Unit tests for the fault layer's building blocks: FaultPlan
validation and serialisation, FaultInjector round mechanics, and the
scheduler/session wiring that makes an active plan unskippable."""

import json

import pytest

from repro.api import RingSession
from repro.core.scheduler import Scheduler
from repro.exceptions import ConfigurationError, FaultBudgetError
from repro.faults.inject import FaultInjector, scramble_memory
from repro.faults.plan import BYZANTINE_MODES, DEFAULT_MAX_ROUNDS, FaultPlan
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model

R = LocalDirection.RIGHT
L = LocalDirection.LEFT
I = LocalDirection.IDLE


class TestPlanValidation:
    def test_modes_are_closed(self):
        assert set(BYZANTINE_MODES) == {"flip", "random", "scramble"}
        with pytest.raises(ConfigurationError):
            FaultPlan(byzantine=((0, 1, "sneaky"),))

    def test_delay_lag_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(delays=((0, 0),))

    def test_duplicate_slot_per_family_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=((2, 0), (2, 5)))

    def test_negative_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=((-1, 0),))

    def test_max_rounds_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(max_rounds=0)

    def test_unknown_document_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"seed": 1, "crashs": {"0": 1}})

    def test_validate_for_rejects_out_of_range_slots(self):
        plan = FaultPlan(crashes=((9, 0),))
        plan.validate_for(10)
        with pytest.raises(ConfigurationError):
            plan.validate_for(9)

    def test_bad_json_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("{not json")


class TestPlanSerialisation:
    PLAN = FaultPlan(
        seed=5,
        crashes=((3, 2),),
        byzantine=((1, 0, "flip"),),
        delays=((4, 2),),
        max_rounds=500,
    )

    def test_canonical_is_sorted_compact_ascii(self):
        text = self.PLAN.canonical()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    def test_round_trips(self):
        assert FaultPlan.from_json(self.PLAN.canonical()) == self.PLAN
        assert FaultPlan.from_dict(self.PLAN.to_dict()) == self.PLAN

    def test_coerce_accepts_every_spelling(self):
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(self.PLAN) == self.PLAN
        assert FaultPlan.coerce(self.PLAN.canonical()) == self.PLAN
        assert FaultPlan.coerce(self.PLAN.to_dict()) == self.PLAN

    def test_empty_plan_coerces_to_none(self):
        assert FaultPlan.coerce("{}") is None
        assert FaultPlan.coerce({"seed": 9}) is None
        assert FaultPlan.none().is_none()

    def test_round_budget_defaults(self):
        assert FaultPlan.none().round_budget == DEFAULT_MAX_ROUNDS
        assert self.PLAN.round_budget == 500

    def test_slots(self):
        assert set(self.PLAN.slots()) == {1, 3, 4}


class TestInjectorMechanics:
    def test_crash_forces_idle_from_its_round(self):
        injector = FaultInjector(FaultPlan(crashes=((1, 2),)), n=3)
        memories = [{}, {}, {}]
        assert injector.transform([R, R, R], 1, memories) == [R, R, R]
        assert injector.transform([R, R, R], 2, memories) == [R, I, R]
        assert injector.transform([L, L, L], 7, memories) == [L, I, L]
        assert injector.idle_exempt == frozenset({1})
        assert injector.crashed_at(1) == frozenset()
        assert injector.crashed_at(2) == frozenset({1})

    def test_flip_plays_the_opposite_direction(self):
        injector = FaultInjector(
            FaultPlan(byzantine=((0, 0, "flip"),)), n=2
        )
        assert injector.transform([R, R], 0, [{}, {}]) == [L, R]
        assert injector.transform([L, R], 1, [{}, {}]) == [R, R]

    def test_random_mode_is_seeded_and_never_idle(self):
        plan = FaultPlan(seed=9, byzantine=((0, 0, "random"),))
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan, n=2)
            runs.append([
                injector.transform([R, R], t, [{}, {}])[0]
                for t in range(16)
            ])
        assert runs[0] == runs[1]  # same seed, same adversary
        assert set(runs[0]) <= {R, L}  # a basic-model agent must move

    def test_delay_replays_the_lagged_intent(self):
        injector = FaultInjector(FaultPlan(delays=((0, 2),)), n=1)
        assert injector.transform([R], 0, [{}]) == [R]  # t<lag: clamps to 0
        assert injector.transform([L], 1, [{}]) == [R]
        assert injector.transform([L], 2, [{}]) == [R]  # t-2 = 0 -> R
        assert injector.transform([R], 3, [{}]) == [L]  # t-2 = 1 -> L

    def test_scramble_corrupts_memory_exactly_once(self):
        injector = FaultInjector(
            FaultPlan(byzantine=((0, 1, "scramble"),)), n=1
        )
        memory = {"flag": True, "count": 4, "label": "x"}
        injector.transform([R], 0, [memory])
        assert memory == {"flag": True, "count": 4, "label": "x"}
        injector.transform([R], 1, [memory])
        assert memory == {"flag": False, "count": 5, "label": "x"}
        injector.transform([R], 2, [memory])  # one-shot: no further change
        assert memory == {"flag": False, "count": 5, "label": "x"}

    def test_scramble_memory_flips_bools_and_ints_only(self):
        memory = {"b": False, "i": 0, "s": "keep", "f": None}
        scramble_memory(memory)
        assert memory == {"b": True, "i": 1, "s": "keep", "f": None}

    def test_crash_wins_over_byzantine(self):
        injector = FaultInjector(
            FaultPlan(crashes=((0, 0),), byzantine=((0, 0, "flip"),)), n=1
        )
        assert injector.transform([R], 0, [{}]) == [I]


class TestSchedulerWiring:
    def _sched(self, faults):
        state = random_configuration(8, seed=3, common_sense=False)
        return Scheduler(state, Model.PERCEPTIVE, faults=faults)

    def test_no_plan_means_no_injector(self):
        sched = self._sched(None)
        assert sched.faults is None
        assert sched.crashed_slots() == frozenset()

    def test_active_plan_disables_fused_stretches(self):
        plan = '{"seed":1,"crashes":{"2":1}}'
        assert self._sched(None).supports_stretch or True  # backend-dependent
        assert self._sched(plan).supports_stretch is False

    def test_unchecked_is_forced_off_under_faults(self):
        state = random_configuration(8, seed=3, common_sense=False)
        sched = Scheduler(
            state, Model.PERCEPTIVE, unchecked=True,
            faults='{"seed":1,"crashes":{"2":1}}',
        )
        assert sched.unchecked is False

    def test_round_budget_trips(self):
        sched = self._sched('{"seed":1,"max_rounds":2}')
        sched.run_fixed(LocalDirection.RIGHT, 2)
        with pytest.raises(FaultBudgetError):
            sched.run_fixed(LocalDirection.RIGHT, 1)

    def test_out_of_range_plan_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            self._sched('{"seed":1,"crashes":{"8":0}}')


class TestSessionWiring:
    def test_session_normalises_plan_spellings(self):
        plan = {"seed": 1, "crashes": {"2": 1}}
        session = RingSession(n=8, seed=3, faults=plan)
        assert session.faults == FaultPlan.from_dict(plan)
        assert RingSession(n=8, seed=3, faults="{}").faults is None
        assert RingSession(n=8, seed=3).faults is None

    def test_faulted_sessions_never_touch_the_cache(self, tmp_path):
        plan = '{"seed":1,"delays":{"5":2}}'
        kwargs = dict(n=8, seed=7, cache=True, cache_dir=str(tmp_path))
        RingSession(faults=plan, **kwargs).run("contention-backoff")
        # The store saw nothing: a fresh fault-free session with the
        # same axes must MISS (and only then populate the store).
        from repro.store.store import RunStore

        assert RunStore(cache_dir=str(tmp_path)).stats()["entries"] == 0
        RingSession(**kwargs).run("contention-backoff")
        assert RunStore(cache_dir=str(tmp_path)).stats()["entries"] == 1
