"""Tests for ring-size / parity discovery (the paper's deferred case)."""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_RING_SIZE
from repro.protocols.ring_size import KEY_PARITY, discover_ring_size
from repro.ring.configs import random_configuration
from repro.types import Model


class TestDiscoverRingSize:
    @pytest.mark.parametrize("n", [5, 6, 8, 9, 12, 13])
    @pytest.mark.parametrize("model", [Model.LAZY, Model.PERCEPTIVE])
    def test_discovers_exact_n(self, n, model):
        state = random_configuration(n, seed=n, common_sense=False)
        sched = Scheduler(state, model)
        assert discover_ring_size(sched) == n
        for view in sched.views:
            assert view.memory[KEY_RING_SIZE] == n
            assert view.memory[KEY_PARITY] == (n % 2 == 0)

    @pytest.mark.parametrize("model", [Model.LAZY, Model.PERCEPTIVE])
    def test_parity_bit_is_never_consulted(self, model):
        """Falsification: corrupt every agent's a-priori parity bit;
        discovery must still return the true n (the pipeline is
        parity-free by construction)."""
        n = 10
        state = random_configuration(n, seed=3, common_sense=False)
        sched = Scheduler(state, model)
        for view in sched.views:
            view.parity_even = not view.parity_even  # now WRONG
        assert discover_ring_size(sched) == n

    def test_basic_model_refused(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError, match="parity-ambiguous"):
            discover_ring_size(sched)

    def test_lazy_census_cost(self):
        """Lazy-model census: n rounds + polylog coordination."""
        n = 16
        state = random_configuration(n, seed=1, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        discover_ring_size(sched)
        assert sched.rounds <= n + 60

    def test_perceptive_cost_sublinear_in_n(self):
        """Perceptive ring-size discovery costs O(√n log N) -- it gets
        *cheaper per agent* as rings grow."""
        costs = {}
        for n in (16, 64):
            state = random_configuration(n, seed=2, common_sense=False)
            sched = Scheduler(state, Model.PERCEPTIVE)
            discover_ring_size(sched)
            costs[n] = sched.rounds
        assert costs[64] < 4 * costs[16]
        assert costs[64] / 64 < costs[16] / 16  # sublinear growth
