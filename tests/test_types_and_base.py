"""Tests for the vocabulary types, agent views, and frame helpers."""

from fractions import Fraction

import pytest

from repro.core.agent import AgentView, id_bits
from repro.exceptions import (
    ConfigurationError,
    InfeasibleProblemError,
    ModelViolationError,
    ProtocolError,
    ReproError,
    SimulationError,
    SingularSystemError,
)
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    aligned_direction,
    common_dist,
)
from repro.types import (
    Chirality,
    LocalDirection,
    Model,
    Observation,
    local_to_velocity,
)

F = Fraction


class TestModel:
    def test_only_lazy_allows_idle(self):
        assert Model.LAZY.allows_idle
        assert not Model.BASIC.allows_idle
        assert not Model.PERCEPTIVE.allows_idle

    def test_only_perceptive_reports_collisions(self):
        assert Model.PERCEPTIVE.reports_collisions
        assert not Model.BASIC.reports_collisions
        assert not Model.LAZY.reports_collisions

    def test_constructible_from_value(self):
        assert Model("lazy") is Model.LAZY


class TestLocalDirection:
    def test_opposites(self):
        assert LocalDirection.RIGHT.opposite() is LocalDirection.LEFT
        assert LocalDirection.LEFT.opposite() is LocalDirection.RIGHT
        assert LocalDirection.IDLE.opposite() is LocalDirection.IDLE


class TestChirality:
    def test_flip(self):
        assert Chirality.CLOCKWISE.flipped() is Chirality.ANTICLOCKWISE
        assert Chirality.ANTICLOCKWISE.flipped() is Chirality.CLOCKWISE

    @pytest.mark.parametrize("direction,chir,expected", [
        (LocalDirection.RIGHT, Chirality.CLOCKWISE, 1),
        (LocalDirection.RIGHT, Chirality.ANTICLOCKWISE, -1),
        (LocalDirection.LEFT, Chirality.CLOCKWISE, -1),
        (LocalDirection.LEFT, Chirality.ANTICLOCKWISE, 1),
        (LocalDirection.IDLE, Chirality.CLOCKWISE, 0),
        (LocalDirection.IDLE, Chirality.ANTICLOCKWISE, 0),
    ])
    def test_velocity_mapping(self, direction, chir, expected):
        assert local_to_velocity(direction, chir) == expected


class TestObservation:
    def test_flags(self):
        moved = Observation(dist=F(1, 3))
        assert moved.moved and not moved.collided
        still = Observation(dist=F(0), coll=F(1, 8))
        assert not still.moved and still.collided


class TestAgentView:
    def _view(self, agent_id=5):
        return AgentView(
            agent_id=agent_id, id_bound=16, parity_even=True,
            model=Model.BASIC,
        )

    def test_id_bits_helper(self):
        assert id_bits(1) == 1
        assert id_bits(16) == 5
        assert id_bits(255) == 8

    def test_id_bit(self):
        view = self._view(agent_id=0b1010)
        assert [view.id_bit(i) for i in range(4)] == [0, 1, 0, 1]

    def test_last_raises_before_rounds(self):
        with pytest.raises(ProtocolError):
            _ = self._view().last

    def test_rounds_seen(self):
        view = self._view()
        assert view.rounds_seen() == 0
        view.log.append(Observation(dist=F(0)))
        assert view.rounds_seen() == 1
        assert view.last.dist == 0


class TestFrameHelpers:
    def _view(self, flip):
        view = AgentView(
            agent_id=1, id_bound=8, parity_even=False, model=Model.BASIC
        )
        view.memory[KEY_FRAME_FLIP] = flip
        return view

    def test_aligned_direction_no_flip(self):
        view = self._view(False)
        assert aligned_direction(view, LocalDirection.RIGHT) is (
            LocalDirection.RIGHT
        )

    def test_aligned_direction_flip(self):
        view = self._view(True)
        assert aligned_direction(view, LocalDirection.RIGHT) is (
            LocalDirection.LEFT
        )

    def test_idle_never_flips(self):
        view = self._view(True)
        assert aligned_direction(view, LocalDirection.IDLE) is (
            LocalDirection.IDLE
        )

    def test_common_dist_identity(self):
        view = self._view(False)
        assert common_dist(view, F(1, 3)) == F(1, 3)

    def test_common_dist_flipped(self):
        view = self._view(True)
        assert common_dist(view, F(1, 3)) == F(2, 3)
        assert common_dist(view, F(0)) == 0


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, ModelViolationError, ProtocolError,
        InfeasibleProblemError, SimulationError, SingularSystemError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
