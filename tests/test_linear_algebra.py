"""Tests for exact linear solvers and incremental equation systems."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.equations import Equation, EquationSystem
from repro.analysis.linear_system import (
    solve_cyclic_pair_sums,
    solve_linear_system,
)
from repro.exceptions import SingularSystemError

F = Fraction


def fracs(n):
    return st.lists(
        st.integers(min_value=-50, max_value=50).map(lambda k: F(k, 7)),
        min_size=n, max_size=n,
    )


class TestSolveLinearSystem:
    def test_identity(self):
        rows = [[F(1), F(0)], [F(0), F(1)]]
        assert solve_linear_system(rows, [F(3), F(4)]) == [F(3), F(4)]

    def test_general_2x2(self):
        rows = [[F(2), F(1)], [F(1), F(-1)]]
        sol = solve_linear_system(rows, [F(5), F(1)])
        assert sol == [F(2), F(1)]

    def test_redundant_rows_tolerated(self):
        rows = [[F(1), F(1)], [F(2), F(2)], [F(1), F(-1)]]
        sol = solve_linear_system(rows, [F(3), F(6), F(1)])
        assert sol == [F(2), F(1)]

    def test_underdetermined_raises(self):
        with pytest.raises(SingularSystemError):
            solve_linear_system([[F(1), F(1)]], [F(2)])

    def test_inconsistent_redundant_row_raises(self):
        # Regression: the post-elimination consistency sweep used to be
        # dead code, so a redundant row contradicting the basis slipped
        # through and the (wrong) basis solution was returned.
        rows = [[F(1), F(0)], [F(0), F(1)], [F(1), F(1)]]
        with pytest.raises(SingularSystemError, match="inconsistent"):
            solve_linear_system(rows, [F(1), F(2), F(5)])

    def test_consistent_redundant_row_still_tolerated(self):
        rows = [[F(1), F(0)], [F(0), F(1)], [F(1), F(1)]]
        sol = solve_linear_system(rows, [F(1), F(2), F(3)])
        assert sol == [F(1), F(2)]

    def test_empty(self):
        assert solve_linear_system([], []) == []

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_roundtrip_random_systems(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        x = data.draw(fracs(n))
        rows = []
        rhs = []
        import random

        rng = random.Random(data.draw(st.integers(0, 1000)))
        for _ in range(n + 2):
            row = [F(rng.randint(-3, 3)) for _ in range(n)]
            rows.append(row)
            rhs.append(sum(c * v for c, v in zip(row, x)))
        try:
            sol = solve_linear_system(rows, rhs)
        except SingularSystemError:
            return  # random rows may be rank deficient; fine
        assert sol == x


class TestCyclicPairSums:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_roundtrip_odd(self, n):
        x = [F(i + 1, 2 * n) for i in range(n)]
        sums = [x[j] + x[(j + 1) % n] for j in range(n)]
        assert solve_cyclic_pair_sums(sums) == x

    def test_even_raises(self):
        with pytest.raises(SingularSystemError):
            solve_cyclic_pair_sums([F(1), F(1), F(1), F(1)])

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_roundtrip_property(self, data):
        n = data.draw(st.sampled_from([3, 5, 7, 9, 11]))
        x = data.draw(fracs(n))
        sums = [x[j] + x[(j + 1) % n] for j in range(n)]
        assert solve_cyclic_pair_sums(sums) == x


class TestEquationSystem:
    def test_window_equation_wraps(self):
        eq = Equation.window(4, start=3, count=2, scale=F(1), value=F(5))
        assert eq.coeffs == (F(1), F(0), F(0), F(1))

    def test_incremental_rank(self):
        sys_ = EquationSystem(3)
        assert sys_.add(Equation.window(3, 0, 1, F(1), F(1)))
        assert sys_.rank == 1
        assert not sys_.full_rank
        assert sys_.add(Equation.window(3, 1, 1, F(1), F(2)))
        assert sys_.add(Equation.window(3, 0, 3, F(1), F(6)))
        assert sys_.full_rank
        assert sys_.solve() == [F(1), F(2), F(3)]

    def test_dependent_row_rejected_quietly(self):
        sys_ = EquationSystem(2)
        sys_.add(Equation((F(1), F(1)), F(3)))
        assert not sys_.add(Equation((F(2), F(2)), F(6)))
        assert sys_.rank == 1

    def test_contradiction_raises(self):
        sys_ = EquationSystem(2)
        sys_.add(Equation((F(1), F(1)), F(3)))
        with pytest.raises(SingularSystemError):
            sys_.add(Equation((F(2), F(2)), F(7)))

    def test_solve_before_full_rank_raises(self):
        sys_ = EquationSystem(2)
        with pytest.raises(SingularSystemError):
            sys_.solve()
        assert sys_.solve_if_ready() is None

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_support_tracking_matches_dense_reference(self, data):
        """The heap-based support walk in :meth:`EquationSystem.add` is
        a pure strength reduction: rank trajectory, contradiction
        behaviour, stored reduced rows and solutions must all coincide
        with the dense column scan it replaced."""

        class DenseReference:
            """The pre-support-set algorithm, verbatim."""

            def __init__(self, n):
                self.n = n
                self._basis = {}

            def add(self, eq):
                row = list(eq.coeffs)
                value = eq.value
                for col in range(self.n):
                    if row[col] == 0:
                        continue
                    entry = self._basis.get(col)
                    if entry is None:
                        inv = 1 / row[col]
                        reduced = [c * inv for c in row]
                        self._basis[col] = (reduced, value * inv)
                        return True
                    brow, bval = entry
                    factor = row[col]
                    row = [c - factor * b for c, b in zip(row, brow)]
                    value = value - factor * bval
                if value != 0:
                    raise SingularSystemError("contradiction")
                return False

        import random

        n = data.draw(st.integers(min_value=2, max_value=8))
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        fast = EquationSystem(n)
        dense = DenseReference(n)
        for _ in range(3 * n):
            if rng.random() < 0.7:
                start = rng.randrange(n)
                count = rng.randint(1, n)
                eq = Equation.window(
                    n, start, count, F(1), F(rng.randint(-20, 20), 7)
                )
            else:
                eq = Equation(
                    tuple(F(rng.randint(-3, 3)) for _ in range(n)),
                    F(rng.randint(-20, 20), 7),
                )
            fast_raised = dense_raised = False
            try:
                grew = fast.add(eq)
            except SingularSystemError:
                fast_raised = True
            try:
                expected = dense.add(eq)
            except SingularSystemError:
                dense_raised = True
            assert fast_raised == dense_raised
            if not fast_raised:
                assert grew == expected
            assert set(fast._basis) == set(dense._basis)
            for col, (brow, bval, _support) in fast._basis.items():
                dense_row, dense_val = dense._basis[col]
                assert brow == dense_row
                assert bval == dense_val
        if fast.full_rank:
            dense_solution = [None] * n
            for col in sorted(dense._basis.keys(), reverse=True):
                row, val = dense._basis[col]
                acc = val
                for c in range(col + 1, n):
                    if row[c] != 0:
                        acc -= row[c] * dense_solution[c]
                dense_solution[col] = acc
            assert fast.solve() == dense_solution

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_window_equations_recover_gaps(self, data):
        n = data.draw(st.integers(min_value=2, max_value=6))
        x = data.draw(fracs(n))
        sys_ = EquationSystem(n)
        import random

        rng = random.Random(data.draw(st.integers(0, 999)))
        for _ in range(6 * n):
            start = rng.randrange(n)
            count = rng.randint(1, n - 1)
            value = sum(x[(start + k) % n] for k in range(count))
            sys_.add(Equation.window(n, start, count, F(1), F(value)))
            if sys_.full_rank:
                break
        # Add the full-circle equation to guarantee solvability.
        sys_.add(Equation.window(n, 0, n, F(1), sum(x, F(0))))
        if sys_.full_rank:
            assert sys_.solve() == x
