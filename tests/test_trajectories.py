"""Tests for full trajectory recording in the event simulator."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import cw_arc, ccw_arc
from repro.ring.collisions import position_at, simulate_collisions

F = Fraction


def ring_positions(n, denom_bits=8):
    denom = 1 << denom_bits
    return st.sets(
        st.integers(min_value=0, max_value=denom - 1), min_size=n, max_size=n
    ).map(lambda ticks: [F(t, denom) for t in sorted(ticks)])


class TestPathRecording:
    def test_off_by_default(self):
        traces, _ = simulate_collisions([F(0), F(1, 2)], [1, -1])
        assert all(t.path is None for t in traces)

    def test_breakpoints_of_head_on_pair(self):
        traces, _ = simulate_collisions(
            [F(0), F(1, 2)], [1, -1], record_paths=True
        )
        path0 = traces[0].path
        # start, two bounces, end.
        assert len(path0) == 4
        assert path0[0] == (F(0), F(0), 1)
        assert path0[1] == (F(1, 4), F(1, 4), -1)
        assert path0[2] == (F(3, 4), F(3, 4), 1)
        assert path0[3][0] == 1 and path0[3][1] == F(0)

    def test_position_at_interpolates(self):
        traces, _ = simulate_collisions(
            [F(0), F(1, 2)], [1, -1], record_paths=True
        )
        path0 = traces[0].path
        assert position_at(path0, F(1, 8)) == F(1, 8)
        assert position_at(path0, F(1, 2)) == F(0)   # bounced back
        assert position_at(path0, F(1)) == F(0)

    def test_position_at_rejects_early_time(self):
        traces, _ = simulate_collisions(
            [F(0), F(1, 2)], [1, -1], record_paths=True
        )
        with pytest.raises(ValueError):
            position_at(traces[0].path, F(-1, 2))

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_paths_are_continuous_and_consistent(self, data):
        n = data.draw(st.integers(min_value=2, max_value=8))
        pos = data.draw(ring_positions(n))
        vel = data.draw(
            st.lists(st.sampled_from([-1, 0, 1]), min_size=n, max_size=n)
        )
        traces, _ = simulate_collisions(pos, vel, record_paths=True)
        for i, tr in enumerate(traces):
            path = tr.path
            assert path[0] == (F(0), pos[i], vel[i])
            assert path[-1][1] == tr.final_position
            # Breakpoints are time-ordered and positionally continuous:
            # the linear segment from each breakpoint must land exactly
            # on the next breakpoint's position.
            for (t0, p0, v0), (t1, p1, _v1) in zip(path, path[1:]):
                assert t0 <= t1
                assert (p0 + v0 * (t1 - t0)) % 1 == p1

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_no_overpass_along_paths(self, data):
        """Sampled at collision times, adjacent agents never swap ring
        order -- the model's core invariant, now checkable mid-round."""
        n = data.draw(st.integers(min_value=3, max_value=7))
        pos = data.draw(ring_positions(n))
        vel = data.draw(
            st.lists(st.sampled_from([-1, 1]), min_size=n, max_size=n)
        )
        traces, _ = simulate_collisions(pos, vel, record_paths=True)
        sample_times = sorted(
            {bp[0] for tr in traces for bp in tr.path}
        )
        for t in sample_times:
            points = [position_at(tr.path, t) for tr in traces]
            # Ring order preserved <=> walking clockwise from agent 0
            # meets agents in index order: the cyclic sequence of
            # arcs from agent i to i+1 must sum to exactly 1 (touching
            # agents may share a point, so arcs are >= 0).
            arcs = [
                cw_arc(points[i], points[(i + 1) % n]) for i in range(n)
            ]
            # Order preserved <=> one full clockwise turn visits the
            # agents in index order (touching pairs contribute arc 0);
            # an order violation forces an extra wrap, total >= 2.
            assert sum(arcs) == 1, f"order violated at t={t}"

    def test_first_collision_consistent_with_path(self):
        traces, _ = simulate_collisions(
            [F(0), F(1, 8), F(1, 4), F(5, 8)], [1, 1, 1, -1],
            record_paths=True,
        )
        for tr in traces:
            if tr.first_collision_time is None:
                assert len(tr.path) == 2  # start and end only
            else:
                assert tr.path[1][0] == tr.first_collision_time
                assert tr.path[1][1] == tr.first_collision_position
