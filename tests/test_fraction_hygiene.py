"""Fraction hygiene across the whole registry: every protocol, run
natively on the array backend, performs zero Fraction *arithmetic*.

This generalises the Distances acceptance gate
(``test_int_mode_runs_zero_fraction_arithmetic``) to a sweep over
``list_protocols()``: the eight arithmetic dunders are patched with
counters after the session is built, the protocol runs end to end, and
the count must be exactly zero.  Constructor calls (interning, lazy
materialisation on read) are allowed -- the invariant is that the hot
path folds integer numerators over a shared denominator and only mints
Fractions at documented boundaries.

Skip-list: location-discovery on the perceptive model with even n
routes through the ring-distance doubling protocol, whose match phase
is a documented Fraction boundary (see the ``fraction-hot-path``
pragmas in ``protocols/policies/ring_distance.py``); that combination
is covered separately with a boundedness assertion instead of a zero.
"""

from fractions import Fraction

import pytest

from repro.api import RingSession
from repro.api.registry import list_protocols

DUNDERS = (
    "__mul__", "__rmul__", "__add__", "__radd__",
    "__sub__", "__rsub__", "__truediv__", "__rtruediv__",
)

MODELS = ("perceptive", "lazy", "basic")

#: (protocol, model, even_n) combinations that are documented Fraction
#: boundaries rather than hygiene bugs.
DOCUMENTED_BOUNDARIES = {
    # Perceptive location discovery on even rings runs ring-distance
    # doubling; its y-phase harvest and match-phase prefix sums are
    # the pragma'd boundary in protocols/policies/ring_distance.py.
    ("location-discovery", "perceptive", True),
}

#: Infeasible by the paper's impossibility result (Table I).
INFEASIBLE = {("location-discovery", "basic", True)}


def _cases():
    for spec in list_protocols():
        for model in MODELS:
            for common_sense in (False, True):
                for n in (8, 9):
                    key = (spec.name, model, n % 2 == 0)
                    if key in INFEASIBLE:
                        continue
                    marks = []
                    if key in DOCUMENTED_BOUNDARIES:
                        marks.append(pytest.mark.skip(
                            reason="documented Fraction boundary "
                            "(ring-distance match phase); covered by "
                            "test_perceptive_even_boundary_is_bounded"
                        ))
                    yield pytest.param(
                        spec.name, model, common_sense, n,
                        id=f"{spec.name}-{model}-"
                        f"{'cs' if common_sense else 'nocs'}-n{n}",
                        marks=marks,
                    )


def _count_arithmetic(session, protocol, monkeypatch):
    """Run ``protocol`` with the arithmetic dunders counted.

    Patched *after* the session (state, scheduler, backend) is built:
    configuration generation legitimately uses Fractions.
    """
    calls = {"n": 0}

    def counting(name):
        real = getattr(Fraction, name)

        def wrapper(self, other):
            calls["n"] += 1
            return real(self, other)

        return wrapper

    for name in DUNDERS:
        monkeypatch.setattr(Fraction, name, counting(name))
    result = session.run(protocol)
    return calls["n"], result


@pytest.mark.parametrize("protocol,model,common_sense,n", list(_cases()))
def test_native_array_run_is_fraction_free(
    protocol, model, common_sense, n, monkeypatch
):
    pytest.importorskip("numpy")
    session = RingSession(
        n, model=model, backend="array", seed=3,
        common_sense=common_sense, driver="native",
    )
    count, result = _count_arithmetic(session, protocol, monkeypatch)
    assert result is not None
    assert count == 0, (
        f"{count} Fraction arithmetic calls leaked into the native "
        f"array-backend run of {protocol} ({model}, n={n})"
    )


def test_perceptive_even_boundary_is_bounded(monkeypatch):
    """The one skipped combination: the ring-distance match phase does
    Fraction prefix sums, but only O(n log n) of them -- it must not
    degenerate into per-round Fraction kinematics."""
    pytest.importorskip("numpy")
    n = 8
    session = RingSession(
        n, model="perceptive", backend="array", seed=3, driver="native",
    )
    count, _ = _count_arithmetic(
        session, "location-discovery", monkeypatch
    )
    assert 0 < count <= 4 * n * n, (
        f"match-phase boundary used {count} Fraction operations; "
        "expected a small bounded harvest, not per-round arithmetic"
    )
