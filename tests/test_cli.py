"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--n", "7", "--model", "basic", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "location discovery solved" in out
        assert "discovery" in out

    def test_run_lists_registry_without_protocol(self, capsys):
        assert main(["run"]) == 0
        out = capsys.readouterr().out
        assert "coordination" in out
        assert "location-discovery" in out

    def test_run_human_output(self, capsys):
        assert main([
            "run", "coordination", "--n", "7", "--model", "basic",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "coordination solved in" in out
        assert "leader_election" in out

    def test_run_json_schema(self, capsys):
        assert main([
            "run", "location-discovery", "--n", "7", "--model", "basic",
            "--seed", "3", "--json", "--backend", "fraction",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "location-discovery"
        assert payload["backend"] == "fraction"
        result = payload["result"]
        assert result["kind"] == "location_discovery"
        assert result["rounds"] > 0
        assert set(result["rounds_by_phase"]) >= {
            "direction_agreement", "leader_election", "nontrivial_move",
            "discovery",
        }
        assert len(result["gaps_by_agent"]) == 7

    def test_run_backends_agree(self, capsys):
        args = ["run", "location-discovery", "--n", "7", "--model", "basic",
                "--seed", "3", "--json"]
        assert main(args + ["--backend", "lattice"]) == 0
        lattice = json.loads(capsys.readouterr().out)
        assert main(args + ["--backend", "fraction"]) == 0
        fraction = json.loads(capsys.readouterr().out)
        assert lattice["result"] == fraction["result"]

    def test_sweep_json_schema(self, capsys):
        assert main([
            "sweep", "--sizes", "7", "--seeds", "0,1", "--models", "basic",
            "--workers", "2", "--executor", "thread",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["executor"] == "thread"
        assert report["workers"] == 2
        assert len(report["results"]) == 2
        for row in report["results"]:
            assert set(row) == {"spec", "result", "seconds"}
            assert row["spec"]["model"] == "basic"
            assert row["result"]["rounds"] > 0

    def test_run_json_listing(self, capsys):
        assert main(["run", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [p["name"] for p in payload["protocols"]]
        assert "coordination" in names and "location-discovery" in names

    def test_sweep_rejects_typos_before_running(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--models", "perceptiv"])
        with pytest.raises(SystemExit):
            main(["sweep", "--backends", "latice"])
        with pytest.raises(SystemExit):
            main(["sweep", "--protocol", "frisbee"])

    def test_sweep_out_file(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main([
            "sweep", "--sizes", "7", "--seeds", "0", "--models", "basic",
            "--executor", "serial", "--out", str(out),
        ]) == 0
        written = json.loads(out.read_text())
        printed = json.loads(capsys.readouterr().out)
        assert written == printed

    def test_table1_small(self, capsys):
        assert main(["table1", "--odd", "9", "--even", "8"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "not solvable" in out  # the Lemma 5 cell

    def test_table2_small(self, capsys):
        assert main(["table2", "--odd", "9", "--even", "8"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "FIGURES 1-2" in out
        assert "FIGURE 3" in out

    def test_lower_bounds(self, capsys):
        assert main(["lower-bounds"]) == 0
        out = capsys.readouterr().out
        assert "LEMMA 5" in out and "LEMMA 6" in out and "COR 29" in out

    def test_backend_threads_through_table_commands(self, capsys):
        # Identical seeds must give identical tables on both backends.
        assert main(["table1", "--odd", "9", "--even", "8",
                     "--backend", "lattice", "--json"]) == 0
        lattice = json.loads(capsys.readouterr().out)
        assert main(["table1", "--odd", "9", "--even", "8",
                     "--backend", "fraction", "--json"]) == 0
        fraction = json.loads(capsys.readouterr().out)
        assert lattice == fraction
        assert len(lattice["rows"]) == 4

    def test_backend_accepted_everywhere(self, capsys):
        assert main(["table2", "--odd", "9", "--even", "8",
                     "--backend", "fraction"]) == 0
        assert "TABLE II" in capsys.readouterr().out
        assert main(["figures", "--n", "12", "--backend", "fraction"]) == 0
        assert "FIGURE 3" in capsys.readouterr().out
        assert main(["lower-bounds", "--backend", "fraction"]) == 0
        assert "LEMMA 6" in capsys.readouterr().out

    def test_lower_bounds_json(self, capsys):
        assert main(["lower-bounds", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"lemma5", "lemma6", "cor29"}
        assert payload["lemma5"][0]["measured"]["rotation_parities"] == [0]

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_rejects_bad_model(self):
        with pytest.raises(SystemExit):
            main(["demo", "--model", "psychic"])
