"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--n", "7", "--model", "basic", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "location discovery solved" in out
        assert "discovery" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--odd", "9", "--even", "8"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "not solvable" in out  # the Lemma 5 cell

    def test_table2_small(self, capsys):
        assert main(["table2", "--odd", "9", "--even", "8"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "FIGURES 1-2" in out
        assert "FIGURE 3" in out

    def test_lower_bounds(self, capsys):
        assert main(["lower-bounds"]) == 0
        out = capsys.readouterr().out
        assert "LEMMA 5" in out and "LEMMA 6" in out and "COR 29" in out

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_rejects_bad_model(self):
        with pytest.raises(SystemExit):
            main(["demo", "--model", "psychic"])
