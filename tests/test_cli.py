"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--n", "7", "--model", "basic", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "location discovery solved" in out
        assert "discovery" in out

    def test_run_lists_registry_without_protocol(self, capsys):
        assert main(["run"]) == 0
        out = capsys.readouterr().out
        assert "coordination" in out
        assert "location-discovery" in out

    def test_run_human_output(self, capsys):
        assert main([
            "run", "coordination", "--n", "7", "--model", "basic",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "coordination solved in" in out
        assert "leader_election" in out

    def test_run_json_schema(self, capsys):
        assert main([
            "run", "location-discovery", "--n", "7", "--model", "basic",
            "--seed", "3", "--json", "--backend", "fraction",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "location-discovery"
        assert payload["backend"] == "fraction"
        result = payload["result"]
        assert result["kind"] == "location_discovery"
        assert result["rounds"] > 0
        assert set(result["rounds_by_phase"]) >= {
            "direction_agreement", "leader_election", "nontrivial_move",
            "discovery",
        }
        assert len(result["gaps_by_agent"]) == 7

    def test_run_backends_agree(self, capsys):
        args = ["run", "location-discovery", "--n", "7", "--model", "basic",
                "--seed", "3", "--json"]
        assert main(args + ["--backend", "lattice"]) == 0
        lattice = json.loads(capsys.readouterr().out)
        assert main(args + ["--backend", "fraction"]) == 0
        fraction = json.loads(capsys.readouterr().out)
        assert lattice["result"] == fraction["result"]

    def test_sweep_json_schema(self, capsys):
        assert main([
            "sweep", "--sizes", "7", "--seeds", "0,1", "--models", "basic",
            "--workers", "2", "--executor", "thread",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["executor"] == "thread"
        assert report["workers"] == 2
        assert len(report["results"]) == 2
        for row in report["results"]:
            assert set(row) == {"spec", "result", "seconds"}
            assert row["spec"]["model"] == "basic"
            assert row["result"]["rounds"] > 0

    def test_run_json_listing(self, capsys):
        assert main(["run", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [p["name"] for p in payload["protocols"]]
        assert "coordination" in names and "location-discovery" in names

    def test_sweep_rejects_typos_before_running(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--models", "perceptiv"])
        with pytest.raises(SystemExit):
            main(["sweep", "--backends", "latice"])
        with pytest.raises(SystemExit):
            main(["sweep", "--protocol", "frisbee"])

    def test_sweep_out_file(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main([
            "sweep", "--sizes", "7", "--seeds", "0", "--models", "basic",
            "--executor", "serial", "--out", str(out),
        ]) == 0
        written = json.loads(out.read_text())
        printed = json.loads(capsys.readouterr().out)
        assert written == printed

    def test_table1_small(self, capsys):
        assert main(["table1", "--odd", "9", "--even", "8"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "not solvable" in out  # the Lemma 5 cell

    def test_table2_small(self, capsys):
        assert main(["table2", "--odd", "9", "--even", "8"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures", "--n", "12"]) == 0
        out = capsys.readouterr().out
        assert "FIGURES 1-2" in out
        assert "FIGURE 3" in out

    def test_lower_bounds(self, capsys):
        assert main(["lower-bounds"]) == 0
        out = capsys.readouterr().out
        assert "LEMMA 5" in out and "LEMMA 6" in out and "COR 29" in out

    def test_backend_threads_through_table_commands(self, capsys):
        # Identical seeds must give identical tables on both backends.
        assert main(["table1", "--odd", "9", "--even", "8",
                     "--backend", "lattice", "--json"]) == 0
        lattice = json.loads(capsys.readouterr().out)
        assert main(["table1", "--odd", "9", "--even", "8",
                     "--backend", "fraction", "--json"]) == 0
        fraction = json.loads(capsys.readouterr().out)
        assert lattice == fraction
        assert len(lattice["rows"]) == 4

    def test_backend_accepted_everywhere(self, capsys):
        assert main(["table2", "--odd", "9", "--even", "8",
                     "--backend", "fraction"]) == 0
        assert "TABLE II" in capsys.readouterr().out
        assert main(["figures", "--n", "12", "--backend", "fraction"]) == 0
        assert "FIGURE 3" in capsys.readouterr().out
        assert main(["lower-bounds", "--backend", "fraction"]) == 0
        assert "LEMMA 6" in capsys.readouterr().out

    def test_lower_bounds_json(self, capsys):
        assert main(["lower-bounds", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"lemma5", "lemma6", "cor29"}
        assert payload["lemma5"][0]["measured"]["rotation_parities"] == [0]

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_rejects_bad_model(self):
        with pytest.raises(SystemExit):
            main(["demo", "--model", "psychic"])


class TestCliCache:
    """The --cache surface.  Every test pins --cache-dir to tmp_path:
    these must never read or clear a shared store (REPRO_CACHE_DIR),
    including on the cache-enabled CI axis."""

    RUN = ["run", "location-discovery", "--n", "7", "--model", "basic",
           "--seed", "3", "--json"]

    def test_cached_run_bit_identical(self, capsys, tmp_path):
        cache = ["--cache", "--cache-dir", str(tmp_path)]
        assert main(self.RUN + cache) == 0
        computed = json.loads(capsys.readouterr().out)
        assert main(self.RUN + ["--backend", "fraction"] + cache) == 0
        fetched = json.loads(capsys.readouterr().out)
        assert fetched["result"] == computed["result"]
        assert {p["driver"] for p in fetched["phases"]} == {"cached"}
        assert [p["name"] for p in fetched["phases"]] == [
            p["name"] for p in computed["phases"]
        ]

    def test_no_cache_forces_compute(self, capsys, tmp_path):
        cache_dir = ["--cache-dir", str(tmp_path)]
        assert main(self.RUN + ["--cache"] + cache_dir) == 0
        capsys.readouterr()
        assert main(self.RUN + ["--no-cache"] + cache_dir) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {p["driver"] for p in payload["phases"]} == {"native"}

    def test_cached_sweep_summary_and_equality(self, capsys, tmp_path):
        args = ["sweep", "--sizes", "7", "--seeds", "0,1",
                "--models", "basic", "--backends", "lattice,fraction",
                "--executor", "serial"]
        cache = ["--cache", "--cache-dir", str(tmp_path)]
        assert main(args + ["--no-cache"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert "cache" not in plain
        assert main(args + cache) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args + cache) == 0
        second = json.loads(capsys.readouterr().out)
        strip = lambda rep: [
            {"spec": r["spec"], "result": r["result"]}
            for r in rep["results"]
        ]
        assert strip(first) == strip(plain)
        assert strip(second) == strip(plain)
        # 4 rows, 2 distinct keys: dedup on the first pass, no misses
        # on the second.
        assert first["cache"]["misses"] == 2
        assert first["cache"]["deduped"] == 2
        assert second["cache"]["misses"] == 0
        for row in first["results"]:
            assert set(row) == {"spec", "result", "seconds"}

    def test_cache_stats_verify_clear(self, capsys, tmp_path):
        cache = ["--cache", "--cache-dir", str(tmp_path)]
        dir_only = ["--cache-dir", str(tmp_path)]
        assert main(self.RUN + cache) == 0
        capsys.readouterr()
        assert main(["cache", "stats"] + dir_only) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["cache_dir"] == str(tmp_path)
        assert main(["cache", "verify"] + dir_only) == 0
        verified = json.loads(capsys.readouterr().out)
        assert verified["ok"] is True
        assert verified["verified"] == 1
        assert verified["rows"][0]["ok"] is True
        assert main(["cache", "clear"] + dir_only) == 0
        cleared = json.loads(capsys.readouterr().out)
        assert cleared["cleared"] == 1
        assert main(["cache", "stats"] + dir_only) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_verify_flags_tampering(self, capsys, tmp_path):
        from repro.store.store import RunStore

        cache = ["--cache", "--cache-dir", str(tmp_path)]
        assert main(self.RUN + cache) == 0
        capsys.readouterr()
        store = RunStore(tmp_path)
        (digest,) = store.iter_digests()
        path = store.entry_path(digest)
        envelope = json.loads(path.read_text())
        envelope["result"]["rounds"] += 1
        path.write_text(json.dumps(envelope))
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False
        assert "differs" in verdict["rows"][0]["detail"]

    def test_cache_verify_sample(self, capsys, tmp_path):
        cache = ["--cache", "--cache-dir", str(tmp_path)]
        assert main(self.RUN + cache) == 0
        assert main(self.RUN + ["--seed", "4"] + cache) == 0
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(tmp_path),
                     "--sample", "1"]) == 0
        verified = json.loads(capsys.readouterr().out)
        assert verified["verified"] == 1
        with pytest.raises(SystemExit):
            main(["cache", "verify", "--cache-dir", str(tmp_path),
                  "--sample", "0"])
