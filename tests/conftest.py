"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ring.configs import random_configuration
from repro.ring.state import RingState


@pytest.fixture
def small_ring() -> RingState:
    """A 7-agent ring with mixed chiralities, fixed seed."""
    return random_configuration(n=7, seed=42, common_sense=False)


@pytest.fixture
def even_ring() -> RingState:
    """An 8-agent ring with mixed chiralities, fixed seed."""
    return random_configuration(n=8, seed=7, common_sense=False)
