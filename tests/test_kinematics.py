"""Tests for closed-form kinematics, including the coll() closed form."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.ring.collisions import simulate_collisions
from repro.ring.kinematics import (
    closed_form_round,
    first_collisions_basic,
    rotation_index,
)

F = Fraction


def ring_positions(n, denom_bits=8):
    denom = 1 << denom_bits
    return st.sets(
        st.integers(min_value=0, max_value=denom - 1), min_size=n, max_size=n
    ).map(lambda ticks: [F(t, denom) for t in sorted(ticks)])


class TestRotationIndex:
    def test_all_clockwise(self):
        assert rotation_index([1, 1, 1, 1, 1], 5) == 0

    def test_balanced_even(self):
        assert rotation_index([1, 1, -1, -1], 4) == 0

    def test_mixed(self):
        assert rotation_index([1, -1, -1, -1, -1], 5) == (1 - 4) % 5

    def test_idle_agents_do_not_count(self):
        assert rotation_index([1, 0, 0, 0, 0, 0], 6) == 1
        assert rotation_index([0, 0, 0, 0, 0, 0], 6) == 0

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=2, max_size=12))
    def test_matches_definition(self, vel):
        n = len(vel)
        n_cw = vel.count(1)
        n_acw = vel.count(-1)
        assert rotation_index(vel, n) == (n_cw - n_acw) % n


class TestClosedFormRound:
    def test_rotation_two(self):
        pos = [F(0), F(1, 8), F(1, 2), F(5, 8), F(3, 4)]
        vel = [1, 1, 1, -1, 1]  # r = (4 - 1) mod 5 = 3
        final, r = closed_form_round(pos, vel)
        assert r == 3
        assert final == [pos[(i + 3) % 5] for i in range(5)]


class TestFirstCollisionsClosedForm:
    def test_rejects_idle(self):
        with pytest.raises(ValueError):
            first_collisions_basic([F(0), F(1, 2)], [1, 0])

    def test_uniform_direction_no_collision(self):
        pos = [F(0), F(1, 4), F(1, 2)]
        assert first_collisions_basic(pos, [1, 1, 1]) == [None, None, None]
        assert first_collisions_basic(pos, [-1, -1, -1]) == [None, None, None]

    def test_cascade_window(self):
        # Three cw movers then one acw: windows grow by one gap each.
        pos = [F(0), F(1, 8), F(1, 4), F(5, 8)]
        vel = [1, 1, 1, -1]
        coll = first_collisions_basic(pos, vel)
        assert coll[0] == (F(1, 8) + F(1, 8) + F(3, 8)) / 2
        assert coll[1] == (F(1, 8) + F(3, 8)) / 2
        assert coll[2] == F(3, 8) / 2
        # The acw mover's window walks backwards to agent 2.
        assert coll[3] == F(3, 8) / 2

    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_matches_event_simulator(self, data):
        """The load-bearing property: closed form == exact event sim."""
        n = data.draw(st.integers(min_value=2, max_value=11))
        pos = data.draw(ring_positions(n))
        vel = data.draw(
            st.lists(st.sampled_from([-1, 1]), min_size=n, max_size=n)
        )
        traces, _ = simulate_collisions(pos, vel)
        closed = first_collisions_basic(pos, vel)
        event = [t.coll_distance for t in traces]
        assert closed == event
