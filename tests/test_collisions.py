"""Tests for the exact event-driven collision simulator.

The key correctness anchors:

* final positions must match the closed-form Lemma 1 rotation;
* the velocity *multiset* is conserved (collisions exchange velocities);
* agents never overpass (ring order of final positions is preserved);
* cascade first-collision distances match the hand-derived formula of
  Proposition 4 (corrected to include the nearest gap);
* pathological simultaneous collisions resolve like pass-through tokens.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import is_ring_ordered, normalize
from repro.ring.collisions import simulate_collisions
from repro.ring.kinematics import closed_form_round, rotation_index

F = Fraction


def ring_positions(n, denom_bits=8):
    denom = 1 << denom_bits
    return st.sets(
        st.integers(min_value=0, max_value=denom - 1), min_size=n, max_size=n
    ).map(lambda ticks: [F(t, denom) for t in sorted(ticks)])


def velocities(n):
    return st.lists(
        st.sampled_from([-1, 0, 1]), min_size=n, max_size=n
    )


class TestAgainstClosedForm:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_final_positions_match_lemma1(self, data):
        n = data.draw(st.integers(min_value=2, max_value=10))
        pos = data.draw(ring_positions(n))
        vel = data.draw(velocities(n))
        traces, _ = simulate_collisions(pos, vel)
        expected, _ = closed_form_round(pos, vel)
        assert [t.final_position for t in traces] == expected

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_order_preserved(self, data):
        n = data.draw(st.integers(min_value=3, max_value=9))
        pos = data.draw(ring_positions(n))
        vel = data.draw(velocities(n))
        traces, _ = simulate_collisions(pos, vel)
        finals = [t.final_position for t in traces]
        # Distinct-final-position rounds must preserve the cyclic order.
        if len(set(finals)) == n:
            assert is_ring_ordered(finals)


class TestNoCollisionCases:
    def test_all_clockwise_no_collisions(self):
        pos = [F(0), F(1, 4), F(1, 2), F(3, 4)]
        traces, events = simulate_collisions(pos, [1, 1, 1, 1])
        assert events == 0
        assert all(t.first_collision_time is None for t in traces)
        # A full unit-time lap returns everyone to the start.
        assert [t.final_position for t in traces] == pos

    def test_all_idle(self):
        pos = [F(0), F(1, 3), F(2, 3)]
        traces, events = simulate_collisions(pos, [0, 0, 0])
        assert events == 0
        assert [t.final_position for t in traces] == pos


class TestTwoAgentHeadOn:
    def test_meet_halfway(self):
        pos = [F(0), F(1, 2)]
        traces, events = simulate_collisions(pos, [1, -1])
        # They meet at 1/4 after time 1/4, bounce, meet again at 3/4.
        assert traces[0].first_collision_time == F(1, 4)
        assert traces[0].first_collision_position == F(1, 4)
        assert traces[0].coll_distance == F(1, 4)
        assert traces[1].coll_distance == F(1, 4)
        assert events == 2  # they bounce twice in a unit round

    def test_rotation_index_zero(self):
        pos = [F(0), F(1, 2)]
        traces, _ = simulate_collisions(pos, [1, -1])
        assert [t.final_position for t in traces] == pos


class TestIdleCollisions:
    def test_mover_stops_idle_continues(self):
        # Agent 0 at 0 moving cw, agent 1 idle at 1/4, agent 2 idle at 7/8.
        pos = [F(0), F(1, 4), F(7, 8)]
        traces, _ = simulate_collisions(pos, [1, 0, 0])
        # r = 1: everyone ends at successor's start position.
        assert traces[0].final_position == F(1, 4)
        assert traces[1].final_position == F(7, 8)
        assert traces[2].final_position == F(0)
        # The idle agent's first collision is at its own position.
        assert traces[1].coll_distance == 0
        assert traces[1].first_collision_time == F(1, 4)
        # The initial mover travelled 1/4 before its first collision.
        assert traces[0].coll_distance == F(1, 4)

    def test_momentum_relay_travels_full_circle(self):
        n = 8
        pos = [F(i, n) for i in range(n)]
        vel = [1] + [0] * (n - 1)
        traces, events = simulate_collisions(pos, vel)
        # One token of motion is relayed all the way around: r = 1.
        expected, r = closed_form_round(pos, vel)
        assert r == 1
        assert [t.final_position for t in traces] == expected
        # One hand-off per idle agent; the last carrier reaches the
        # origin position exactly at t = 1 without another collision.
        assert events == n - 1


class TestCascadeFormula:
    """Proposition 4 (corrected): with b0..bk moving the same way and
    b_{k+1} opposite, b0's first collision is at (x0 + ... + xk)/2."""

    def test_chain_of_three(self):
        # Agents at 0, 1/8, 1/4, 5/8; first three move cw, last moves acw.
        pos = [F(0), F(1, 8), F(1, 4), F(5, 8)]
        vel = [1, 1, 1, -1]
        traces, _ = simulate_collisions(pos, vel)
        x = [F(1, 8), F(1, 8), F(3, 8)]  # gaps 0-1, 1-2, 2-3
        assert traces[0].coll_distance == sum(x) / 2
        assert traces[1].coll_distance == (x[1] + x[2]) / 2
        assert traces[2].coll_distance == x[2] / 2
        # The opposite mover's first collision is also at x2/2 arc.
        assert traces[3].coll_distance == x[2] / 2

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_cascade_general(self, data):
        n = data.draw(st.integers(min_value=3, max_value=8))
        pos = data.draw(ring_positions(n))
        k = data.draw(st.integers(min_value=0, max_value=n - 2))
        # b0..bk clockwise, b_{k+1} anticlockwise, rest anticlockwise too
        # so no cascade reaches b0 from behind faster.
        vel = [1 if i <= k else -1 for i in range(n)]
        traces, _ = simulate_collisions(pos, vel)
        gaps_sum = normalize(pos[(k + 1) % n] - pos[0])
        if gaps_sum == 0:
            gaps_sum = F(1)
        assert traces[0].coll_distance == gaps_sum / 2


class TestSimultaneousEvents:
    def test_symmetric_triple_contact(self):
        # Two movers converge on an idle agent exactly symmetrically.
        pos = [F(0), F(1, 4), F(1, 2)]
        vel = [1, 0, -1]
        traces, _ = simulate_collisions(pos, vel)
        expected, _ = closed_form_round(pos, vel)
        assert [t.final_position for t in traces] == expected
        # Both movers first collide at the middle agent's position after 1/4.
        assert traces[0].first_collision_time == F(1, 4)
        assert traces[2].first_collision_time == F(1, 4)
        assert traces[1].coll_distance == 0

    def test_four_agent_double_pair(self):
        pos = [F(0), F(1, 4), F(1, 2), F(3, 4)]
        vel = [1, -1, 1, -1]
        traces, _ = simulate_collisions(pos, vel)
        expected, _ = closed_form_round(pos, vel)
        assert [t.final_position for t in traces] == expected
        # Both pairs collide simultaneously at t = 1/8.
        assert all(t.first_collision_time == F(1, 8) for t in traces)


class TestVelocityConservation:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_total_displacement_matches_momentum(self, data):
        n = data.draw(st.integers(min_value=2, max_value=8))
        pos = data.draw(ring_positions(n))
        vel = data.draw(velocities(n))
        traces, _ = simulate_collisions(pos, vel)
        r = rotation_index(vel, n)
        # Lemma 1: net rotation equals momentum; every agent shifted r slots.
        for i, t in enumerate(traces):
            assert t.final_position == pos[(i + r) % n]
