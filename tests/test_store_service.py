"""Compute-or-fetch tests: fetches are bit-identical to computing,
across protocols, models, backends, drivers and executors; fleets
partition and dedup; sessions opt in explicitly; everything uncacheable
or broken degrades to plain recompute."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.api.fleet import Fleet, SessionSpec, run_session_spec, sweep
from repro.api.session import RingSession
from repro.store.keys import run_key
from repro.store.service import (
    cache_enabled_default,
    compute_or_fetch,
    get_store,
    resolve_cache,
)
from repro.store.store import RunStore

SPEC = SessionSpec(n=7, protocol="location-discovery", model="basic", seed=3)


@pytest.fixture
def store(tmp_path) -> RunStore:
    return RunStore(tmp_path / "cache")


class TestEnvSwitch:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled_default() is False
        assert resolve_cache(None) is False

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE", value)
        assert cache_enabled_default() is True
        assert resolve_cache(None) is True

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE", value)
        assert cache_enabled_default() is False

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert resolve_cache(False) is False
        monkeypatch.delenv("REPRO_CACHE")
        assert resolve_cache(True) is True

    def test_get_store_one_per_directory(self, tmp_path):
        one = get_store(tmp_path / "a")
        again = get_store(tmp_path / "a")
        other = get_store(tmp_path / "b")
        assert one is again
        assert one is not other


class TestComputeOrFetch:
    def test_miss_then_hit_bit_identical(self, store):
        computed, fetched_flag, digest = compute_or_fetch(SPEC, store=store)
        assert fetched_flag is False
        assert digest == run_key(SPEC)
        fetched, fetched_flag, digest2 = compute_or_fetch(SPEC, store=store)
        assert fetched_flag is True
        assert digest2 == digest
        assert fetched == computed
        assert json.dumps(fetched, sort_keys=True) == json.dumps(
            computed, sort_keys=True
        )

    @pytest.mark.parametrize("variant", [
        dict(backend="fraction"),
        dict(backend="array"),
        dict(driver="callback"),
        dict(backend="fraction", driver="callback"),
    ])
    def test_backend_driver_variants_share_entries(self, store, variant):
        compute_or_fetch(SPEC, store=store)  # populate from lattice/native
        result, was_fetched, _ = compute_or_fetch(
            replace(SPEC, **variant), store=store
        )
        assert was_fetched is True
        assert result == run_session_spec(SPEC)["result"]

    @pytest.mark.parametrize("spec", [
        SessionSpec(n=7, protocol="coordination", model="basic", seed=1),
        SessionSpec(n=8, protocol="coordination", model="perceptive",
                    seed=2),
        SessionSpec(n=9, protocol="location-discovery", model="lazy",
                    seed=0),
        SessionSpec(n=7, protocol="location-discovery", model="basic",
                    seed=5, unchecked=True),
    ])
    def test_across_protocols_and_models(self, store, spec):
        computed, _, _ = compute_or_fetch(spec, store=store)
        fetched, was_fetched, _ = compute_or_fetch(spec, store=store)
        assert was_fetched is True
        assert fetched == computed
        assert fetched == run_session_spec(spec)["result"]

    def test_uncacheable_spec_computes(self, store):
        bogus = replace(SPEC, protocol="frisbee")
        with pytest.raises(Exception):
            compute_or_fetch(bogus, store=store)
        # infeasible-but-plannable is different: safe_key fails, so
        # compute_or_fetch surfaces the same error an uncached run
        # would (here at compute time).  A *keyable* spec that cannot
        # run never happens by construction; the digest=None path is
        # covered through the session below.

    def test_corrupt_entry_recomputes(self, store):
        _, _, digest = compute_or_fetch(SPEC, store=store)
        store.entry_path(digest).write_text("{broken")
        fresh = RunStore(store.cache_dir)  # cold memory tier
        result, was_fetched, _ = compute_or_fetch(SPEC, store=fresh)
        assert was_fetched is False
        assert result == run_session_spec(SPEC)["result"]
        # the recompute heals the entry
        _, was_fetched, _ = compute_or_fetch(SPEC, store=fresh)
        assert was_fetched is True


class TestFleetPartition:
    def test_preflight_partition_and_dedup(self, tmp_path):
        cache_dir = tmp_path / "cache"
        specs = sweep(
            sizes=(7,), seeds=(0, 1), models=("basic",),
            backends=("lattice", "fraction"),
        )
        first = Fleet(
            specs, executor="serial", cache=True, cache_dir=str(cache_dir),
        ).run()
        # 4 rows, 2 distinct keys: each computed once, twins fanned out
        assert first.cache["misses"] == 2
        assert first.cache["deduped"] == 2
        assert first.cache["hits"] == 0
        assert len(first.results) == 4
        second = Fleet(
            specs, executor="serial", cache=True, cache_dir=str(cache_dir),
        ).run()
        assert second.cache["misses"] == 0
        assert second.cache["hits"] + second.cache["deduped"] == 4
        assert second.payloads() == first.payloads()

    def test_cached_equals_uncached_payloads(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        specs = sweep(sizes=(7, 9), seeds=(0, 1), models=("basic",))
        plain = Fleet(specs, executor="serial").run()
        cached = Fleet(
            specs, executor="serial", cache=True,
            cache_dir=str(tmp_path / "cache"),
        ).run()
        recached = Fleet(
            specs, executor="thread", workers=2, cache=True,
            cache_dir=str(tmp_path / "cache"),
        ).run()
        assert cached.payloads() == plain.payloads()
        assert recached.payloads() == plain.payloads()
        assert plain.cache is None
        assert "cache" not in plain.to_dict()

    def test_process_executor_receives_only_misses(self, tmp_path):
        cache_dir = tmp_path / "cache"
        specs = sweep(sizes=(7,), seeds=(0, 1, 2), models=("basic",))
        Fleet(
            specs[:2], executor="serial", cache=True,
            cache_dir=str(cache_dir),
        ).run()
        report = Fleet(
            specs, executor="process", workers=2, cache=True,
            cache_dir=str(cache_dir),
        ).run()
        assert report.cache == {
            "enabled": True, "hits": 2, "misses": 1, "deduped": 0,
            "uncacheable": 0, "cache_dir": str(cache_dir),
        }
        serial = Fleet(specs, executor="serial").run()
        assert report.payloads() == serial.payloads()

    def test_row_order_follows_spec_list(self, tmp_path):
        specs = sweep(
            sizes=(7,), seeds=(1, 0), models=("basic",),
            backends=("lattice", "fraction"),
        )
        report = Fleet(
            specs, executor="serial", cache=True,
            cache_dir=str(tmp_path / "cache"),
        ).run()
        assert [row["spec"] for row in report.results] == [
            spec.to_dict() for spec in specs
        ]

    def test_env_switch_enables_fleet_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        specs = sweep(sizes=(7,), seeds=(0,), models=("basic",))
        report = Fleet(specs, executor="serial").run()
        assert report.cache is not None
        assert report.cache["misses"] == 1
        again = Fleet(specs, executor="serial").run()
        assert again.cache["hits"] == 1
        assert again.payloads() == report.payloads()


class TestSessionCache:
    def test_opt_in_only(self, tmp_path, monkeypatch):
        # Ambient REPRO_CACHE must NOT flip sessions to fetching:
        # callers inspect scheduler state after run(), which a fetch
        # leaves untouched.  Sessions cache by explicit cache=True.
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        session = RingSession(n=7, model="basic", seed=3)
        session.run("location-discovery")
        assert session.rounds > 0  # really computed

    def test_miss_then_hit(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = RingSession(
            n=7, model="basic", seed=3, cache=True, cache_dir=cache_dir,
        )
        computed = first.run("location-discovery")
        assert first.rounds > 0
        second = RingSession(
            n=7, model="basic", seed=3, backend="fraction", cache=True,
            cache_dir=cache_dir,
        )
        fetched = second.run("location-discovery")
        assert second.rounds == 0  # served without simulating
        assert fetched.to_dict() == computed.to_dict()
        assert second.phase_rounds == first.phase_rounds
        assert list(second.phase_rounds) == list(first.phase_rounds)
        assert set(second.phase_drivers.values()) == {"cached"}

    def test_wrapped_state_never_caches(self, tmp_path, small_ring):
        session = RingSession.from_state(small_ring, model="basic")
        session.cache = True
        session.cache_dir = str(tmp_path / "cache")
        session.run("location-discovery")
        assert session.rounds > 0
        assert session._cache_args is None

    def test_consumed_session_never_fetches(self, tmp_path):
        from repro.types import LocalDirection

        cache_dir = str(tmp_path / "cache")
        RingSession(
            n=7, model="basic", seed=3, cache=True, cache_dir=cache_dir,
        ).run("location-discovery")
        moved = RingSession(
            n=7, model="basic", seed=3, cache=True, cache_dir=cache_dir,
        )
        moved.run_fixed(LocalDirection.RIGHT)  # rounds > 0 now
        moved.run("location-discovery")
        assert moved.rounds > 1  # computed, not fetched
