"""Policy surface tests: vectorised decisions must be bit-exact with the
legacy per-agent choice-function path, across models and backends."""

from __future__ import annotations

import pytest

from repro.api.policy import (
    FixedPolicy,
    FunctionPolicy,
    PerAgentPolicy,
    Policy,
    as_policy,
)
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError, SimulationError
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model

ROUNDS = 24


def _choice_fn(model: Model):
    """A deterministic, stateful per-agent choice function: depends on
    the agent's ID, how many rounds it has lived, and its last
    observation -- enough texture to exercise mixed/idle/uniform rounds."""

    def choose(view) -> LocalDirection:
        h = view.agent_id * 31 + view.rounds_seen() * 7
        if view.log and view.last.moved:
            h += 13
        options = [LocalDirection.RIGHT, LocalDirection.LEFT]
        if model.allows_idle:
            options.append(LocalDirection.IDLE)
        return options[h % len(options)]

    return choose


def _drive(n, seed, model, backend, make_policy):
    """Fresh state -> scheduler -> ROUNDS rounds driven by
    ``make_policy(choice_fn)`` (identity for the legacy path)."""
    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, model, backend=backend)
    driver = make_policy(_choice_fn(model))
    outcomes = [sched.run_round(driver) for _ in range(ROUNDS)]
    return outcomes, state.snapshot(), [list(v.log) for v in sched.views]


class TestPolicyEquivalence:
    @pytest.mark.parametrize("model", list(Model))
    @pytest.mark.parametrize("backend", ["lattice", "fraction"])
    @pytest.mark.parametrize("n,seed", [(7, 0), (8, 1), (11, 5)])
    def test_per_agent_policy_bit_exact(self, model, backend, n, seed):
        legacy = _drive(n, seed, model, backend, lambda fn: fn)
        policy = _drive(n, seed, model, backend, PerAgentPolicy)
        assert legacy == policy  # outcomes, final positions, agent logs

    @pytest.mark.parametrize("model", list(Model))
    def test_function_policy_bit_exact(self, model):
        legacy = _drive(9, 3, model, "lattice", lambda fn: fn)
        vectorised = _drive(
            9, 3, model, "lattice",
            lambda fn: FunctionPolicy(lambda views: [fn(v) for v in views]),
        )
        assert legacy == vectorised

    def test_cross_backend_policy_agreement(self):
        lattice = _drive(8, 2, Model.PERCEPTIVE, "lattice", PerAgentPolicy)
        fraction = _drive(8, 2, Model.PERCEPTIVE, "fraction", PerAgentPolicy)
        assert lattice == fraction

    def test_fixed_policy_matches_run_fixed(self):
        state_a = random_configuration(8, seed=4, common_sense=False)
        state_b = random_configuration(8, seed=4, common_sense=False)
        sched_a = Scheduler(state_a, Model.BASIC)
        sched_b = Scheduler(state_b, Model.BASIC)
        outcomes_a = sched_a.run_rounds(
            FixedPolicy(LocalDirection.RIGHT), 6
        )
        last_b = sched_b.run_fixed(LocalDirection.RIGHT, 6)
        assert outcomes_a[-1] == last_b
        assert state_a.snapshot() == state_b.snapshot()
        assert [v.log for v in sched_a.views] == [
            v.log for v in sched_b.views
        ]


class TestPolicyContract:
    def test_one_decide_call_per_round(self):
        state = random_configuration(7, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        calls = []

        class Counting(Policy):
            def decide(self, views):
                calls.append(len(views))
                return [LocalDirection.RIGHT] * len(views)

        sched.run_rounds(Counting(), 5)
        assert calls == [7] * 5

    def test_wrong_length_rejected(self):
        state = random_configuration(7, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)

        class Short(Policy):
            def decide(self, views):
                return [LocalDirection.RIGHT]

        with pytest.raises(SimulationError):
            sched.run_round(Short())
        assert sched.rounds == 0  # nothing executed

    def test_as_policy_coercion(self):
        fixed = FixedPolicy(LocalDirection.LEFT)
        assert as_policy(fixed) is fixed
        wrapped = as_policy(lambda view: LocalDirection.RIGHT)
        assert isinstance(wrapped, PerAgentPolicy)
        with pytest.raises(ProtocolError):
            as_policy(42)
