"""The docs gate runs green in tier-1, not only in the CI docs job.

``tools/check_docs.py`` executes every python code block in README.md
and docs/*.md (doctest for ``>>>`` blocks, ``exec`` otherwise), checks
that relative links resolve, and verifies the README bench table
matches the committed ``BENCH_*.json`` reports.  Running it here means
a change that breaks the documented quickstart fails the ordinary test
suite immediately instead of waiting for the docs job.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_docs_gate_is_green():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, f"{proc.stdout}\n{proc.stderr}"
    assert "0 error(s)" in proc.stdout


def test_docs_exist():
    assert (REPO / "README.md").exists()
    assert (REPO / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO / "docs" / "BENCHMARKS.md").exists()
