"""Fixture: SpeculativeStretch stop predicates that mutate simulation
state.  The read-only predicate at the bottom must stay clean."""

from repro.ring.stretch import SpeculativeStretch


def build(sched, state, flips):
    def stop(result, j):
        state.offset = j  # store through simulation state
        result.cache["j"] = j  # store through the stretch outcome
        sched.push_round(flips)  # mutating call on the scheduler
        return j > 3

    return SpeculativeStretch((1, len(flips)), stop=stop)


def build_lambda(state, flips):
    return SpeculativeStretch(
        (1, len(flips)), stop=lambda result, j: state.log.append(j)
    )


def build_clean(flips, target):
    totals = []

    def stop(result, j):
        # Closure accumulation over emitted columns is the sanctioned
        # pattern: read the outcome, keep private running state.
        totals.append(j)
        return len(totals) >= target

    return SpeculativeStretch((1, len(flips)), stop=stop)
