"""Fixture: pragma placement and well-formedness cases.

Linted under any path (the nondeterminism rule fires on every module).

* ``suppressed_trailing`` / ``suppressed_own_line``: valid pragmas on
  the finding line and on the line directly above it;
* ``wrong_line``: a pragma two lines above the finding suppresses
  nothing (and is itself reported unused);
* ``no_reason``: a pragma without a justification is a finding and
  does not suppress;
* ``unknown_rule``: allowing a rule the linter does not know is a
  finding and does not suppress.
"""

import time


def suppressed_trailing():
    return time.time()  # lint: allow[nondeterminism] -- fixture: justified exemption


def suppressed_own_line():
    # lint: allow[nondeterminism] -- fixture: own-line pragma covers the next line
    return time.time()


def wrong_line():
    # lint: allow[nondeterminism] -- fixture: too far from the finding

    return time.time()


def no_reason():
    return time.time()  # lint: allow[nondeterminism]


def unknown_rule():
    return time.time()  # lint: allow[no-such-rule] -- fixture: bogus rule name
