"""Fixture: every banned ambient-state read for the nondeterminism
rule (path-independent: the rule runs on every module)."""

import random
import time


def wall_clock():
    return time.time()


def global_random():
    return random.randint(0, 10)


def unseeded():
    return random.Random()


def seeded(seed):
    # Explicitly seeded generators are the sanctioned pattern.
    return random.Random(seed)


def id_keyed(views):
    table = {}
    for view in views:
        table[id(view)] = view
    return table


def id_literal(view):
    return {id(view): 1}
