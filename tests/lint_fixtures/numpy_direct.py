"""Fixture: direct numpy imports bypassing the get_numpy gate.

Linted under any path other than ``ring/arrayops.py``.  Both the
module-level and the function-level import are violations; routing
through the gate is the sanctioned pattern.
"""

import numpy  # noqa: F401


def local_import():
    from numpy import int64

    return int64


def gated():
    from repro.ring.arrayops import get_numpy

    return get_numpy()
