"""Fixture: scalar per-agent iteration on the native decision path.

Linted under ``protocols/policies/fixture.py``.  Both ``decide`` and
the stop predicate iterate the population one agent at a time; the
helper outside any decision scope is legal.
"""


class ScalarPolicy:
    def __init__(self, n):
        self.n = n

    def decide(self, views):
        out = []
        for view in views:
            out.append(view)
        return out

    def finalize(self):
        for i in range(self.n):
            _ = i


def make_predicate(population):
    def stop(result, j):
        total = 0
        for slot in range(population.n):
            total += slot
        return total > 0

    return stop


def legal_helper(items):
    # Not a decide/finalize/predicate body: plain iteration is fine.
    return [item for item in items]
