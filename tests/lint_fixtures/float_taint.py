"""Fixture: float taint inside a tick-grid (ring kinematics) module.

Linted under ``ring/fixture.py``.  Three tainting shapes -- a float
literal, a ``float()`` call, and true division of integer literals --
plus an exact computation that must stay clean.
"""

from fractions import Fraction

HALF_WRONG = 0.5
HALF_RIGHT = Fraction(1, 2)


def taint_call(x):
    return float(x)


def taint_division():
    return 1 / 2


def exact(a, b):
    # Fraction division is exact and not flagged.
    return Fraction(a) / Fraction(b)
