"""Fixture: Fraction arithmetic inside a hot-path module.

Linted under the virtual path ``protocols/policies/fixture.py`` so the
``fraction-hot-path`` rule applies.  ``boundary`` mirrors a
whitelisted interning function (the test whitelists it explicitly);
``hot_loop`` is the violation.
"""

from fractions import Fraction


def boundary(scale):
    return Fraction(1, scale)


def hot_loop(values, scale):
    total = Fraction(0)
    for v in values:
        total += Fraction(v, scale)
    return total


def annotated_only(x: Fraction) -> Fraction:
    return x
