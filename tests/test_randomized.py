"""Tests for the randomized (anonymous agents) variant."""

from fractions import Fraction

import pytest

from repro.exceptions import ConfigurationError
from repro.protocols.randomized import (
    anonymous_configuration,
    collision_probability,
    draw_random_ids,
    randomized_location_discovery,
)
from repro.ring.configs import random_configuration
from repro.types import Chirality, Model


def anonymous_ring(n, seed):
    base = random_configuration(n, seed=seed, common_sense=False)
    return base.positions, base.chiralities


class TestCollisionProbability:
    def test_certain_when_space_too_small(self):
        assert collision_probability(5, 4) == 1.0

    def test_birthday_bound(self):
        # P(collision) <= n^2 / (2R).
        for n, space in ((8, 8 ** 3), (16, 16 ** 3)):
            assert collision_probability(n, space) <= n * n / (2 * space) * 1.1

    def test_monotone_in_n(self):
        assert collision_probability(10, 1000) > collision_probability(
            5, 1000
        )


class TestDrawRandomIds:
    def test_deterministic_given_seed(self):
        assert draw_random_ids(8, 512, seed=1) == draw_random_ids(
            8, 512, seed=1
        )

    def test_range(self):
        ids = draw_random_ids(100, 7, seed=2)
        assert all(1 <= x <= 7 for x in ids)

    def test_collisions_do_occur_with_replacement(self):
        """With R = n the draw collides almost surely -- the generator
        must not silently deduplicate."""
        collided = any(
            len(set(draw_random_ids(12, 12, seed=s))) < 12 for s in range(10)
        )
        assert collided


class TestAnonymousConfiguration:
    def test_successful_draw_builds_state(self):
        positions, chirs = anonymous_ring(9, seed=4)
        state = anonymous_configuration(positions, chirs, seed=1)
        assert state.n == 9
        assert state.id_bound == 9 ** 3
        assert len(set(state.ids)) == 9

    def test_collision_raises(self):
        positions, chirs = anonymous_ring(12, seed=4)
        with pytest.raises(ConfigurationError, match="collision"):
            # R = 2 guarantees twins for n = 12.
            anonymous_configuration(positions, chirs, seed=0, id_space=2)


class TestRandomizedLocationDiscovery:
    @pytest.mark.parametrize("model", [Model.LAZY, Model.PERCEPTIVE])
    @pytest.mark.parametrize("n", [8, 9])
    def test_whp_success(self, model, n):
        positions, chirs = anonymous_ring(n, seed=n)
        result = randomized_location_discovery(
            positions, chirs, model=model, seed=5
        )
        gaps = result.gaps_by_agent[0]
        assert sum(gaps, Fraction(0)) == 1
        assert len(gaps) == n

    def test_many_seeds_never_collide_at_cubic_space(self):
        """Empirical w.h.p.: 60 independent runs at R = n³ all get
        unique IDs (expected failures ≈ 60/(2n) ... < 4; we tolerate a
        couple but the bound must roughly hold)."""
        n = 10
        positions, chirs = anonymous_ring(n, seed=1)
        failures = 0
        for seed in range(60):
            try:
                anonymous_configuration(positions, chirs, seed=seed)
            except ConfigurationError:
                failures += 1
        assert failures <= 6  # bound: 60 * n²/(2n³) = 3 expected

    def test_reproducible(self):
        positions, chirs = anonymous_ring(8, seed=2)
        a = randomized_location_discovery(positions, chirs, seed=10)
        b = randomized_location_discovery(positions, chirs, seed=10)
        assert a.rounds == b.rounds
        assert a.gaps_by_agent == b.gaps_by_agent
