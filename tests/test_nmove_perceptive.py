"""Tests for NMoveS (Algorithm 4) and selective families."""

import pytest

from repro.combinatorics.selective_families import (
    greedy_selective_family,
    is_selective_family,
    scale_family,
    selects,
)
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.nmove_perceptive import nmove_perceptive
from repro.ring.configs import random_configuration
from repro.types import Model

from tests.test_nontrivial_move import assert_nontrivial


class TestSelectiveFamilies:
    def test_full_universe_selects_singletons(self):
        family = scale_family(8, 1, seed=0)
        assert selects(family, {3})
        assert selects(family, {8})

    @pytest.mark.parametrize("universe,n", [(8, 2), (10, 3), (12, 4)])
    def test_scale_family_selects_random_targets(self, universe, n):
        import itertools
        import random

        family = scale_family(universe, n, seed=1)
        rng = random.Random(0)
        for _ in range(50):
            size = rng.randint(1, n)
            z = set(rng.sample(range(1, universe + 1), size))
            assert selects(family, z), f"family misses {z}"

    def test_greedy_family_verified(self):
        family = greedy_selective_family(8, 3)
        assert is_selective_family(family, 8, 3)

    def test_is_selective_family_detects_failure(self):
        # A single set cannot select both {1} and {1, 2} unless ... it
        # can; use a family that provably misses {1,2}: F = {{1,2}}.
        assert not is_selective_family([{1, 2}], 4, 2)
        assert is_selective_family([{1}, {2}, {3}, {4}], 4, 1)


class TestNMoveS:
    @pytest.mark.parametrize("n", [6, 8, 12, 16, 24])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_even_rings_mixed_chirality(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE)
        nmove_perceptive(sched)
        assert_nontrivial(sched)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_common_chirality_fast_path(self, seed):
        """All-RIGHT with a shared sense is r = 0 -> the machinery runs;
        with mixed senses the first probe often succeeds."""
        state = random_configuration(8, seed=seed, common_sense=True)
        sched = Scheduler(state, Model.PERCEPTIVE)
        stats = nmove_perceptive(sched)
        assert_nontrivial(sched)
        assert stats["levels"] >= 1  # base round was trivial (r = 0)

    def test_first_probe_shortcut(self):
        """If the all-RIGHT round is already nontrivial, cost is O(1)."""
        for seed in range(20):
            state = random_configuration(7, seed=seed, common_sense=False)
            sched = Scheduler(state, Model.PERCEPTIVE)
            stats = nmove_perceptive(sched)
            assert_nontrivial(sched)
            if stats["levels"] == 0:
                assert stats["rounds"] <= 4
                return
        pytest.skip("no seed hit the shortcut; statistically unexpected")

    def test_odd_ring(self):
        state = random_configuration(9, seed=4, common_sense=True)
        sched = Scheduler(state, Model.PERCEPTIVE)
        nmove_perceptive(sched)
        assert_nontrivial(sched)

    def test_requires_perceptive(self):
        state = random_configuration(8, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            nmove_perceptive(sched)

    def test_adversarial_half_split(self):
        """n/2 agents each chirality, the configuration the lower bound
        argument builds on: basic-model protocols need superlinear time,
        NMoveS must still finish."""
        from fractions import Fraction
        from repro.ring.configs import explicit_configuration
        from repro.types import Chirality

        n = 12
        state = explicit_configuration(
            positions=[Fraction(i, n) for i in range(n)],
            ids=list(range(1, n + 1)),
            chiralities=[
                Chirality.CLOCKWISE if i < n // 2 else Chirality.ANTICLOCKWISE
                for i in range(n)
            ],
            id_bound=2 * n,
        )
        sched = Scheduler(state, Model.PERCEPTIVE)
        nmove_perceptive(sched)
        assert_nontrivial(sched)
