"""Native whole-population policies must be bit-exact twins of the
legacy per-agent callback drivers.

Every comparison runs the same configuration twice -- once through the
native driver, once through the legacy callback -- and requires
identical round counts, world positions, full per-agent observation
logs and final protocol memory.  The registry tests cover the complete
``full_stack`` pipelines end to end across all three models and both
kinematics backends; the unit tests pin the individual drivers.
"""

from __future__ import annotations

import pytest

from repro.api.policy import PerAgentPolicy
from repro.api.registry import resolve_driver
from repro.api.session import RingSession
from repro.core.population import MISSING, Population
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model


def _fingerprint(session_or_sched):
    sched = getattr(session_or_sched, "scheduler", session_or_sched)
    return (
        sched.rounds,
        sched.state.snapshot(),
        [list(v.log) for v in sched.views],
        [dict(v.memory) for v in sched.views],
    )


def _session_pair(n, model, seed, backend, common_sense=False):
    make = lambda driver: RingSession(  # noqa: E731
        n=n, model=model, seed=seed, backend=backend,
        common_sense=common_sense, driver=driver,
    )
    return make("native"), make("callback")


def _scheduler_pair(n, model, seed, backend, common_sense=False):
    make = lambda: Scheduler(  # noqa: E731
        random_configuration(n, seed=seed, common_sense=common_sense),
        model,
        backend=backend,
    )
    return make(), make()


BACKENDS = ["lattice", "fraction"]


class TestRegistryEquivalence:
    """Full pipelines through the registry, native vs callback."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("common_sense", [False, True])
    @pytest.mark.parametrize("model", list(Model))
    @pytest.mark.parametrize("n", [7, 8])
    def test_coordination(self, model, n, backend, common_sense):
        native, callback = _session_pair(
            n, model, seed=5, backend=backend, common_sense=common_sense
        )
        result_native = native.run("coordination")
        result_callback = callback.run("coordination")
        assert result_native.to_dict() == result_callback.to_dict()
        assert _fingerprint(native) == _fingerprint(callback)
        assert all(d == "native" for d in native.phase_drivers.values())
        assert all(
            d == "callback" for d in callback.phase_drivers.values()
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "model,n",
        [
            (Model.LAZY, 8),
            (Model.LAZY, 9),
            (Model.BASIC, 9),
            (Model.PERCEPTIVE, 8),
            (Model.PERCEPTIVE, 9),
        ],
    )
    def test_location_discovery(self, model, n, backend):
        native, callback = _session_pair(n, model, seed=3, backend=backend)
        result_native = native.run("location-discovery")
        result_callback = callback.run("location-discovery")
        assert result_native.to_dict() == result_callback.to_dict()
        assert _fingerprint(native) == _fingerprint(callback)

    def test_infeasible_settings_agree(self):
        for driver in ("native", "callback"):
            session = RingSession(
                n=8, model=Model.BASIC, seed=0, driver=driver
            )
            with pytest.raises(InfeasibleProblemError):
                session.run("location-discovery")

    def test_unknown_driver_rejected(self):
        with pytest.raises(ProtocolError, match="unknown driver"):
            RingSession(n=8, driver="vectorised")
        assert resolve_driver(None) == "native"


class TestDriverUnits:
    """Individual native drivers against their legacy twins."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n", [7, 8])
    def test_neighbor_discovery(self, n, backend):
        from repro.protocols import neighbor_discovery as legacy
        from repro.protocols.policies import neighbor_discovery as native

        a, b = _scheduler_pair(n, Model.PERCEPTIVE, 2, backend)
        native.discover_neighbors(a)
        legacy.discover_neighbors(b)
        assert _fingerprint(a) == _fingerprint(b)

    def test_neighbor_discovery_requires_perceptive(self):
        from repro.protocols.policies import neighbor_discovery as native

        sched, _ = _scheduler_pair(8, Model.BASIC, 0, "lattice")
        with pytest.raises(ProtocolError, match="perceptive"):
            native.discover_neighbors(sched)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_relay_flood(self, backend):
        from repro.protocols import bitcomm as legacy
        from repro.protocols import neighbor_discovery as nd_legacy
        from repro.protocols.policies import bitcomm as native

        a, b = _scheduler_pair(9, Model.PERCEPTIVE, 4, backend)
        for sched in (a, b):
            nd_legacy.discover_neighbors(sched)
        # Two sparse sources, three hops, 4-bit values.
        sources = {3: 9, 7: 12}

        def value_of(view):
            return sources.get(view.agent_id)

        native.relay_flood(
            a,
            [sources.get(agent_id) for agent_id in a.population.ids],
            distance=3,
            width=4,
        )
        legacy.relay_flood(b, value_of, distance=3, width=4)
        assert _fingerprint(a) == _fingerprint(b)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exchange_bits_and_frame(self, backend):
        from repro.protocols import bitcomm as legacy
        from repro.protocols import neighbor_discovery as nd_legacy
        from repro.protocols.policies import bitcomm as native

        a, b = _scheduler_pair(8, Model.PERCEPTIVE, 6, backend)
        for sched in (a, b):
            nd_legacy.discover_neighbors(sched)
        native.exchange_bits(a, [i % 2 for i in a.population.ids])
        legacy.exchange_bits(b, lambda view: view.agent_id % 2)
        assert _fingerprint(a) == _fingerprint(b)

        native.exchange_frame(
            a,
            [agent_id if agent_id % 3 else None
             for agent_id in a.population.ids],
            width=5,
        )
        legacy.exchange_frame(
            b,
            lambda view: view.agent_id if view.agent_id % 3 else None,
            width=5,
        )
        assert _fingerprint(a) == _fingerprint(b)

    @pytest.mark.parametrize("model", list(Model))
    def test_emptiness(self, model):
        from repro.protocols import direction_agreement as da_legacy
        from repro.protocols import emptiness as legacy
        from repro.protocols.policies import emptiness as native

        for n in (7, 8):
            a, b = _scheduler_pair(n, model, 1, "lattice",
                                   common_sense=True)
            for sched in (a, b):
                da_legacy.assume_common_frame(sched)
            for candidates in (range(1, 5), range(50, 60)):
                verdict_native = native.emptiness_test(a, candidates)
                verdict_legacy = legacy.emptiness_test(b, candidates)
                assert verdict_native == verdict_legacy
            assert _fingerprint(a) == _fingerprint(b)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rotation_probe_classify(self, backend):
        from repro.protocols import rotation_probe as legacy
        from repro.protocols.policies import rotation_probe as native

        a, b = _scheduler_pair(9, Model.BASIC, 7, backend)
        members = {1, 4, 9, 13}
        vector = native.membership_vector(a.population.ids, members)
        native.classify_rotation(a, vector, restore=True)
        legacy.classify_rotation(
            b, legacy.membership_choice(members), restore=True
        )
        assert _fingerprint(a) == _fingerprint(b)

        assert native.ri_is_zero(a, members) == legacy.ri_is_zero(
            b, members
        )
        assert _fingerprint(a) == _fingerprint(b)

    def test_broadcast(self):
        from repro.protocols import direction_agreement as da_legacy
        from repro.protocols import global_broadcast as legacy
        from repro.protocols.policies import global_broadcast as native

        a, b = _scheduler_pair(8, Model.LAZY, 9, "lattice",
                               common_sense=True)
        for sched in (a, b):
            da_legacy.assume_common_frame(sched)
        announcer = a.population.ids[2]
        native.broadcast_value(
            a,
            announcers=[i == 2 for i in range(a.population.n)],
            values=[17 if i == 2 else None for i in range(a.population.n)],
        )
        legacy.broadcast_value(
            b,
            is_announcer=lambda view: view.agent_id == announcer,
            value_of=lambda view: 17,
        )
        assert _fingerprint(a) == _fingerprint(b)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nmove_seeded_family(self, backend):
        from repro.protocols import nontrivial_move as legacy
        from repro.protocols.policies import nontrivial_move as native

        a, b = _scheduler_pair(8, Model.BASIC, 11, backend)
        probes_native = native.nmove_seeded_family(a)
        probes_legacy = legacy.nmove_seeded_family(b)
        assert probes_native == probes_legacy
        assert _fingerprint(a) == _fingerprint(b)

    def test_nmove_perceptive_full_path(self):
        """A symmetric ring forces the full NMoveS machinery (neighbor
        discovery, floods, family probes) in both drivers."""
        from repro.protocols import nmove_perceptive as legacy
        from repro.protocols.policies import nmove_perceptive as native

        a, b = _scheduler_pair(8, Model.PERCEPTIVE, 3, "lattice")
        stats_native = native.nmove_perceptive(a)
        stats_legacy = legacy.nmove_perceptive(b)
        assert stats_native == stats_legacy
        assert _fingerprint(a) == _fingerprint(b)


class TestNoPerAgentDispatch:
    """The acceptance gate: a native full_stack run makes zero per-agent
    ChoiceFn calls."""

    def _profiled_run(self, monkeypatch, driver):
        per_agent_calls = []
        original = PerAgentPolicy.decide

        def counting(self, views):
            per_agent_calls.append(len(views))
            return original(self, views)

        monkeypatch.setattr(PerAgentPolicy, "decide", counting)
        original_decide = Scheduler._decide

        def spying(self, choose):
            if getattr(choose, "decide", None) is None:
                per_agent_calls.append(len(self.views))
            return original_decide(self, choose)

        monkeypatch.setattr(Scheduler, "_decide", spying)
        session = RingSession(
            n=8, model=Model.PERCEPTIVE, seed=2024, driver=driver
        )
        session.run("location-discovery")
        return per_agent_calls

    def test_native_full_stack_has_zero_choicefn_calls(self, monkeypatch):
        assert self._profiled_run(monkeypatch, "native") == []

    def test_callback_full_stack_still_dispatches(self, monkeypatch):
        assert self._profiled_run(monkeypatch, "callback") != []


class TestPopulationStore:
    """The columnar store and its per-slot mapping adapter."""

    def _population(self):
        return Population(3, ids=[4, 9, 2], id_bound=12, parity_even=False)

    def test_slot_adapter_is_dict_compatible(self):
        pop = self._population()
        slot0, slot1 = pop.slot(0), pop.slot(1)
        slot0["k"] = 1
        assert "k" in slot0 and "k" not in slot1
        assert slot0.get("k") == 1 and slot1.get("k") is None
        assert dict(slot0) == {"k": 1} and dict(slot1) == {}
        assert slot0 == {"k": 1}
        assert slot0.pop("k") == 1
        assert "k" not in slot0
        with pytest.raises(KeyError):
            slot0["k"]
        assert slot0.setdefault("j", 7) == 7
        assert pop.column("j")[0] == 7
        assert len(slot0) == 1 and list(slot0) == ["j"]

    def test_columns_and_slots_share_storage(self):
        pop = self._population()
        column = pop.fill("x", 0)
        column[1] = 5
        assert pop.slot(1)["x"] == 5
        pop.slot(2)["x"] = 9
        assert column[2] == 9
        assert pop.all_set("x")
        del pop.slot(0)["x"]
        assert not pop.all_set("x")
        assert pop.first_unset("x") == 0
        assert column[0] is MISSING

    def test_column_validation(self):
        pop = self._population()
        with pytest.raises(ValueError):
            pop.set_column("x", [1, 2])
        with pytest.raises(KeyError):
            pop.column("absent")
        assert pop.get_column("absent") is None
        assert not pop.has_column("absent")
        fresh = pop.fill_with("lists", list)
        fresh[0].append(1)
        assert pop.slot(0)["lists"] == [1] and pop.slot(1)["lists"] == []

    def test_scheduler_wires_views_to_population(self):
        state = random_configuration(6, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        sched.views[3].memory["probe"] = "x"
        assert sched.population.column("probe")[3] == "x"
        assert sched.population.ids == [v.agent_id for v in sched.views]
        outcome = sched.run_fixed(LocalDirection.RIGHT, 2)
        assert sched.population.last_obs == outcome.observations
