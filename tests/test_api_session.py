"""RingSession / registry tests, and the solve_* deprecation shims."""

from __future__ import annotations

import pytest

from repro import (
    InfeasibleProblemError,
    Model,
    RingSession,
    get_protocol,
    list_protocols,
    random_configuration,
    solve_coordination,
    solve_location_discovery,
)
from repro.exceptions import ConfigurationError, ProtocolError


class TestRegistry:
    def test_listing(self):
        names = [spec.name for spec in list_protocols()]
        assert names == sorted(names)
        assert "coordination" in names
        assert "location-discovery" in names
        for spec in list_protocols():
            assert spec.description

    def test_unknown_protocol(self):
        with pytest.raises(ProtocolError, match="registered:"):
            get_protocol("frisbee")

    @pytest.mark.parametrize("model", list(Model))
    @pytest.mark.parametrize("n", [7, 8])
    def test_plan_names_match_execution(self, model, n):
        session = RingSession(n=n, model=model, seed=1)
        if model is Model.BASIC and n % 2 == 0:
            with pytest.raises(InfeasibleProblemError):
                session.plan("location-discovery")
            return
        planned = [p.name for p in session.plan("location-discovery")]
        result = session.run("location-discovery")
        assert list(result.rounds_by_phase) == planned


class TestRingSession:
    def test_builder_needs_some_source(self):
        with pytest.raises(ConfigurationError):
            RingSession()

    def test_builder_rejects_contradictory_n(self):
        state = random_configuration(8, seed=0)
        with pytest.raises(ConfigurationError):
            RingSession(n=9, state=state)

    def test_scheduler_rejects_contradictory_overrides(self):
        from repro.core.scheduler import Scheduler

        state = random_configuration(8, seed=0)
        sched = Scheduler(state, Model.LAZY)
        with pytest.raises(ConfigurationError, match="backend"):
            RingSession(scheduler=sched, backend="fraction")
        with pytest.raises(ConfigurationError, match="model"):
            RingSession(scheduler=sched, model=Model.PERCEPTIVE)
        with pytest.raises(ConfigurationError, match="seed"):
            RingSession(scheduler=sched, seed=3)
        # common_sense is plan-time information, not scheduler state.
        RingSession(scheduler=sched, common_sense=True)

    def test_state_rejects_generator_arguments(self):
        state = random_configuration(8, seed=0)
        with pytest.raises(ConfigurationError, match="seed"):
            RingSession(state=state, seed=7)
        with pytest.raises(ConfigurationError, match="config"):
            RingSession(state=state, config="clustered")
        with pytest.raises(ConfigurationError, match="id_bound"):
            RingSession(state=state, id_bound=64)

    def test_builder_unknown_config(self):
        with pytest.raises(ConfigurationError, match="clustered"):
            RingSession(n=8, config="spiral")

    def test_named_configs(self):
        for config in ("random", "jittered", "clustered"):
            session = RingSession(n=8, seed=3, config=config)
            assert session.state.n == 8

    def test_from_state_and_passthroughs(self):
        state = random_configuration(8, seed=5, common_sense=False)
        session = RingSession.from_state(
            state, model=Model.PERCEPTIVE, backend="fraction"
        )
        assert session.state is state
        assert session.model is Model.PERCEPTIVE
        assert session.backend_name == "fraction"
        assert session.rounds == 0
        assert len(session.views) == 8

    def test_step_resume_matches_one_shot(self):
        one_shot = RingSession(n=8, model="perceptive", seed=9)
        expected = one_shot.run("location-discovery")

        stepped = RingSession(n=8, model="perceptive", seed=9)
        phases = stepped.start("location-discovery")
        name, rounds = stepped.step()
        assert name == phases[0].name
        assert rounds == expected.rounds_by_phase[name]
        assert [p.name for p in stepped.pending_phases] == [
            p.name for p in phases[1:]
        ]
        result = stepped.resume()
        assert result == expected

    def test_step_without_start(self):
        session = RingSession(n=8, seed=0)
        with pytest.raises(ProtocolError):
            session.step()
        with pytest.raises(ProtocolError):
            session.resume()

    def test_model_accepts_strings(self):
        session = RingSession(n=7, model="lazy", seed=0)
        assert session.model is Model.LAZY

    def test_common_sense_builder_threads_into_plan(self):
        session = RingSession(n=8, model="lazy", seed=2, common_sense=True)
        result = session.run("coordination")
        assert result.leader_id == min(session.state.ids)
        assert result.rounds_by_phase["direction_agreement"] == 0


class TestDeprecatedShims:
    @pytest.mark.parametrize("model", list(Model))
    def test_solve_coordination_warns_and_matches(self, model):
        state_new = random_configuration(8, seed=4, common_sense=False)
        state_old = random_configuration(8, seed=4, common_sense=False)
        expected = RingSession.from_state(state_new, model=model).run(
            "coordination"
        )
        with pytest.warns(DeprecationWarning, match="RingSession"):
            legacy = solve_coordination(state_old, model)
        assert legacy == expected

    @pytest.mark.parametrize("model,n", [
        (Model.BASIC, 9), (Model.LAZY, 8), (Model.PERCEPTIVE, 8),
    ])
    def test_solve_location_discovery_warns_and_matches(self, model, n):
        state_new = random_configuration(n, seed=6, common_sense=False)
        state_old = random_configuration(n, seed=6, common_sense=False)
        expected = RingSession.from_state(state_new, model=model).run(
            "location-discovery"
        )
        with pytest.warns(DeprecationWarning, match="RingSession"):
            legacy = solve_location_discovery(state_old, model)
        assert legacy == expected

    def test_shim_infeasible_before_any_round(self):
        state = random_configuration(8, seed=0, common_sense=False)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(InfeasibleProblemError):
                solve_location_discovery(state, Model.BASIC)

    def test_shim_scheduler_reuse_still_works(self):
        from repro.core.scheduler import Scheduler

        state = random_configuration(9, seed=5, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        with pytest.warns(DeprecationWarning):
            result = solve_coordination(state, Model.LAZY, scheduler=sched)
        assert result.rounds == sched.rounds > 0


class TestResultSerialisation:
    def test_location_discovery_to_dict(self):
        result = RingSession(n=8, model="perceptive", seed=1).run(
            "location-discovery"
        )
        payload = result.to_dict()
        assert payload["kind"] == "location_discovery"
        assert payload["rounds"] == result.rounds
        assert payload["rounds_by_phase"] == result.rounds_by_phase
        assert len(payload["gaps_by_agent"]) == 8
        assert all(
            isinstance(g, str)
            for gaps in payload["gaps_by_agent"] for g in gaps
        )
        import json

        json.dumps(payload)  # must be JSON-clean

    def test_coordination_to_dict(self):
        result = RingSession(n=7, model="basic", seed=1).run("coordination")
        payload = result.to_dict()
        assert payload["kind"] == "coordination"
        assert payload["leader_id"] == result.leader_id
        import json

        json.dumps(payload)

    def test_experiment_row_to_dict(self):
        from fractions import Fraction
        import json

        from repro.experiments.harness import ExperimentRow

        row = ExperimentRow(
            label="x",
            params={"n": 8},
            measured={"gap": Fraction(1, 3), "seq": [Fraction(1, 2), 1]},
            reference={"bound": 2.5},
        )
        payload = row.to_dict()
        assert payload["measured"]["gap"] == "1/3"
        assert payload["measured"]["seq"] == ["1/2", 1]
        json.dumps(payload)
