"""The invariant linter: every rule fires on its fixture, the pragma
machinery behaves, the JSON document round-trips as a baseline, and --
the point of the exercise -- the real tree lints clean (tier-1)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_CONFIG,
    LintConfig,
    SCHEMA,
    baseline_keys,
    lint_package,
    lint_source,
    new_findings,
    rule_catalogue,
)
from repro.lint import cli

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"


def lint_fixture(name, virtual_path, config=DEFAULT_CONFIG, rules=None):
    source = (FIXTURES / name).read_text()
    return lint_source(source, virtual_path, config=config, rules=rules)


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


# ---------------------------------------------------------------------------
# each rule fires on its fixture (and only inside its scope)
# ---------------------------------------------------------------------------


class TestFractionHotPath:
    CONFIG = LintConfig(
        fraction_boundary={
            "protocols/policies/fixture.py": frozenset({"boundary"})
        }
    )

    def test_fires_outside_whitelist(self):
        result = lint_fixture(
            "fraction_hot.py", "protocols/policies/fixture.py",
            config=self.CONFIG,
        )
        assert rules_fired(result) == ["fraction-hot-path"]
        # Both constructor calls in hot_loop, nothing else.
        assert len(result.findings) == 2
        assert all("hot_loop" in f.message for f in result.findings)

    def test_whitelisted_boundary_is_clean(self):
        result = lint_fixture(
            "fraction_hot.py", "protocols/policies/fixture.py",
            config=self.CONFIG,
        )
        assert not any(
            " in boundary of " in f.message for f in result.findings
        )

    def test_annotations_do_not_count(self):
        result = lint_fixture(
            "fraction_hot.py", "protocols/policies/fixture.py",
            config=self.CONFIG,
        )
        assert not any("annotated_only" in f.message for f in result.findings)

    def test_cold_module_not_in_scope(self):
        result = lint_fixture("fraction_hot.py", "experiments/fixture.py")
        assert result.ok


class TestPerAgentLoop:
    def test_fires_in_decision_scopes(self):
        result = lint_fixture(
            "per_agent_loop.py", "protocols/policies/fixture.py"
        )
        assert rules_fired(result) == ["per-agent-loop"]
        scopes = sorted(f.message.split(" ")[0] for f in result.findings)
        assert scopes == [
            "ScalarPolicy.decide",
            "ScalarPolicy.finalize",
            "make_predicate.stop",
        ]

    def test_plain_helpers_are_clean(self):
        result = lint_fixture(
            "per_agent_loop.py", "protocols/policies/fixture.py"
        )
        assert not any("legal_helper" in f.message for f in result.findings)

    def test_non_policy_module_not_in_scope(self):
        result = lint_fixture("per_agent_loop.py", "experiments/fixture.py")
        assert result.ok


class TestFloatTaint:
    def test_fires_on_all_three_shapes(self):
        result = lint_fixture("float_taint.py", "ring/fixture.py")
        assert rules_fired(result) == ["float-taint"]
        assert len(result.findings) == 3
        messages = " | ".join(f.message for f in result.findings)
        assert "literal" in messages
        assert "float()" in messages
        assert "division" in messages

    def test_fraction_division_is_clean(self):
        result = lint_fixture("float_taint.py", "ring/fixture.py")
        exact_lines = [f for f in result.findings if f.line > 20]
        assert exact_lines == []

    def test_outside_ring_not_in_scope(self):
        result = lint_fixture("float_taint.py", "analysis/fixture.py")
        assert result.ok


class TestNondeterminism:
    def test_fires_everywhere(self):
        result = lint_fixture("nondet.py", "experiments/fixture.py")
        assert rules_fired(result) == ["nondeterminism"]
        messages = " | ".join(f.message for f in result.findings)
        assert "time.time" in messages
        assert "random.randint" in messages
        assert "Random() without a seed" in messages
        assert messages.count("id(...)") == 2

    def test_seeded_random_is_clean(self):
        result = lint_fixture("nondet.py", "experiments/fixture.py")
        seeded_line = (FIXTURES / "nondet.py").read_text().splitlines()
        line_no = seeded_line.index("    return random.Random(seed)") + 1
        assert not any(f.line == line_no for f in result.findings)


class TestFaultsScope:
    """The fault layer is inside the lint net: global randomness in a
    ``faults/`` module is a finding (its whole point is *seeded*
    adversaries), and the package is a Fraction-free hot path."""

    def test_nondeterminism_fires_under_faults(self):
        result = lint_fixture("nondet.py", "faults/fixture.py")
        assert "nondeterminism" in rules_fired(result)
        messages = " | ".join(f.message for f in result.findings)
        assert "random.randint" in messages
        assert "Random() without a seed" in messages

    def test_faults_modules_are_hot(self):
        assert DEFAULT_CONFIG.is_hot("faults/plan.py")
        assert DEFAULT_CONFIG.is_hot("faults/inject.py")
        assert DEFAULT_CONFIG.is_hot("faults/channels.py")
        result = lint_fixture("fraction_hot.py", "faults/fixture.py")
        assert "fraction-hot-path" in rules_fired(result)


class TestNumpyGate:
    def test_fires_on_module_and_function_imports(self):
        result = lint_fixture("numpy_direct.py", "experiments/fixture.py")
        assert rules_fired(result) == ["numpy-gate"]
        assert len(result.findings) == 2

    def test_gate_module_itself_is_exempt(self):
        result = lint_fixture("numpy_direct.py", "ring/arrayops.py")
        assert "numpy-gate" not in rules_fired(result)


class TestSpeculativeContract:
    def test_fires_on_mutating_predicates(self):
        result = lint_fixture(
            "speculative_bad.py", "protocols/policies/fixture.py"
        )
        assert rules_fired(result) == ["speculative-contract"]
        messages = " | ".join(f.message for f in result.findings)
        assert "stores through state" in messages
        assert "stores through result" in messages
        assert "sched.push_round" in messages
        assert "state.append" in messages  # the lambda predicate

    def test_closure_accumulation_is_clean(self):
        result = lint_fixture(
            "speculative_bad.py", "protocols/policies/fixture.py"
        )
        assert not any("totals" in f.message for f in result.findings)


# ---------------------------------------------------------------------------
# pragma machinery
# ---------------------------------------------------------------------------


class TestPragmas:
    @pytest.fixture(scope="class")
    def result(self):
        return lint_fixture("pragma_cases.py", "experiments/fixture.py")

    def test_trailing_and_own_line_pragmas_suppress(self, result):
        assert len(result.suppressed) == 2
        assert all(
            s.rule == "nondeterminism" and s.reason.startswith("fixture:")
            for s in result.suppressed
        )

    def test_wrong_line_pragma_does_not_suppress(self, result):
        # The finding stays active AND the pragma is flagged unused.
        unused = [f for f in result.findings if f.rule == "pragma-unused"]
        assert len(unused) == 1
        source = (FIXTURES / "pragma_cases.py").read_text().splitlines()
        assert "too far from the finding" in source[unused[0].line - 1]

    def test_pragma_without_reason_is_a_finding(self, result):
        problems = [f for f in result.findings if f.rule == "pragma"]
        assert any("justification" in f.message for f in problems)

    def test_unknown_rule_pragma_is_a_finding(self, result):
        problems = [f for f in result.findings if f.rule == "pragma"]
        assert any("no-such-rule" in f.message for f in problems)

    def test_broken_pragmas_do_not_suppress(self, result):
        # wrong_line, no_reason and unknown_rule all leave their
        # nondeterminism finding active.
        active = [f for f in result.findings if f.rule == "nondeterminism"]
        assert len(active) == 3

    def test_rule_filter_does_not_flag_other_rules_pragmas(self):
        result = lint_fixture(
            "pragma_cases.py", "experiments/fixture.py",
            rules=["numpy-gate"],
        )
        assert not any(
            f.rule == "pragma-unused" for f in result.findings
        )


# ---------------------------------------------------------------------------
# findings document / baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_document_schema(self):
        result = lint_fixture("nondet.py", "experiments/fixture.py")
        document = result.to_document()
        assert document["schema"] == SCHEMA
        assert document["summary"]["errors"] == len(result.findings)
        assert document["summary"]["suppressed"] == len(result.suppressed)
        assert set(document["rules"]) >= set(rules_fired(result))

    def test_round_trips_through_json(self):
        result = lint_fixture("nondet.py", "experiments/fixture.py")
        document = json.loads(json.dumps(result.to_document()))
        assert new_findings(result.findings, document) == []

    def test_new_finding_not_masked(self):
        old = lint_fixture("numpy_direct.py", "experiments/fixture.py")
        new = lint_fixture("nondet.py", "experiments/fixture.py")
        fresh = new_findings(new.findings, old.to_document())
        assert fresh == new.findings

    def test_baseline_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            baseline_keys({"schema": "something/else", "findings": []})


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_fixture_paths_fail_then_baseline_passes(
        self, tmp_path, capsys
    ):
        fixture = str(FIXTURES / "nondet.py")
        code = cli.main([fixture, "--json"])
        out = capsys.readouterr().out
        assert code == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(out)
        assert json.loads(out)["schema"] == SCHEMA

        code = cli.main([fixture, "--baseline", str(baseline)])
        assert code == 0

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert cli.main(["--rule", "bogus"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "fraction-hot-path", "per-agent-loop", "float-taint",
            "nondeterminism", "numpy-gate", "speculative-contract",
            "pragma", "pragma-unused",
        ):
            assert rule in out

    def test_module_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout


# ---------------------------------------------------------------------------
# the real tree lints clean
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_package_has_zero_findings(self):
        result = lint_package()
        assert result.findings == [], result.render()

    def test_every_suppression_carries_a_reason(self):
        result = lint_package()
        assert result.suppressed, "expected documented exemptions"
        for finding in result.suppressed:
            assert finding.reason and len(finding.reason) > 10
