"""Replay the committed regression corpus, entry by entry.

Every JSON file under ``tests/regression_corpus/`` is a fault scenario
the fuzzer (or a human, via ``tools/record_regression.py``) once found
interesting enough to pin: the file records the scenario's spec and
the classification it produced at recording time.  This suite re-runs
each scenario from scratch -- the faulted execution *and* its
fault-free twin -- and asserts the pinned outcome, error type and
result payload.  Everything involved is deterministic, so a failure
here is a genuine behaviour change, never flake.

The corpus is also the living spec of the graceful-degradation
contract: between them the committed entries must exercise every
registered protocol and all three trichotomy outcomes.
"""

import os

import pytest

from repro.api.registry import list_protocols
from repro.faults.corpus import (
    DEFAULT_CORPUS_DIR,
    ENTRY_SCHEMA,
    entry_name,
    load_corpus,
    replay_entry,
)
from repro.faults.report import OUTCOMES

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "regression_corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    """The committed corpus holds at least the ten scenarios the fault
    layer shipped with; an empty corpus means replay covers nothing."""
    assert len(ENTRIES) >= 10


def test_corpus_covers_every_protocol_and_outcome():
    protocols = {entry["scenario"]["protocol"] for _, entry in ENTRIES}
    outcomes = {entry["expect"]["outcome"] for _, entry in ENTRIES}
    assert protocols >= {spec.name for spec in list_protocols()}
    assert outcomes == set(OUTCOMES)


@pytest.mark.parametrize(
    "path,entry",
    ENTRIES,
    ids=[os.path.basename(path) for path, _ in ENTRIES],
)
def test_replay(path, entry):
    assert entry["schema"] == ENTRY_SCHEMA
    assert entry["expect"]["outcome"] in OUTCOMES
    # Filenames are content-addressed by scenario: a hand-edited spec
    # inside an entry would silently shadow the name's promise.
    assert os.path.basename(path) == entry_name(entry)
    replay_entry(entry)


def test_default_corpus_dir_matches_this_suite():
    """The library's default recording target is the directory this
    suite replays -- a fuzzer find lands where tier-1 will see it."""
    assert DEFAULT_CORPUS_DIR == os.path.join("tests", "regression_corpus")
