"""The scoped strict-typing gate (mirrors CI's typecheck job).

mypy is not a runtime dependency -- the test skips when it is absent
(the container image does not ship it; CI installs it).
"""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SCOPED_FILES = (
    "src/repro/ring/stretch.py",
    "src/repro/api/policy.py",
)


def test_scoped_modules_are_strict_clean():
    api = pytest.importorskip("mypy.api")
    stdout, stderr, status = api.run(
        ["--config-file", str(ROOT / "mypy.ini")]
        + [str(ROOT / f) for f in SCOPED_FILES]
    )
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"


def test_config_scopes_the_strict_gate():
    # The config must keep naming exactly the audited modules: widening
    # the gate is a deliberate act, not a drive-by.
    config = (ROOT / "mypy.ini").read_text()
    for f in SCOPED_FILES:
        assert f in config
    assert "strict = True" in config
