"""Direct tests for the Lemma 2 rotation probes.

These primitives are the sensor every protocol is built on: r = 0
detection from a single round, and the ZERO / HALF / BELOW / ABOVE
classification from running a round twice.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.scheduler import Scheduler
from repro.protocols.rotation_probe import (
    KEY_PROBE_CLASS,
    KEY_PROBE_ZERO,
    RotationClass,
    classify_rotation,
    membership_choice,
    probe_zero,
    probed_class,
    ri_is_zero,
)
from repro.ring.configs import explicit_configuration, random_configuration
from repro.types import Chirality, LocalDirection, Model

F = Fraction


def objective_ring(n, cw_count, id_bound=None):
    """Common-chirality ring where a choice fn can set exact rotations."""
    return explicit_configuration(
        positions=[F(2 * i + (i % 2), 2 * n) for i in range(n)],
        ids=list(range(1, n + 1)),
        chiralities=[Chirality.CLOCKWISE] * n,
        id_bound=id_bound or 2 * n,
    )


def split_choice(cw_ids):
    def choose(view):
        return (
            LocalDirection.RIGHT
            if view.agent_id in cw_ids
            else LocalDirection.LEFT
        )

    return choose


class TestProbeZero:
    def test_zero_rotation_detected(self):
        n = 8
        sched = Scheduler(objective_ring(n, 0), Model.BASIC)
        # 4 right vs 4 left: r = 0.
        assert probe_zero(sched, split_choice({1, 2, 3, 4})) is True
        assert all(v.memory[KEY_PROBE_ZERO] for v in sched.views)

    def test_nonzero_rotation_detected(self):
        n = 8
        sched = Scheduler(objective_ring(n, 0), Model.BASIC)
        assert probe_zero(sched, split_choice({1, 2, 3})) is False

    def test_restore_flag(self):
        n = 6
        sched = Scheduler(objective_ring(n, 0), Model.BASIC)
        start = sched.state.snapshot()
        probe_zero(sched, split_choice({1}), restore=True)
        assert sched.state.snapshot() == start
        assert sched.rounds == 2
        probe_zero(sched, split_choice({1}), restore=False)
        assert sched.state.snapshot() != start
        assert sched.rounds == 3

    def test_half_rotation_reads_as_nonzero(self):
        """probe_zero only separates r = 0; r = n/2 must read nonzero
        (the reason classify_rotation exists)."""
        n = 8
        sched = Scheduler(objective_ring(n, 0), Model.BASIC)
        # 6 right vs 2 left: r = 4 = n/2.
        assert probe_zero(sched, split_choice({1, 2, 3, 4, 5, 6})) is False


class TestClassifyRotation:
    @pytest.mark.parametrize("cw_ids,expected", [
        ({1, 2, 3, 4}, RotationClass.ZERO),            # r = 0
        ({1, 2, 3, 4, 5, 6}, RotationClass.HALF),      # r = 4 = n/2
        ({1, 2, 3, 4, 5}, RotationClass.BELOW_HALF),   # r = 2
        ({1, 2, 3}, RotationClass.ABOVE_HALF),         # r = -2 = 6
    ])
    def test_all_classes(self, cw_ids, expected):
        n = 8
        sched = Scheduler(objective_ring(n, 0), Model.BASIC)
        classify_rotation(sched, split_choice(cw_ids))
        for view in sched.views:
            assert probed_class(view) is expected

    def test_positions_restored(self):
        sched = Scheduler(objective_ring(8, 0), Model.BASIC)
        start = sched.state.snapshot()
        classify_rotation(sched, split_choice({1, 2, 3}))
        assert sched.state.snapshot() == start
        assert sched.rounds == 4

    def test_triviality_is_consensus_even_with_mixed_frames(self):
        """BELOW/ABOVE verdicts are frame-relative, but .trivial must
        agree across agents with arbitrary chirality."""
        state = random_configuration(9, seed=13, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        classify_rotation(sched, lambda view: LocalDirection.RIGHT)
        trivial = {probed_class(v).trivial for v in sched.views}
        assert len(trivial) == 1

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=5, max_value=11),
           st.integers(min_value=0, max_value=3_000))
    def test_verdict_matches_true_rotation(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        outcome_holder = {}

        def choose(view):
            return (
                LocalDirection.RIGHT
                if view.agent_id % 2 == 0
                else LocalDirection.LEFT
            )

        # Omnisciently compute the true rotation from a dry run.
        from repro.ring.kinematics import rotation_index
        from repro.types import local_to_velocity

        velocities = [
            local_to_velocity(choose(view), state.chiralities[i])
            for i, view in enumerate(sched.views)
        ]
        r = rotation_index(velocities, n)
        classify_rotation(sched, choose)
        verdicts = {probed_class(v) for v in sched.views}
        if r == 0:
            assert verdicts == {RotationClass.ZERO}
        elif 2 * r == n:
            assert verdicts == {RotationClass.HALF}
        else:
            assert verdicts <= {
                RotationClass.BELOW_HALF, RotationClass.ABOVE_HALF
            }
        del outcome_holder


class TestRiProbe:
    def test_ri_zero_cases(self):
        n = 6
        sched = Scheduler(objective_ring(n, 0), Model.BASIC)
        # RI(B) = 2|B| mod n: |B| = 3 = n/2 -> 0; |B| = 2 -> 4 != 0.
        assert ri_is_zero(sched, {1, 2, 3}) is True
        assert ri_is_zero(sched, {1, 2}) is False
        assert ri_is_zero(sched, set()) is True

    def test_membership_choice_directions(self):
        choose = membership_choice({7}, member_dir=LocalDirection.LEFT)
        from repro.core.agent import AgentView

        member = AgentView(7, 16, True, Model.BASIC)
        other = AgentView(3, 16, True, Model.BASIC)
        assert choose(member) is LocalDirection.LEFT
        assert choose(other) is LocalDirection.RIGHT
