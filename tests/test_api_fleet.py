"""Fleet tests: determinism across executors and worker counts, report
schema, and the sweep spec builder."""

from __future__ import annotations

import json

import pytest

from repro.api.fleet import (
    Fleet,
    RunReport,
    SessionSpec,
    run_session_spec,
    sweep,
)
from repro.exceptions import ConfigurationError
from repro.types import Model

SPECS = sweep(
    protocol="location-discovery",
    sizes=(7, 8),
    seeds=(0, 1),
    models=("perceptive",),
    backends=("lattice",),
)


class TestSessionSpec:
    def test_round_trip(self):
        spec = SessionSpec(n=8, seed=3, model="lazy", backend="fraction")
        assert SessionSpec.from_dict(spec.to_dict()) == spec
        json.dumps(spec.to_dict())

    def test_run_session_spec_row_shape(self):
        row = run_session_spec(SessionSpec(n=7, model="basic", seed=0))
        assert set(row) == {"spec", "result", "seconds"}
        assert row["spec"]["n"] == 7
        assert row["result"]["kind"] == "location_discovery"
        json.dumps(row)


class TestSweepBuilder:
    def test_cartesian_product(self):
        specs = sweep(
            sizes=(8, 16), seeds=(0, 1, 2),
            models=(Model.LAZY, "perceptive"), backends=("lattice",),
        )
        assert len(specs) == 2 * 3 * 2
        # sizes-major ordering keeps reports diffable
        assert [s.n for s in specs[:6]] == [8] * 6
        assert {s.model for s in specs} == {"lazy", "perceptive"}

    def test_model_enum_coerced_to_value(self):
        (spec,) = sweep(sizes=(8,), models=(Model.PERCEPTIVE,))
        assert spec.model == "perceptive"


class TestFleetDeterminism:
    def test_identical_across_executors_and_workers(self):
        serial = Fleet(SPECS, executor="serial").run()
        threads = Fleet(SPECS, workers=3, executor="thread").run()
        procs = Fleet(SPECS, workers=2, executor="process").run()
        assert serial.payloads() == threads.payloads() == procs.payloads()
        # order always follows the spec list
        assert [row["spec"] for row in serial.results] == [
            s.to_dict() for s in SPECS
        ]

    def test_single_worker_pool_equals_serial(self):
        specs = SPECS[:2]
        serial = Fleet(specs, executor="serial").run()
        one = Fleet(specs, workers=1, executor="process").run()
        assert serial.payloads() == one.payloads()


class TestRunReport:
    def test_schema(self):
        report = Fleet(SPECS[:2], executor="serial").run()
        payload = report.to_dict()
        base = {
            "schema", "executor", "workers", "seconds_total", "cpu_count",
            "python", "results",
        }
        # "cache" appears exactly when the fleet ran with caching on
        # (e.g. the REPRO_CACHE CI axis); nothing else may.
        assert base <= set(payload) <= base | {"cache"}
        assert ("cache" in payload) == (report.cache is not None)
        assert payload["schema"] == 1
        assert payload["executor"] == "serial"
        assert payload["workers"] == 1
        assert len(payload["results"]) == 2
        reread = json.loads(report.to_json())
        assert reread == payload

    def test_uncached_payload_shape_unchanged(self):
        # cache=False pins the historic key set even under REPRO_CACHE.
        report = Fleet(SPECS[:2], executor="serial", cache=False).run()
        assert set(report.to_dict()) == {
            "schema", "executor", "workers", "seconds_total", "cpu_count",
            "python", "results",
        }

    def test_canonical_json_round_trips_byte_identical(self):
        # The run store keys and stores these payloads by their
        # canonical serialisation; a payload that did not survive a
        # JSON round trip byte-for-byte could never be fetched
        # bit-identically.
        from repro.store.keys import canonical_json

        report = Fleet(SPECS[:2], executor="serial", cache=False).run()
        text = canonical_json({"results": report.payloads()})
        assert canonical_json(json.loads(text)) == text
        rerun = Fleet(SPECS[:2], executor="serial", cache=False).run()
        assert canonical_json({"results": rerun.payloads()}) == text

    def test_payloads_strip_timings(self):
        report = RunReport(results=[
            {"spec": {"n": 7}, "result": {"rounds": 3}, "seconds": 0.5},
        ])
        assert report.payloads() == [
            {"spec": {"n": 7}, "result": {"rounds": 3}},
        ]


class TestFleetValidation:
    def test_unknown_executor(self):
        with pytest.raises(ConfigurationError):
            Fleet(SPECS, executor="quantum")

    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            Fleet(SPECS, workers=0)
