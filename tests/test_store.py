"""RunStore tests: the two tiers, atomic writes, and the rule that
every read anomaly is a miss -- corrupt, truncated, version-skewed or
misfiled entries degrade to recompute, never to an error."""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.store.store import STORE_SCHEMA, RunStore, default_cache_dir

DIGEST = "ab" + "cd" * 31  # 64 hex chars, deterministic shard prefix
RESULT = {"kind": "coordination", "rounds": 5, "leader_id": 1,
          "rounds_by_phase": {"leader_election": 5}}


def make_store(tmp_path, **kwargs) -> RunStore:
    return RunStore(tmp_path / "cache", **kwargs)


def put_one(store: RunStore, digest: str = DIGEST, result=None) -> bool:
    return store.put(
        digest,
        dict(RESULT) if result is None else result,
        key={"n": 7},
        spec={"n": 7, "protocol": "coordination"},
        backend="lattice",
    )


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"


class TestTwoTiers:
    def test_put_then_get_roundtrips(self, tmp_path):
        store = make_store(tmp_path)
        assert put_one(store) is True
        envelope = store.get(DIGEST)
        assert envelope["result"] == RESULT
        assert envelope["digest"] == DIGEST
        assert envelope["store_schema"] == STORE_SCHEMA
        assert envelope["backend"] == "lattice"

    def test_disk_survives_new_store_instance(self, tmp_path):
        put_one(make_store(tmp_path))
        fresh = make_store(tmp_path)
        assert fresh.get(DIGEST)["result"] == RESULT
        # served from disk: promoted into the fresh memory tier
        assert len(fresh._memory) == 1

    def test_entry_layout_sharded_by_prefix(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        path = store.entry_path(DIGEST)
        assert path.is_file()
        assert path.parent.name == DIGEST[:2]
        assert path.parent.parent.name == f"v{STORE_SCHEMA}"

    def test_returned_envelope_is_a_private_copy(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        first = store.get(DIGEST)
        first["result"]["rounds"] = 999
        assert store.get(DIGEST)["result"]["rounds"] == RESULT["rounds"]

    def test_memory_lru_evicts_oldest(self, tmp_path):
        store = make_store(tmp_path, memory_slots=2)
        digests = [f"{i:02d}" + "ef" * 31 for i in range(3)]
        for digest in digests:
            put_one(store, digest=digest)
        assert digests[0] not in store._memory
        assert digests[1] in store._memory and digests[2] in store._memory
        # evicted entries still hit from disk
        assert store.get(digests[0])["result"] == RESULT

    def test_zero_memory_slots_disk_only(self, tmp_path):
        store = make_store(tmp_path, memory_slots=0)
        put_one(store)
        assert store._memory == {}
        assert store.get(DIGEST)["result"] == RESULT


class TestReadAnomaliesAreMisses:
    def test_absent_entry(self, tmp_path):
        assert make_store(tmp_path).get(DIGEST) is None

    def test_corrupt_json(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        store.entry_path(DIGEST).write_text("{not json")
        fresh = make_store(tmp_path)
        assert fresh.get(DIGEST) is None
        assert fresh.misses == 1

    def test_truncated_write(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        full = store.entry_path(DIGEST).read_text()
        store.entry_path(DIGEST).write_text(full[: len(full) // 2])
        assert make_store(tmp_path).get(DIGEST) is None

    def test_version_mismatch(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        envelope = json.loads(store.entry_path(DIGEST).read_text())
        envelope["store_schema"] = STORE_SCHEMA + 1
        store.entry_path(DIGEST).write_text(json.dumps(envelope))
        assert make_store(tmp_path).get(DIGEST) is None

    def test_misfiled_digest(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        other = "ab" + "00" * 31
        target = store.entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.entry_path(DIGEST).read_text())
        assert make_store(tmp_path).get(other) is None

    def test_missing_result_field(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        envelope = json.loads(store.entry_path(DIGEST).read_text())
        del envelope["result"]
        store.entry_path(DIGEST).write_text(json.dumps(envelope))
        assert make_store(tmp_path).get(DIGEST) is None

    def test_non_dict_payload(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        store.entry_path(DIGEST).write_text('["not", "a", "dict"]')
        assert make_store(tmp_path).get(DIGEST) is None


class TestWriteFailuresDegrade:
    def test_unwritable_disk_keeps_memory_tier(self, tmp_path, monkeypatch):
        store = make_store(tmp_path)

        def refuse(*args, **kwargs):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(os, "replace", refuse)
        assert put_one(store) is False
        assert store.store_failures == 1
        # memory tier still serves it in this process...
        assert store.get(DIGEST)["result"] == RESULT
        # ...and nothing (entry or temp litter) landed on disk
        assert not store.entries_dir.is_dir() or not any(
            store.entries_dir.rglob("*.json")
        )
        assert not any(store.cache_dir.rglob("*.tmp"))

    def test_unmakeable_directory(self, tmp_path, monkeypatch):
        store = make_store(tmp_path)
        monkeypatch.setattr(
            "pathlib.Path.mkdir",
            lambda *a, **k: (_ for _ in ()).throw(OSError(13, "denied")),
        )
        assert put_one(store) is False
        assert store.get(DIGEST)["result"] == RESULT  # memory tier


def _race_writer(args):
    cache_dir, digest, worker = args
    store = RunStore(cache_dir, memory_slots=0)
    ok = store.put(
        digest,
        dict(RESULT),
        key={"n": 7},
        spec={"n": 7, "worker": worker},
        backend="lattice",
    )
    return ok


class TestConcurrentWriters:
    def test_racing_same_key_lands_one_complete_envelope(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with multiprocessing.get_context("spawn").Pool(4) as pool:
            results = pool.map(
                _race_writer,
                [(str(cache_dir), DIGEST, i) for i in range(8)],
            )
        assert all(results)
        store = RunStore(cache_dir)
        envelope = store.get(DIGEST)
        assert envelope["result"] == RESULT  # complete, never interleaved
        # exactly one entry file, no temp litter left behind
        assert len(list(store.entries_dir.rglob("*.json"))) == 1
        assert not list(store.cache_dir.rglob("*.tmp"))


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        put_one(store, digest="ff" + "aa" * 31)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["memory_entries"] == 2
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert store.get(DIGEST) is None  # both tiers emptied

    def test_iter_digests_sorted(self, tmp_path):
        store = make_store(tmp_path)
        digests = ["ff" + "aa" * 31, "00" + "bb" * 31, DIGEST]
        for digest in digests:
            put_one(store, digest=digest)
        assert list(store.iter_digests()) == sorted(digests)

    def test_event_totals_cross_process(self, tmp_path):
        store = make_store(tmp_path)
        put_one(store)
        store.get(DIGEST)
        store.get("00" * 32)
        store.flush_events()
        assert (store.hits, store.misses, store.stores) == (0, 0, 0)
        # a "second process" reads the flushed line plus its own counts
        fresh = make_store(tmp_path)
        fresh.get(DIGEST)
        totals = fresh.event_totals()
        assert totals["hits"] == 2
        assert totals["misses"] == 1
        assert totals["stores"] == 1

    def test_flush_idempotent_when_idle(self, tmp_path):
        store = make_store(tmp_path)
        store.flush_events()
        assert not store.events_path.exists()

    def test_malformed_event_lines_skipped(self, tmp_path):
        store = make_store(tmp_path)
        store.cache_dir.mkdir(parents=True, exist_ok=True)
        store.events_path.write_text(
            'nonsense\n{"hits": 3, "misses": "NaN"}\n[1,2]\n'
        )
        assert store.event_totals()["hits"] == 3
        assert store.event_totals()["misses"] == 0
