"""Deprecation hygiene: nothing in-tree still routes through the
``solve_*`` shims, and the shims blame the right caller.

The CLI and the examples must run clean under
``-W error::DeprecationWarning`` (a shim call anywhere in their path
would abort them), and the shims' warnings must carry a ``stacklevel``
that attributes the warning to the *caller's* file -- not to
``full_stack.py`` or a helper frame -- so downstream users see their
own offending line.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.protocols.full_stack import (
    solve_coordination,
    solve_location_discovery,
)
from repro.ring.configs import random_configuration
from repro.types import Model

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_with_error_on_deprecation(args, timeout=120):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO_ROOT,
        env=env,
    )


class TestNoShimsInTree:
    def test_cli_run_smoke(self):
        proc = _run_with_error_on_deprecation([
            "-m", "repro", "run", "coordination",
            "--n", "8", "--model", "perceptive", "--json",
        ])
        assert proc.returncode == 0, proc.stderr
        assert '"leader_id"' in proc.stdout

    def test_cli_registry_listing(self):
        proc = _run_with_error_on_deprecation(["-m", "repro", "run"])
        assert proc.returncode == 0, proc.stderr
        assert "location-discovery" in proc.stdout

    def test_cli_demo_smoke(self):
        proc = _run_with_error_on_deprecation([
            "-m", "repro", "demo", "--n", "8", "--model", "lazy",
        ])
        assert proc.returncode == 0, proc.stderr
        assert "location discovery solved" in proc.stdout

    def test_quickstart_example(self):
        proc = _run_with_error_on_deprecation(
            [str(REPO_ROOT / "examples" / "quickstart.py")]
        )
        assert proc.returncode == 0, proc.stderr
        assert "reconstructed" in proc.stdout


class TestShimStacklevel:
    """The warning must point at the caller of the shim -- this file."""

    @pytest.mark.parametrize(
        "shim,kwargs",
        [
            (solve_coordination, {"model": Model.BASIC}),
            (solve_location_discovery, {"model": Model.LAZY}),
        ],
    )
    def test_warning_blames_caller(self, shim, kwargs):
        state = random_configuration(9, seed=1, common_sense=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim(state, **kwargs)
        deprecations = [
            w for w in caught if w.category is DeprecationWarning
        ]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__
        assert "deprecated" in str(deprecations[0].message)
