"""Tests for nontrivial move protocols (Lemma 10, Prop 19, Theorem 27)."""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_LEADER, KEY_NMOVE_DIR
from repro.protocols.direction_agreement import (
    agree_direction_odd,
    assume_common_frame,
)
from repro.protocols.nontrivial_move import (
    nmove_from_leader,
    nmove_odd_bisection,
    nmove_seeded_family,
)
from repro.ring.configs import random_configuration
from repro.ring.kinematics import rotation_index
from repro.types import LocalDirection, Model, local_to_velocity


def stored_rotation_index(sched: Scheduler) -> int:
    """Omniscient: rotation index of the round stored under nmove.dir."""
    state = sched.state
    velocities = [
        local_to_velocity(view.memory[KEY_NMOVE_DIR], state.chiralities[i])
        for i, view in enumerate(sched.views)
    ]
    return rotation_index(velocities, state.n)


def assert_nontrivial(sched: Scheduler, weak: bool = False) -> None:
    r = stored_rotation_index(sched)
    n = sched.state.n
    assert r != 0
    if not weak:
        assert r * 2 != n


class TestNMoveFromLeader:
    @pytest.mark.parametrize("n", [6, 7, 8, 11])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_produces_nontrivial_move(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        # Omnisciently crown a leader (leader election is tested elsewhere).
        leader_index = 0
        for i, view in enumerate(sched.views):
            view.memory[KEY_LEADER] = i == leader_index
        nmove_from_leader(sched)
        assert_nontrivial(sched)

    def test_constant_round_cost(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        for i, view in enumerate(sched.views):
            view.memory[KEY_LEADER] = i == 0
        nmove_from_leader(sched)
        assert sched.rounds <= 8

    @pytest.mark.parametrize("seed", range(6))
    def test_all_common_chirality(self, seed):
        """With one shared sense, all-RIGHT is trivial (r = 0); the
        leader-flips round must be selected."""
        state = random_configuration(6, seed=seed, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        for i, view in enumerate(sched.views):
            view.memory[KEY_LEADER] = i == 2
        nmove_from_leader(sched)
        assert_nontrivial(sched)
        assert stored_rotation_index(sched) in (2, sched.state.n - 2)


class TestNMoveOddBisection:
    @pytest.mark.parametrize("n", [5, 7, 9, 13])
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_produces_nontrivial_move(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        agree_direction_odd(sched)
        nmove_odd_bisection(sched)
        assert_nontrivial(sched)

    def test_round_cost_scales_with_log_ratio(self):
        """Θ(log(N/n)): a huge ID space with few agents costs more
        probes than a tight one, but stays ≈ log2(N/n) + O(1)."""
        import math

        n = 9
        for id_bound in (16, 1 << 12):
            state = random_configuration(
                n, id_bound=id_bound, seed=1, common_sense=True
            )
            sched = Scheduler(state, Model.BASIC)
            assume_common_frame(sched)
            nmove_odd_bisection(sched)
            probes = sched.rounds / 2  # each probe has a restore round
            assert probes <= math.log2(id_bound / n) + 3
            assert_nontrivial(sched)

    def test_rejects_even_n(self):
        state = random_configuration(8, seed=0)
        sched = Scheduler(state, Model.BASIC)
        assume_common_frame(sched)
        with pytest.raises(ProtocolError):
            nmove_odd_bisection(sched)

    def test_adversarial_contiguous_ids(self):
        """All IDs packed in one half of the ID space: bisection must
        keep descending before it can split."""
        from repro.ring.configs import explicit_configuration
        from fractions import Fraction
        from repro.types import Chirality

        n, id_bound = 7, 1 << 10
        ids = list(range(900, 900 + n))
        state = explicit_configuration(
            positions=[Fraction(i, n) for i in range(n)],
            ids=ids,
            chiralities=[Chirality.CLOCKWISE] * n,
            id_bound=id_bound,
        )
        sched = Scheduler(state, Model.BASIC)
        assume_common_frame(sched)
        nmove_odd_bisection(sched)
        assert_nontrivial(sched)


class TestNMoveSeededFamily:
    @pytest.mark.parametrize("n", [6, 8, 10, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_even_rings_mixed_chirality(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        probes = nmove_seeded_family(sched)
        assert_nontrivial(sched)
        assert probes >= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_even_rings_common_chirality(self, seed):
        """Lemma 15 realisation: works with a shared sense too."""
        state = random_configuration(8, seed=seed, common_sense=True)
        sched = Scheduler(state, Model.BASIC)
        nmove_seeded_family(sched)
        assert_nontrivial(sched)

    def test_weak_variant_allows_half_turn(self):
        state = random_configuration(8, seed=5, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        nmove_seeded_family(sched, weak=True)
        assert_nontrivial(sched, weak=True)

    def test_deterministic_given_seed(self):
        a = random_configuration(8, seed=2, common_sense=False)
        b = random_configuration(8, seed=2, common_sense=False)
        pa = nmove_seeded_family(Scheduler(a, Model.BASIC))
        pb = nmove_seeded_family(Scheduler(b, Model.BASIC))
        assert pa == pb

    def test_probe_budget_enforced(self):
        state = random_configuration(8, seed=2, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            # A zero-probe budget can never find a move.
            nmove_seeded_family(sched, max_probes=0)
