"""Warm-pool fleet execution: bit-identical reports across executors
and worker counts, pool persistence across runs, and the slot-overflow
fallback.

The zero-copy executor must be invisible in the results: the same
``{"spec", "result", "seconds"}`` rows (timings aside) whether specs
run serially in-process, through threads, or through the persistent
shared-memory worker pools -- at any worker count, for every model and
backend combination of the sweep.
"""

from __future__ import annotations

import pytest

from repro.api.fleet import Fleet, sweep
from repro.exceptions import ConfigurationError
from repro.parallel.pool import (
    WorkerPool,
    get_pool,
    run_specs_pooled,
    shutdown_pools,
)

#: Models x backends sweep: every combination the bit-exactness story
#: claims, at sizes small enough for pooled tests.
SPECS = sweep(
    protocol="location-discovery",
    sizes=(7, 8),
    seeds=(0,),
    models=("perceptive", "lazy"),
    backends=("lattice", "array"),
)

SERIAL = Fleet(SPECS, executor="serial").run()


class TestPooledDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_serial(self, workers):
        fleet = Fleet(SPECS, workers=workers, executor="process")
        assert fleet.run().payloads() == SERIAL.payloads()

    def test_thread_executor_still_matches(self):
        threads = Fleet(SPECS, workers=2, executor="thread").run()
        assert threads.payloads() == SERIAL.payloads()

    def test_rows_follow_spec_order(self):
        report = Fleet(SPECS, workers=2, executor="process").run()
        assert [row["spec"] for row in report.results] == [
            spec.to_dict() for spec in SPECS
        ]

    def test_faulted_rows_match_serial_executor(self):
        # The faults block (outcome/error/plan) must survive the shm
        # wire format: a pooled faulted sweep produces the exact rows
        # the serial executor does, not bare null results.
        specs = sweep(
            protocol="location-discovery",
            sizes=(8,),
            seeds=(0, 1),
            faults='{"seed":1,"crashes":{"2":1}}',
        )
        serial = Fleet(specs, executor="serial").run()
        pooled = Fleet(specs, workers=2, executor="process").run()
        assert pooled.payloads() == serial.payloads()
        for row in pooled.results:
            assert row["faults"]["outcome"] == "detected"
            assert row["faults"]["error"] == "ProtocolError"


class TestPoolPersistence:
    def test_registry_returns_same_pool(self):
        assert get_pool(2) is get_pool(2)
        assert get_pool(2) is not get_pool(3)

    def test_pool_survives_across_runs(self):
        pool = get_pool(2)
        pool.warm()
        executor = pool.executor
        Fleet(SPECS[:2], workers=2, executor="process").run()
        Fleet(SPECS[:2], workers=2, executor="process").run()
        # same warm executor object served both runs
        assert pool.executor is executor

    def test_warm_is_idempotent(self):
        pool = get_pool(2)
        pool.warm()
        executor = pool.executor
        pool.warm()
        assert pool.executor is executor

    def test_fleet_warm_spins_up_the_registry_pool(self):
        shutdown_pools()
        Fleet(SPECS[:1], workers=2, executor="process").warm()
        assert get_pool(2).alive

    def test_shutdown_then_reuse(self):
        pool = get_pool(2)
        pool.warm()
        pool.shutdown()
        assert pool.alive is False
        # next use lazily rebuilds the executor
        rows = run_specs_pooled(SPECS[:1], workers=2, pool=pool)
        assert rows[0]["result"] == SERIAL.payloads()[0]["result"]

    def test_warm_on_serial_fleet_is_a_no_op(self):
        Fleet(SPECS[:1], executor="serial").warm()


class TestSlotOverflow:
    def test_tiny_slots_fall_back_to_pickle_channel(self):
        # 8-byte slots cannot hold any result row; every row must ride
        # the fallback channel and still match serial bit for bit.
        rows = run_specs_pooled(SPECS, workers=2, slot_bytes=8)
        stripped = [
            {"spec": row["spec"], "result": row["result"]} for row in rows
        ]
        assert stripped == SERIAL.payloads()


class TestValidation:
    def test_worker_pool_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
