"""Tests for walk-based location discovery (Lemma 16 sweeps)."""

from fractions import Fraction

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.geometry import cw_arc, ccw_arc
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LD_GAPS, KEY_LEADER
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    agree_direction_odd,
)
from repro.protocols.leader_election import elect_leader_with_nontrivial_move
from repro.protocols.location_discovery import (
    reconstructed_positions,
    sweep_rotation_one,
    sweep_rotation_two,
)
from repro.protocols.nontrivial_move import nmove_from_leader, nmove_seeded_family
from repro.ring.configs import random_configuration
from repro.types import Chirality, Model


def coordinate(sched: Scheduler) -> None:
    """Run the coordination pipeline appropriate for the test rings."""
    if sched.views[0].parity_even:
        nmove_seeded_family(sched)
    else:
        agree_direction_odd(sched)
        nmove_seeded_family(sched)
    agree_direction_from_nontrivial_move(sched)
    elect_leader_with_nontrivial_move(sched)


def check_reconstruction(sched: Scheduler) -> None:
    """Every agent's reconstructed gap vector must match ground truth,
    read in that agent's common-frame direction from its own slot."""
    state = sched.state
    n = state.n
    true_gaps_cw = state.initial_gaps()
    for i, view in enumerate(sched.views):
        got = view.memory[KEY_LD_GAPS]
        flip = view.memory[KEY_FRAME_FLIP]
        chir = state.chiralities[i]
        # The agent's common clockwise is objective clockwise iff its
        # chirality and flip cancel.
        common_is_objective_cw = (int(chir) * (-1 if flip else 1)) == 1
        if common_is_objective_cw:
            expected = [true_gaps_cw[(i + k) % n] for k in range(n)]
        else:
            expected = [true_gaps_cw[(i - 1 - k) % n] for k in range(n)]
        assert got == expected, f"agent at ring index {i} misreconstructed"


class TestSweepRotationOne:
    @pytest.mark.parametrize("n", [5, 6, 8, 9, 12])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reconstructs_all_gaps(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        coordinate(sched)
        start = state.snapshot()
        rounds = sweep_rotation_one(sched)
        assert rounds == n
        assert state.snapshot() == start  # sweep returns to start
        check_reconstruction(sched)

    def test_costs_exactly_n_plus_coordination(self):
        n = 10
        state = random_configuration(n, seed=4, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        coordinate(sched)
        before = sched.rounds
        sweep_rotation_one(sched)
        assert sched.rounds - before == n

    def test_requires_lazy_model(self):
        state = random_configuration(7, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        coordinate(sched)
        with pytest.raises(ProtocolError):
            sweep_rotation_one(sched)

    def test_requires_leader(self):
        state = random_configuration(7, seed=0, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        with pytest.raises(ProtocolError):
            sweep_rotation_one(sched)


class TestSweepRotationTwo:
    @pytest.mark.parametrize("n", [5, 7, 9, 11, 15])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reconstructs_all_gaps_odd_basic(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        coordinate(sched)
        start = state.snapshot()
        rounds = sweep_rotation_two(sched)
        assert rounds == n
        assert state.snapshot() == start
        check_reconstruction(sched)

    def test_even_n_is_infeasible(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        coordinate(sched)
        with pytest.raises(InfeasibleProblemError):
            sweep_rotation_two(sched)


class TestReconstructedPositions:
    def test_prefix_sums(self):
        state = random_configuration(7, seed=2, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        coordinate(sched)
        sweep_rotation_one(sched)
        for view in sched.views:
            positions = reconstructed_positions(view)
            gaps = view.memory[KEY_LD_GAPS]
            assert positions[0] == 0
            assert len(positions) == state.n
            assert positions[1] == gaps[0]
            assert positions[-1] + gaps[-1] == 1

    def test_matches_ground_truth_arcs(self):
        state = random_configuration(9, seed=6, common_sense=False)
        sched = Scheduler(state, Model.LAZY)
        coordinate(sched)
        sweep_rotation_one(sched)
        n = state.n
        for i, view in enumerate(sched.views):
            positions = reconstructed_positions(view)
            flip = view.memory[KEY_FRAME_FLIP]
            chir = state.chiralities[i]
            common_is_cw = (int(chir) * (-1 if flip else 1)) == 1
            for k in range(n):
                other = (i + k) % n if common_is_cw else (i - k) % n
                arc = (
                    cw_arc(state.initial_positions[i],
                           state.initial_positions[other])
                    if common_is_cw
                    else ccw_arc(state.initial_positions[i],
                                 state.initial_positions[other])
                )
                assert positions[k] == arc

    def test_raises_before_discovery(self):
        state = random_configuration(7, seed=0)
        sched = Scheduler(state, Model.LAZY)
        with pytest.raises(ProtocolError):
            reconstructed_positions(sched.views[0])
