"""Shared-memory arenas: layout validation, column round-trips, the
owner/attachment lifecycle, and the no-leaked-segments guarantee.

The arena is the zero-copy seam every parallel executor rides, so the
tests pin its contract hard: a closed arena refuses views, closing
with live views is a loud ``BufferError`` (never a silent
use-after-free), attachments can never unlink, and every failure path
-- including an exception mid-fill -- leaves no segment behind.
"""

from __future__ import annotations

import pytest

from repro.core.population import Population
from repro.exceptions import ConfigurationError, SimulationError
from repro.parallel import shm
from repro.parallel.shm import (
    ShmArena,
    arena_from_arrays,
    load_population_ints,
    pack_blobs,
    share_population_ints,
)


def owned_names():
    """Names of segments the module currently owns (leak probe)."""
    return set(shm._OWNED)


LAYOUT = (("a", "i64", 4), ("blob", "bytes", 13), ("b", "i64", 2))


class TestLayoutValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ShmArena.create((("x", "f32", 4),))

    def test_negative_count(self):
        with pytest.raises(ConfigurationError):
            ShmArena.create((("x", "i64", -1),))

    def test_duplicate_key(self):
        with pytest.raises(ConfigurationError):
            ShmArena.create((("x", "i64", 1), ("x", "bytes", 1)))

    def test_odd_byte_column_keeps_i64_aligned(self):
        # "b" starts after a 13-byte blob; alignment must pad it.
        with ShmArena.create(LAYOUT) as arena:
            arena.write_ints("b", [-(2**62), 2**62])
            assert arena.read_ints("b") == [-(2**62), 2**62]


class TestColumnRoundTrips:
    def test_ints_and_raw(self):
        with ShmArena.create(LAYOUT) as arena:
            arena.write_ints("a", [1, -2, 3, -4])
            assert arena.read_ints("a") == [1, -2, 3, -4]
            arena.raw("blob")[:5] = b"hello"
            assert bytes(arena.raw("blob")[:5]) == b"hello"
            # fresh segments are zero-filled
            assert arena.read_ints("b") == [0, 0]

    def test_wrong_kind_and_missing_key(self):
        with ShmArena.create(LAYOUT) as arena:
            with pytest.raises(SimulationError):
                arena.ints("blob")
            with pytest.raises(SimulationError):
                arena.raw("a")
            with pytest.raises(KeyError):
                arena.ints("nope")

    def test_write_length_mismatch(self):
        with ShmArena.create(LAYOUT) as arena:
            with pytest.raises(SimulationError):
                arena.write_ints("a", [1, 2])

    def test_stdlib_fallback_without_numpy(self, monkeypatch):
        # ints() must stay read/write-correct when numpy is absent.
        monkeypatch.setattr(shm, "get_numpy", lambda: None)
        with ShmArena.create((("a", "i64", 3),)) as arena:
            arena.write_ints("a", [7, -8, 2**40])
            view = arena.ints("a")
            assert list(view) == [7, -8, 2**40]
            view[1] = 99
            del view
            assert arena.read_ints("a") == [7, 99, 2**40]


class TestLifecycle:
    def test_attach_reads_owner_writes(self):
        with ShmArena.create(LAYOUT) as arena:
            arena.write_ints("a", [5, 6, 7, 8])
            attachment = ShmArena.attach(arena.name, LAYOUT)
            assert attachment.owner is False
            assert attachment.read_ints("a") == [5, 6, 7, 8]
            attachment.write_ints("b", [1, 2])
            assert arena.read_ints("b") == [1, 2]
            attachment.close()

    def test_attach_missing_segment(self):
        with pytest.raises(SimulationError):
            ShmArena.attach("repro-no-such-segment", LAYOUT)

    def test_attach_undersized_segment(self):
        with ShmArena.create((("a", "i64", 2),)) as arena:
            too_big = (("a", "i64", 1024),)
            with pytest.raises(SimulationError):
                ShmArena.attach(arena.name, too_big)

    def test_attachment_may_not_unlink(self):
        with ShmArena.create(LAYOUT) as arena:
            attachment = ShmArena.attach(arena.name, LAYOUT)
            with pytest.raises(SimulationError):
                attachment.unlink()
            attachment.close()

    def test_context_exit_unlinks(self):
        with ShmArena.create(LAYOUT) as arena:
            name = arena.name
            assert name in owned_names()
        assert name not in owned_names()
        with pytest.raises(SimulationError):
            ShmArena.attach(name, LAYOUT)

    def test_close_is_idempotent_and_fences_views(self):
        arena = ShmArena.create(LAYOUT)
        arena.close()
        arena.close()
        with pytest.raises(SimulationError):
            arena.ints("a")
        arena.release()  # owner: still unlinks after close

    def test_close_with_live_view_is_loud(self):
        arena = ShmArena.create(LAYOUT)
        name = arena.name
        view = arena.ints("a")
        with pytest.raises(BufferError):
            arena.close()
        # the failed close must not have marked the arena closed:
        # retrying after the views are gone completes the lifecycle
        # and the segment is still destroyed.
        assert arena.closed is False
        del view
        arena.release()
        assert name not in owned_names()
        with pytest.raises(SimulationError):
            ShmArena.attach(name, LAYOUT)

    def test_exception_inside_with_still_unlinks(self):
        with pytest.raises(RuntimeError):
            with ShmArena.create(LAYOUT) as arena:
                name = arena.name
                raise RuntimeError("simulated failure mid-run")
        assert name not in owned_names()
        with pytest.raises(SimulationError):
            ShmArena.attach(name, LAYOUT)


class TestArenaFromArrays:
    def test_round_trip(self):
        arena = arena_from_arrays({"x": [1, 2, 3], "y": [-1]})
        try:
            assert arena.layout == (("x", "i64", 3), ("y", "i64", 1))
            assert arena.read_ints("x") == [1, 2, 3]
            assert arena.read_ints("y") == [-1]
        finally:
            arena.release()

    def test_failed_fill_leaks_nothing(self):
        before = owned_names()
        with pytest.raises(Exception):
            arena_from_arrays({"x": [1, "not-an-int", 3]})
        assert owned_names() == before


class TestPopulationMirror:
    def make_population(self):
        population = Population(
            n=4, ids=[3, 1, 4, 1], id_bound=8, parity_even=True
        )
        population.set_column("phase", [0, 1, 2, 3])
        population.set_column("count", [10, 20, 30, 40])
        return population

    def test_share_and_load_round_trip(self):
        source = self.make_population()
        target = self.make_population()
        target.set_column("phase", [9, 9, 9, 9])
        target.set_column("count", [0, 0, 0, 0])
        with share_population_ints(source, ["phase", "count"]) as arena:
            load_population_ints(arena, target)
        assert target.column("phase") == [0, 1, 2, 3]
        assert target.column("count") == [10, 20, 30, 40]

    def test_load_selected_keys_only(self):
        source = self.make_population()
        target = self.make_population()
        target.set_column("count", [0, 0, 0, 0])
        with share_population_ints(source, ["phase", "count"]) as arena:
            load_population_ints(arena, target, keys=["phase"])
        assert target.column("count") == [0, 0, 0, 0]

    def test_column_ints_rejects_non_int_cells(self):
        population = self.make_population()
        population.set_column("flag", [True, False, True, False])
        with pytest.raises(TypeError):
            population.column_ints("flag")
        population.set_column("mixed", [1, 2, None, 4])
        with pytest.raises(TypeError):
            population.column_ints("mixed")
        with pytest.raises(TypeError):
            share_population_ints(population, ["mixed"])


class TestPackBlobs:
    def test_framing(self):
        payload, bounds = pack_blobs([b"ab", b"", b"cdef"])
        assert payload == b"abcdef"
        assert bounds == [0, 2, 2, 6]
        parts = [
            payload[bounds[i]:bounds[i + 1]] for i in range(3)
        ]
        assert parts == [b"ab", b"", b"cdef"]
