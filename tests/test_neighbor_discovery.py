"""Tests for neighbor discovery (Algorithm 3)."""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.neighbor_discovery import (
    KEY_GAP_LEFT,
    KEY_GAP_RIGHT,
    KEY_SAME_LEFT,
    KEY_SAME_RIGHT,
    discover_neighbors,
    neighbor_info,
)
from repro.ring.configs import random_configuration
from repro.types import Chirality, Model


def check_against_ground_truth(sched: Scheduler) -> None:
    state = sched.state
    n = state.n
    gaps = state.initial_gaps()  # gaps[i] = cw arc agent i -> agent i+1
    for i, view in enumerate(sched.views):
        gap_right, gap_left, same_right, same_left = neighbor_info(view)
        chir = state.chiralities[i]
        if chir is Chirality.CLOCKWISE:
            true_right, true_left = gaps[i], gaps[(i - 1) % n]
            right_idx, left_idx = (i + 1) % n, (i - 1) % n
        else:
            true_right, true_left = gaps[(i - 1) % n], gaps[i]
            right_idx, left_idx = (i - 1) % n, (i + 1) % n
        assert gap_right == true_right, f"agent {i}: wrong right gap"
        assert gap_left == true_left, f"agent {i}: wrong left gap"
        assert same_right == (state.chiralities[right_idx] == chir)
        assert same_left == (state.chiralities[left_idx] == chir)


class TestNeighborDiscovery:
    @pytest.mark.parametrize("n", [5, 6, 8, 11, 16])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_chirality(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE)
        start = state.snapshot()
        discover_neighbors(sched)
        assert state.snapshot() == start
        check_against_ground_truth(sched)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_all_common_chirality(self, seed):
        state = random_configuration(9, seed=seed, common_sense=True)
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        check_against_ground_truth(sched)

    def test_alternating_chirality(self):
        """Worst case for the uniform rounds: every neighbor flipped."""
        from fractions import Fraction
        from repro.ring.configs import explicit_configuration

        n = 8
        state = explicit_configuration(
            positions=[Fraction(3 * i + (i % 2), 3 * n) for i in range(n)],
            ids=list(range(1, n + 1)),
            chiralities=[
                Chirality.CLOCKWISE if i % 2 == 0 else Chirality.ANTICLOCKWISE
                for i in range(n)
            ],
            id_bound=2 * n,
        )
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        check_against_ground_truth(sched)

    def test_adversarial_complement_ids(self):
        """IDs sharing no bit: bit rounds alone cannot produce head-on
        collisions between flipped neighbors; uniform rounds must."""
        from fractions import Fraction
        from repro.ring.configs import explicit_configuration

        # 5 agents, IDs chosen so some adjacent pairs share no set bits.
        state = explicit_configuration(
            positions=[Fraction(i, 5) for i in range(5)],
            ids=[0b0101, 0b1010, 0b0110, 0b1001, 0b0011],
            chiralities=[
                Chirality.CLOCKWISE,
                Chirality.ANTICLOCKWISE,
                Chirality.CLOCKWISE,
                Chirality.ANTICLOCKWISE,
                Chirality.CLOCKWISE,
            ],
            id_bound=16,
        )
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        check_against_ground_truth(sched)

    def test_requires_perceptive_model(self):
        state = random_configuration(6, seed=0)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            discover_neighbors(sched)

    def test_round_cost_logarithmic(self):
        state = random_configuration(8, seed=1, common_sense=False)
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        from repro.core.agent import id_bits

        bits = id_bits(state.id_bound)
        assert sched.rounds == 4 * bits + 4
