"""Integration tests for the end-to-end pipelines (Tables I and II)."""

from fractions import Fraction

import pytest

from repro import (
    InfeasibleProblemError,
    Model,
    random_configuration,
    solve_coordination,
    solve_location_discovery,
)
from repro.combinatorics import bounds


def check_gaps(state, result):
    """Every agent's gap vector must be a rotation/reflection of the
    true gaps consistent with some global frame orientation."""
    n = state.n
    true_cw = state.initial_gaps()
    # All agents share one common frame: either everyone reports the cw
    # gaps from its own slot, or everyone reports the ccw ones.
    ok_cw = all(
        result.gaps_by_agent[i] == [true_cw[(i + k) % n] for k in range(n)]
        for i in range(n)
    )
    ok_ccw = all(
        result.gaps_by_agent[i]
        == [true_cw[(i - 1 - k) % n] for k in range(n)]
        for i in range(n)
    )
    assert ok_cw or ok_ccw


class TestCoordinationPipelines:
    @pytest.mark.parametrize("model", list(Model))
    @pytest.mark.parametrize("n", [7, 8])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_cell_elects_a_leader(self, model, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        result = solve_coordination(state, model)
        assert result.leader_id in state.ids
        assert result.rounds > 0
        assert set(result.rounds_by_phase) == {
            "direction_agreement", "leader_election", "nontrivial_move",
        }

    @pytest.mark.parametrize("model", list(Model))
    def test_common_sense_setting(self, model):
        state = random_configuration(8, seed=2, common_sense=True)
        result = solve_coordination(state, model, common_sense=True)
        assert result.leader_id == min(state.ids)
        assert result.rounds_by_phase["direction_agreement"] == 0

    def test_positions_restored(self):
        state = random_configuration(9, seed=5, common_sense=False)
        start = state.snapshot()
        solve_coordination(state, Model.BASIC)
        assert state.snapshot() == start


class TestLocationDiscoveryPipelines:
    @pytest.mark.parametrize("n,seed", [(7, 0), (9, 1), (11, 2)])
    def test_basic_odd(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        result = solve_location_discovery(state, Model.BASIC)
        check_gaps(state, result)
        assert result.rounds_by_phase["discovery"] == n

    def test_basic_even_infeasible(self):
        state = random_configuration(8, seed=0, common_sense=False)
        with pytest.raises(InfeasibleProblemError):
            solve_location_discovery(state, Model.BASIC)

    @pytest.mark.parametrize("n,seed", [(7, 0), (8, 1), (12, 2)])
    def test_lazy(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        result = solve_location_discovery(state, Model.LAZY)
        check_gaps(state, result)
        assert result.rounds_by_phase["discovery"] == n

    @pytest.mark.parametrize("n,seed", [(8, 0), (12, 1), (16, 2)])
    def test_perceptive_even_uses_half_n(self, n, seed):
        state = random_configuration(n, seed=seed, common_sense=False)
        result = solve_location_discovery(state, Model.PERCEPTIVE)
        check_gaps(state, result)
        assert result.rounds_by_phase["discovery"] == n // 2 + 3

    def test_perceptive_odd_falls_back_to_sweep(self):
        state = random_configuration(9, seed=3, common_sense=False)
        result = solve_location_discovery(state, Model.PERCEPTIVE)
        check_gaps(state, result)
        assert result.rounds_by_phase["discovery"] == 9

    def test_common_sense_lazy_matches_table2(self):
        state = random_configuration(10, seed=4, common_sense=True)
        result = solve_location_discovery(
            state, Model.LAZY, common_sense=True
        )
        check_gaps(state, result)
        n, big_n = state.n, state.id_bound
        # Table II: n + O(log N).  Generous constant for the emptiness
        # bisection's restore rounds.
        assert result.rounds <= n + 20 * bounds.log_n_bound(big_n)


class TestPublicApi:
    def test_quickstart_surface(self):
        import repro

        state = repro.random_configuration(n=9, seed=1)
        result = repro.solve_location_discovery(state, repro.Model.BASIC)
        assert result.rounds >= 9
        assert len(result.gaps_by_agent) == 9
        assert sum(result.gaps_by_agent[0], Fraction(0)) == 1
