"""Tests for RingDist (Algorithm 5) and the ring-size broadcast."""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LABEL, KEY_RING_SIZE
from repro.protocols.direction_agreement import agree_direction_from_nontrivial_move
from repro.protocols.leader_election import elect_leader_with_nontrivial_move
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.protocols.ring_distance import (
    KEY_IS_LAST,
    publish_ring_size,
    ring_distances,
)
from repro.ring.configs import (
    clustered_configuration,
    jittered_equidistant_configuration,
    random_configuration,
)
from repro.types import Model


def perceptive_sched(state):
    sched = Scheduler(state, Model.PERCEPTIVE)
    nmove_seeded_family(sched)
    agree_direction_from_nontrivial_move(sched)
    elect_leader_with_nontrivial_move(sched)
    discover_neighbors(sched)
    return sched


def expected_labels(sched):
    """Omniscient: 1-based labels increasing in the common clockwise."""
    state = sched.state
    n = state.n
    leader_index = next(
        i for i, v in enumerate(sched.views) if v.memory.get("leader.is_leader")
    )
    effective = {
        int(state.chiralities[i])
        * (-1 if sched.views[i].memory[KEY_FRAME_FLIP] else 1)
        for i in range(n)
    }
    assert len(effective) == 1
    cw = effective.pop() == 1
    labels = {}
    for i in range(n):
        offset = (i - leader_index) % n if cw else (leader_index - i) % n
        labels[i] = offset + 1
    return labels


class TestRingDistances:
    @pytest.mark.parametrize("n", [5, 6, 7, 8, 9, 12, 16, 21, 30])
    def test_labels_correct(self, n):
        state = random_configuration(n, seed=n, common_sense=False)
        sched = perceptive_sched(state)
        start = state.snapshot()
        ring_distances(sched)
        assert state.snapshot() == start
        want = expected_labels(sched)
        for i, view in enumerate(sched.views):
            assert view.memory[KEY_LABEL] == want[i], f"agent index {i}"

    def test_last_agent_identified(self):
        state = random_configuration(10, seed=3, common_sense=False)
        sched = perceptive_sched(state)
        ring_distances(sched)
        lasts = [v for v in sched.views if v.memory.get(KEY_IS_LAST)]
        assert len(lasts) == 1
        assert lasts[0].memory[KEY_LABEL] == 10

    @pytest.mark.parametrize("maker", [
        jittered_equidistant_configuration,
        clustered_configuration,
    ])
    def test_stress_geometries(self, maker):
        state = maker(12, seed=1, common_sense=False)
        sched = perceptive_sched(state)
        ring_distances(sched)
        want = expected_labels(sched)
        for i, view in enumerate(sched.views):
            assert view.memory[KEY_LABEL] == want[i]

    def test_requires_perceptive(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        with pytest.raises(ProtocolError):
            ring_distances(sched)

    def test_round_cost_matches_sqrt_n_log_bound(self):
        """O(√n log N): rounds stay below C · k_final · log N where
        k_final <= 2√n is the last power-of-two iteration."""
        import math

        from repro.core.agent import id_bits

        for n in (8, 16, 32, 48):
            state = random_configuration(n, seed=1, common_sense=False)
            sched = perceptive_sched(state)
            before = sched.rounds
            ring_distances(sched)
            cost = sched.rounds - before
            k_final = 2
            while k_final * k_final + 2 * k_final < n - 1:
                k_final *= 2
            assert k_final <= 2 * math.sqrt(n) + 2
            bits = id_bits(state.id_bound)
            assert cost <= 26 * k_final * bits, (
                f"n={n}: cost {cost} exceeds 26 * {k_final} * {bits}"
            )


class TestPublishRingSize:
    @pytest.mark.parametrize("n", [6, 9, 13])
    def test_everyone_learns_n(self, n):
        state = random_configuration(n, seed=n, common_sense=False)
        sched = perceptive_sched(state)
        ring_distances(sched)
        value = publish_ring_size(sched)
        assert value == n
        assert all(v.memory[KEY_RING_SIZE] == n for v in sched.views)
