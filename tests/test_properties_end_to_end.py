"""Hypothesis property tests over whole pipelines.

These sweep random ring sizes, ID spaces, geometries and chirality
assignments through the end-to-end solvers and check the invariants
that must hold on *every* input, not just the unit-test seeds:

* coordination always ends with exactly one leader and restored
  positions;
* every stored nontrivial move really is nontrivial;
* location discovery reconstructions always equal ground truth;
* round counts never beat the information-theoretic floors (Lemma 6).
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.combinatorics import bounds
from repro.core.scheduler import Scheduler
from repro.protocols.base import KEY_LEADER, KEY_NMOVE_DIR
from repro.protocols.full_stack import (
    solve_coordination,
    solve_location_discovery,
)
from repro.ring.configs import random_configuration
from repro.ring.kinematics import rotation_index
from repro.types import LocalDirection, Model, local_to_velocity

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def ring_params(min_n=5, max_n=12):
    return st.tuples(
        st.integers(min_value=min_n, max_value=max_n),
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([None, True, False]),
    )


class TestCoordinationProperties:
    @SLOW
    @given(ring_params(), st.sampled_from(list(Model)))
    def test_unique_leader_and_restoration(self, params, model):
        n, seed, common = params
        state = random_configuration(n, seed=seed, common_sense=common)
        start = state.snapshot()
        result = solve_coordination(state, model)
        assert result.leader_id in state.ids
        assert state.snapshot() == start

    @SLOW
    @given(ring_params(), st.sampled_from(list(Model)))
    def test_stored_nmove_is_nontrivial(self, params, model):
        n, seed, common = params
        state = random_configuration(n, seed=seed, common_sense=common)
        sched = Scheduler(state, model)
        solve_coordination(state, model, scheduler=sched)
        velocities = [
            local_to_velocity(
                view.memory[KEY_NMOVE_DIR], state.chiralities[i]
            )
            for i, view in enumerate(sched.views)
        ]
        r = rotation_index(velocities, n)
        assert r != 0
        assert 2 * r != n

    @SLOW
    @given(ring_params())
    def test_leader_flags_consistent(self, params):
        n, seed, common = params
        state = random_configuration(n, seed=seed, common_sense=common)
        sched = Scheduler(state, Model.LAZY)
        result = solve_coordination(state, Model.LAZY, scheduler=sched)
        flags = [bool(v.memory.get(KEY_LEADER)) for v in sched.views]
        assert flags.count(True) == 1
        winner = sched.views[flags.index(True)].agent_id
        assert winner == result.leader_id


class TestLocationDiscoveryProperties:
    @SLOW
    @given(ring_params())
    def test_lazy_reconstruction_exact(self, params):
        n, seed, common = params
        state = random_configuration(n, seed=seed, common_sense=common)
        result = solve_location_discovery(state, Model.LAZY)
        self._check(state, result)

    @SLOW
    @given(ring_params(min_n=6, max_n=10))
    def test_perceptive_reconstruction_exact(self, params):
        n, seed, common = params
        state = random_configuration(n, seed=seed, common_sense=common)
        result = solve_location_discovery(state, Model.PERCEPTIVE)
        self._check(state, result)
        floor = bounds.ld_lower_bound(
            n, perceptive=n % 2 == 0
        )
        assert result.rounds_by_phase["discovery"] >= floor

    @staticmethod
    def _check(state, result):
        n = state.n
        true_cw = state.initial_gaps()
        ok_cw = all(
            result.gaps_by_agent[i]
            == [true_cw[(i + k) % n] for k in range(n)]
            for i in range(n)
        )
        ok_ccw = all(
            result.gaps_by_agent[i]
            == [true_cw[(i - 1 - k) % n] for k in range(n)]
            for i in range(n)
        )
        assert ok_cw or ok_ccw
        for gaps in result.gaps_by_agent:
            assert sum(gaps, Fraction(0)) == 1
            assert all(g > 0 for g in gaps)


class TestRoundAccounting:
    @SLOW
    @given(ring_params())
    def test_phase_rounds_sum_to_total(self, params):
        n, seed, common = params
        state = random_configuration(n, seed=seed, common_sense=common)
        result = solve_location_discovery(state, Model.LAZY)
        assert sum(result.rounds_by_phase.values()) == result.rounds
