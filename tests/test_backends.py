"""Backend equivalence: the integer-lattice and Fraction backends must
produce bit-identical results on every round.

This is the load-bearing guarantee of the backend layer: protocols test
*equalities* between observed rationals, so the lattice backend cannot
be merely "close" -- every ``dist()``, every ``coll()``, every rotation
index, every event count and every position must match the reference
backend exactly, across all three model variants, including rounds with
simultaneous multi-agent contacts and external position writes.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import Scheduler
from repro.exceptions import SimulationError
from repro.ring.backends import (
    DEFAULT_BACKEND,
    FractionBackend,
    LatticeBackend,
    make_backend,
)
from repro.ring.configs import (
    explicit_configuration,
    jittered_equidistant_configuration,
    random_configuration,
)
from repro.ring.simulator import RingSimulator
from repro.types import Chirality, LocalDirection, Model

F = Fraction
R, L, I = LocalDirection.RIGHT, LocalDirection.LEFT, LocalDirection.IDLE


def equidistant_state(n=8, chiralities=None):
    return explicit_configuration(
        positions=[F(i, n) for i in range(n)],
        ids=list(range(1, n + 1)),
        chiralities=chiralities or [Chirality.CLOCKWISE] * n,
        id_bound=2 * n,
    )


def paired_simulators(make_state, model, cross_validate=False):
    """Two identical worlds, one per backend."""
    sims = []
    for backend in ("fraction", "lattice"):
        sims.append(
            RingSimulator(
                make_state(), model, cross_validate, backend=backend
            )
        )
    return sims


def assert_rounds_identical(sim_f, sim_l, directions_seq):
    """Drive both simulators through the same rounds; compare everything."""
    for k, directions in enumerate(directions_seq):
        out_f = sim_f.execute(directions)
        out_l = sim_l.execute(directions)
        assert out_f.rotation_index == out_l.rotation_index, f"round {k}"
        assert out_f.collision_events == out_l.collision_events, f"round {k}"
        assert out_f.observations == out_l.observations, f"round {k}"
        assert sim_f.state.positions == sim_l.state.positions, f"round {k}"
        assert sim_f.state.gaps() == sim_l.state.gaps(), f"round {k}"


class TestMakeBackend:
    def test_default_is_lattice(self):
        assert DEFAULT_BACKEND == "lattice"
        assert isinstance(make_backend(None), LatticeBackend)

    def test_by_name_and_instance(self):
        assert isinstance(make_backend("fraction"), FractionBackend)
        assert isinstance(make_backend("lattice"), LatticeBackend)
        inst = FractionBackend()
        assert make_backend(inst) is inst

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            make_backend("decimal")


class TestRandomizedEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=12),
        seed=st.integers(0, 10_000),
        model=st.sampled_from([Model.BASIC, Model.LAZY, Model.PERCEPTIVE]),
    )
    def test_random_rounds_bit_exact(self, n, seed, model):
        make_state = lambda: random_configuration(
            n, seed=seed, common_sense=None
        )
        sim_f, sim_l = paired_simulators(make_state, model)
        rng = random.Random(seed)
        choices = (R, L, I) if model.allows_idle else (R, L)
        seq = [
            [rng.choice(choices) for _ in range(n)] for _ in range(12)
        ]
        assert_rounds_identical(sim_f, sim_l, seq)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=5, max_value=9), seed=st.integers(0, 5000))
    def test_cross_validated_rounds_agree(self, n, seed):
        """With cross-validation on, both backends run their own event
        engine and the engines must agree with each other too."""
        make_state = lambda: random_configuration(n, seed=seed)
        sim_f, sim_l = paired_simulators(
            make_state, Model.PERCEPTIVE, cross_validate=True
        )
        rng = random.Random(seed + 1)
        seq = [[rng.choice((R, L)) for _ in range(n)] for _ in range(6)]
        assert_rounds_identical(sim_f, sim_l, seq)
        assert sim_f.collision_events == sim_l.collision_events

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_lazy_cross_validated(self, seed):
        make_state = lambda: random_configuration(8, seed=seed)
        sim_f, sim_l = paired_simulators(
            make_state, Model.LAZY, cross_validate=True
        )
        rng = random.Random(seed)
        seq = [[rng.choice((R, L, I)) for _ in range(8)] for _ in range(6)]
        assert_rounds_identical(sim_f, sim_l, seq)


class TestSimultaneousContacts:
    """Equidistant rings make every collision simultaneous -- the stress
    case for event-count and first-collision agreement."""

    def test_alternating_velocities(self):
        make_state = lambda: equidistant_state(8)
        sim_f, sim_l = paired_simulators(
            make_state, Model.PERCEPTIVE, cross_validate=True
        )
        seq = [[R, L] * 4, [L, R] * 4, [R, R, L, L] * 2]
        assert_rounds_identical(sim_f, sim_l, seq)
        assert sim_f.collision_events > 0

    def test_symmetric_idle_contacts(self):
        # Movers converge symmetrically on idle agents: simultaneous
        # triple contacts resolved by pairwise exchange.
        make_state = lambda: equidistant_state(9)
        sim_f, sim_l = paired_simulators(
            make_state, Model.LAZY, cross_validate=True
        )
        seq = [[R, I, L] * 3, [I, R, L] * 3, [I, I, I] * 3]
        assert_rounds_identical(sim_f, sim_l, seq)

    def test_jittered_near_symmetric(self):
        make_state = lambda: jittered_equidistant_configuration(10, seed=3)
        sim_f, sim_l = paired_simulators(
            make_state, Model.PERCEPTIVE, cross_validate=True
        )
        rng = random.Random(5)
        seq = [[rng.choice((R, L)) for _ in range(10)] for _ in range(8)]
        assert_rounds_identical(sim_f, sim_l, seq)


class TestExternalWrites:
    def test_lattice_resyncs_after_restore(self):
        state = random_configuration(7, seed=9, common_sense=True)
        sim = RingSimulator(state, Model.PERCEPTIVE, backend="lattice")
        snap = state.snapshot()
        sim.execute([R, L, R, L, R, L, R])
        state.restore(snap)
        # The backend must notice the external write and re-derive its
        # lattice; a stale offset would corrupt every later round.
        out = sim.execute([R] * 7)
        assert state.snapshot() == snap  # all-clockwise unit lap: r = 0
        assert out.rotation_index == 0

    def test_lattice_resyncs_after_manual_assignment(self):
        state = random_configuration(6, seed=2, common_sense=True)
        sim = RingSimulator(state, Model.BASIC, backend="lattice")
        sim.execute([R, L, R, L, R, L])
        state.positions = [F(i, 6) for i in range(6)]
        ref = RingSimulator(
            random_configuration(6, seed=2, common_sense=True),
            Model.BASIC,
            backend="fraction",
        )
        ref.state.positions = [F(i, 6) for i in range(6)]
        out_l = sim.execute([R, R, R, L, L, L])
        out_f = ref.execute([R, R, R, L, L, L])
        assert out_l.observations == out_f.observations
        assert sim.state.positions == ref.state.positions

    def test_snapshot_restore_roundtrip_with_gap_cache(self):
        state = random_configuration(8, seed=4)
        gaps_before = state.gaps()
        snap = state.snapshot()
        sim = RingSimulator(state, Model.BASIC, backend="lattice")
        rng = random.Random(7)
        for _ in range(5):
            dirs = [rng.choice((R, L)) for _ in range(8)]
            sim.execute(dirs)
            # Cached gaps must always equal a fresh recomputation.
            fresh = RingSimulator(
                explicit_configuration(
                    positions=state.positions,
                    ids=state.ids,
                    chiralities=state.chiralities,
                    id_bound=state.id_bound,
                ),
                Model.BASIC,
            ).state.gaps()
            assert state.gaps() == fresh
        state.restore(snap)
        assert state.gaps() == gaps_before


class TestBatchedExecution:
    def test_run_fixed_batch_matches_loop(self):
        make_state = lambda: random_configuration(8, seed=12)
        sched_batch = Scheduler(make_state(), Model.PERCEPTIVE)
        sched_loop = Scheduler(make_state(), Model.PERCEPTIVE)
        last = sched_batch.run_fixed(R, k=5)
        for _ in range(5):
            last_loop = sched_loop.run_fixed(R)
        assert sched_batch.rounds == sched_loop.rounds == 5
        assert last == last_loop
        for va, vb in zip(sched_batch.views, sched_loop.views):
            assert va.log == vb.log
        assert (
            sched_batch.state.positions == sched_loop.state.positions
        )

    def test_run_rounds_matches_single_rounds(self):
        make_state = lambda: random_configuration(7, seed=3)
        sched_a = Scheduler(make_state(), Model.BASIC)
        sched_b = Scheduler(make_state(), Model.BASIC)
        flip = {True: R, False: L}
        choose = lambda view: flip[view.agent_id % 2 == 0]
        outcomes = sched_a.run_rounds(choose, 6)
        for _ in range(6):
            sched_b.run_round(choose)
        assert len(outcomes) == 6
        assert sched_a.rounds == sched_b.rounds == 6
        for va, vb in zip(sched_a.views, sched_b.views):
            assert va.log == vb.log

    def test_run_fixed_rejects_nonpositive(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        with pytest.raises(ValueError):
            sched.run_fixed(R, k=0)

    def test_batch_across_backends(self):
        make_state = lambda: random_configuration(9, seed=8)
        outs = {}
        for backend in ("fraction", "lattice"):
            sched = Scheduler(
                make_state(), Model.PERCEPTIVE, backend=backend
            )
            outs[backend] = sched.run_fixed(L, k=7)
        assert outs["fraction"] == outs["lattice"]


class TestUnanimousMemory:
    def test_agreement_by_equality(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        for view in sched.views:
            view.memory["x"] = F(1, 2)
        assert sched.unanimous_memory("x") == F(1, 2)

    def test_equal_values_with_distinct_reprs_agree(self):
        # repr() comparison would split these: dict printouts differ,
        # but the values are equal.
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        for i, view in enumerate(sched.views):
            view.memory["x"] = {"a": 1, "b": 2} if i % 2 else {"b": 2, "a": 1}
        assert sched.unanimous_memory("x") == {"a": 1, "b": 2}

    def test_disagreement_returns_none(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        for i, view in enumerate(sched.views):
            view.memory["x"] = i
        assert sched.unanimous_memory("x") is None

    def test_missing_key_is_unanimous_none(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        assert sched.unanimous_memory("nope") is None
