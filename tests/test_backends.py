"""Backend equivalence: the integer-lattice and array backends must
produce bit-identical results to the Fraction backend on every round.

This is the load-bearing guarantee of the backend layer: protocols test
*equalities* between observed rationals, so the derived backends cannot
be merely "close" -- every ``dist()``, every ``coll()``, every rotation
index, every event count and every position must match the reference
backend exactly, across all three model variants, including rounds with
simultaneous multi-agent contacts and external position writes, with
and without numpy installed (the array backend's stdlib fallback).
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import Scheduler
from repro.exceptions import SimulationError
from repro.ring.backends import (
    ArrayBackend,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    FractionBackend,
    LatticeBackend,
    make_backend,
)
from repro.ring.configs import (
    explicit_configuration,
    jittered_equidistant_configuration,
    random_configuration,
)
from repro.ring.simulator import RingSimulator
from repro.types import Chirality, LocalDirection, Model

F = Fraction
R, L, I = LocalDirection.RIGHT, LocalDirection.LEFT, LocalDirection.IDLE

#: All derived backends, compared against the Fraction reference.
DERIVED_BACKENDS = ("lattice", "array")


def equidistant_state(n=8, chiralities=None):
    return explicit_configuration(
        positions=[F(i, n) for i in range(n)],
        ids=list(range(1, n + 1)),
        chiralities=chiralities or [Chirality.CLOCKWISE] * n,
        id_bound=2 * n,
    )


def paired_simulators(make_state, model, cross_validate=False,
                      backends=("fraction",) + DERIVED_BACKENDS):
    """Identical worlds, one per backend (reference first)."""
    return [
        RingSimulator(make_state(), model, cross_validate, backend=backend)
        for backend in backends
    ]


def assert_rounds_identical(sims, directions_seq):
    """Drive all simulators through the same rounds; compare everything
    against the first (reference) simulator."""
    ref = sims[0]
    for k, directions in enumerate(directions_seq):
        out_ref = ref.execute(directions)
        for sim in sims[1:]:
            out = sim.execute(directions)
            name = sim.backend.name
            assert out.rotation_index == out_ref.rotation_index, \
                f"round {k} ({name})"
            assert out.collision_events == out_ref.collision_events, \
                f"round {k} ({name})"
            assert out.observations == out_ref.observations, \
                f"round {k} ({name})"
            assert sim.state.positions == ref.state.positions, \
                f"round {k} ({name})"
            assert sim.state.gaps() == ref.state.gaps(), \
                f"round {k} ({name})"


class TestMakeBackend:
    def test_default_is_lattice(self):
        assert DEFAULT_BACKEND == "lattice"
        assert isinstance(make_backend(None), LatticeBackend)

    def test_by_name_and_instance(self):
        assert isinstance(make_backend("fraction"), FractionBackend)
        assert isinstance(make_backend("lattice"), LatticeBackend)
        assert isinstance(make_backend("array"), ArrayBackend)
        inst = FractionBackend()
        assert make_backend(inst) is inst

    def test_registry_names(self):
        assert set(BACKEND_NAMES) == {"lattice", "fraction", "array"}

    def test_array_is_a_lattice_backend(self):
        # Single rounds run on the proven integer path; only fused
        # stretches take the columnar one.
        backend = make_backend("array")
        assert isinstance(backend, LatticeBackend)
        assert backend.supports_stretch

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            make_backend("decimal")


class TestRandomizedEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=12),
        seed=st.integers(0, 10_000),
        model=st.sampled_from([Model.BASIC, Model.LAZY, Model.PERCEPTIVE]),
    )
    def test_random_rounds_bit_exact(self, n, seed, model):
        make_state = lambda: random_configuration(
            n, seed=seed, common_sense=None
        )
        sims = paired_simulators(make_state, model)
        rng = random.Random(seed)
        choices = (R, L, I) if model.allows_idle else (R, L)
        seq = [
            [rng.choice(choices) for _ in range(n)] for _ in range(12)
        ]
        assert_rounds_identical(sims, seq)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=5, max_value=9), seed=st.integers(0, 5000))
    def test_cross_validated_rounds_agree(self, n, seed):
        """With cross-validation on, every backend runs its own event
        engine and the engines must agree with each other too."""
        make_state = lambda: random_configuration(n, seed=seed)
        sims = paired_simulators(
            make_state, Model.PERCEPTIVE, cross_validate=True
        )
        rng = random.Random(seed + 1)
        seq = [[rng.choice((R, L)) for _ in range(n)] for _ in range(6)]
        assert_rounds_identical(sims, seq)
        for sim in sims[1:]:
            assert sim.collision_events == sims[0].collision_events

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_lazy_cross_validated(self, seed):
        make_state = lambda: random_configuration(8, seed=seed)
        sims = paired_simulators(
            make_state, Model.LAZY, cross_validate=True
        )
        rng = random.Random(seed)
        seq = [[rng.choice((R, L, I)) for _ in range(8)] for _ in range(6)]
        assert_rounds_identical(sims, seq)


class TestSimultaneousContacts:
    """Equidistant rings make every collision simultaneous -- the stress
    case for event-count and first-collision agreement."""

    def test_alternating_velocities(self):
        make_state = lambda: equidistant_state(8)
        sims = paired_simulators(
            make_state, Model.PERCEPTIVE, cross_validate=True
        )
        seq = [[R, L] * 4, [L, R] * 4, [R, R, L, L] * 2]
        assert_rounds_identical(sims, seq)
        assert sims[0].collision_events > 0

    def test_symmetric_idle_contacts(self):
        # Movers converge symmetrically on idle agents: simultaneous
        # triple contacts resolved by pairwise exchange.
        make_state = lambda: equidistant_state(9)
        sims = paired_simulators(
            make_state, Model.LAZY, cross_validate=True
        )
        seq = [[R, I, L] * 3, [I, R, L] * 3, [I, I, I] * 3]
        assert_rounds_identical(sims, seq)

    def test_jittered_near_symmetric(self):
        make_state = lambda: jittered_equidistant_configuration(10, seed=3)
        sims = paired_simulators(
            make_state, Model.PERCEPTIVE, cross_validate=True
        )
        rng = random.Random(5)
        seq = [[rng.choice((R, L)) for _ in range(10)] for _ in range(8)]
        assert_rounds_identical(sims, seq)


@pytest.mark.parametrize("backend", DERIVED_BACKENDS)
class TestExternalWrites:
    def test_resyncs_after_restore(self, backend):
        state = random_configuration(7, seed=9, common_sense=True)
        sim = RingSimulator(state, Model.PERCEPTIVE, backend=backend)
        snap = state.snapshot()
        sim.execute([R, L, R, L, R, L, R])
        state.restore(snap)
        # The backend must notice the external write and re-derive its
        # lattice; a stale offset would corrupt every later round.
        out = sim.execute([R] * 7)
        assert state.snapshot() == snap  # all-clockwise unit lap: r = 0
        assert out.rotation_index == 0

    def test_resyncs_after_manual_assignment(self, backend):
        state = random_configuration(6, seed=2, common_sense=True)
        sim = RingSimulator(state, Model.BASIC, backend=backend)
        sim.execute([R, L, R, L, R, L])
        state.positions = [F(i, 6) for i in range(6)]
        ref = RingSimulator(
            random_configuration(6, seed=2, common_sense=True),
            Model.BASIC,
            backend="fraction",
        )
        ref.state.positions = [F(i, 6) for i in range(6)]
        out_l = sim.execute([R, R, R, L, L, L])
        out_f = ref.execute([R, R, R, L, L, L])
        assert out_l.observations == out_f.observations
        assert sim.state.positions == ref.state.positions

    def test_resyncs_between_stretches(self, backend):
        # External writes between fused spans must re-derive the
        # columnar representation too, not just the scalar one.
        from repro.ring.stretch import Stretch

        state = random_configuration(7, seed=9, common_sense=True)
        sim = RingSimulator(state, Model.PERCEPTIVE, backend=backend)
        snap = state.snapshot()
        vec = [R, L, R, L, R, L, R]
        sim.execute_stretch(Stretch.probe_restore(vec))
        assert state.snapshot() == snap
        state.positions = [F(i, 7) for i in range(7)]
        ref = RingSimulator(
            random_configuration(7, seed=9, common_sense=True),
            Model.PERCEPTIVE,
            backend="fraction",
        )
        ref.state.positions = [F(i, 7) for i in range(7)]
        result = sim.execute_stretch(Stretch(vec, 1))
        out_f = ref.execute(vec)
        assert result.observations(0) == out_f.observations
        assert sim.state.positions == ref.state.positions

    def test_snapshot_restore_roundtrip_with_gap_cache(self, backend):
        state = random_configuration(8, seed=4)
        gaps_before = state.gaps()
        snap = state.snapshot()
        sim = RingSimulator(state, Model.BASIC, backend=backend)
        rng = random.Random(7)
        for _ in range(5):
            dirs = [rng.choice((R, L)) for _ in range(8)]
            sim.execute(dirs)
            # Cached gaps must always equal a fresh recomputation.
            fresh = RingSimulator(
                explicit_configuration(
                    positions=state.positions,
                    ids=state.ids,
                    chiralities=state.chiralities,
                    id_bound=state.id_bound,
                ),
                Model.BASIC,
            ).state.gaps()
            assert state.gaps() == fresh
        state.restore(snap)
        assert state.gaps() == gaps_before


class TestBatchedExecution:
    def test_run_fixed_batch_matches_loop(self):
        make_state = lambda: random_configuration(8, seed=12)
        sched_batch = Scheduler(make_state(), Model.PERCEPTIVE)
        sched_loop = Scheduler(make_state(), Model.PERCEPTIVE)
        last = sched_batch.run_fixed(R, k=5)
        for _ in range(5):
            last_loop = sched_loop.run_fixed(R)
        assert sched_batch.rounds == sched_loop.rounds == 5
        assert last == last_loop
        for va, vb in zip(sched_batch.views, sched_loop.views):
            assert va.log == vb.log
        assert (
            sched_batch.state.positions == sched_loop.state.positions
        )

    def test_run_rounds_matches_single_rounds(self):
        make_state = lambda: random_configuration(7, seed=3)
        sched_a = Scheduler(make_state(), Model.BASIC)
        sched_b = Scheduler(make_state(), Model.BASIC)
        flip = {True: R, False: L}
        choose = lambda view: flip[view.agent_id % 2 == 0]
        outcomes = sched_a.run_rounds(choose, 6)
        for _ in range(6):
            sched_b.run_round(choose)
        assert len(outcomes) == 6
        assert sched_a.rounds == sched_b.rounds == 6
        for va, vb in zip(sched_a.views, sched_b.views):
            assert va.log == vb.log

    def test_run_fixed_rejects_nonpositive(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        with pytest.raises(ValueError):
            sched.run_fixed(R, k=0)

    def test_batch_across_backends(self):
        make_state = lambda: random_configuration(9, seed=8)
        outs = {}
        scheds = {}
        for backend in ("fraction",) + DERIVED_BACKENDS:
            sched = Scheduler(
                make_state(), Model.PERCEPTIVE, backend=backend
            )
            outs[backend] = sched.run_fixed(L, k=7)
            scheds[backend] = sched
        assert outs["fraction"] == outs["lattice"] == outs["array"]
        for backend in DERIVED_BACKENDS:
            for va, vb in zip(
                scheds["fraction"].views, scheds[backend].views
            ):
                assert va.log == vb.log


class TestNumpyAbsentFallback:
    """The array backend must degrade to the stdlib ``array`` module --
    bit-exactly -- when ``import numpy`` fails."""

    def _without_numpy(self, monkeypatch):
        import builtins

        from repro.ring import arrayops

        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("numpy disabled for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numpy)
        arrayops.reset_numpy_cache()

    def test_fallback_is_bit_exact(self, monkeypatch):
        from repro.ring import arrayops

        self._without_numpy(monkeypatch)
        try:
            backend = make_backend("array")
            assert backend.np is None
            make_state = lambda: random_configuration(8, seed=21)
            sims = paired_simulators(
                make_state, Model.PERCEPTIVE,
                backends=("fraction", "array"),
            )
            assert sims[1].backend.np is None
            rng = random.Random(3)
            seq = [[rng.choice((R, L)) for _ in range(8)] for _ in range(8)]
            assert_rounds_identical(sims, seq)
        finally:
            monkeypatch.undo()
            arrayops.reset_numpy_cache()

    def test_fallback_fuses_stretches(self, monkeypatch):
        from repro.ring import arrayops
        from repro.ring.stretch import Stretch

        self._without_numpy(monkeypatch)
        try:
            sim = RingSimulator(
                random_configuration(8, seed=21),
                Model.PERCEPTIVE,
                backend="array",
            )
            ref = RingSimulator(
                random_configuration(8, seed=21),
                Model.PERCEPTIVE,
                backend="fraction",
            )
            vec = [R, L, R, L, L, R, R, L]
            result = sim.execute_stretch(Stretch.probe_restore(vec))
            # Fused even without numpy: stdlib-array columns, np unset.
            assert type(result).__name__ == "ArrayStretchResult"
            assert result.np is None
            o1 = ref.execute(vec)
            o2 = ref.execute([d.opposite() for d in vec])
            assert result.observations(0) == o1.observations
            assert result.observations(1) == o2.observations
            assert sim.state.positions == ref.state.positions
        finally:
            monkeypatch.undo()
            arrayops.reset_numpy_cache()

    def test_native_protocols_on_fallback(self, monkeypatch):
        from repro.ring import arrayops

        self._without_numpy(monkeypatch)
        try:
            from repro.api import RingSession

            results = {}
            for backend in ("lattice", "array"):
                session = RingSession(
                    n=8, model="perceptive", backend=backend, seed=13,
                )
                result = session.run("coordination")
                results[backend] = (
                    session.rounds,
                    session.state.snapshot(),
                    [dict(v.memory) for v in session.views],
                    result.to_dict(),
                )
            assert results["lattice"] == results["array"]
        finally:
            monkeypatch.undo()
            arrayops.reset_numpy_cache()


class TestUnanimousMemory:
    def test_agreement_by_equality(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        for view in sched.views:
            view.memory["x"] = F(1, 2)
        assert sched.unanimous_memory("x") == F(1, 2)

    def test_equal_values_with_distinct_reprs_agree(self):
        # repr() comparison would split these: dict printouts differ,
        # but the values are equal.
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        for i, view in enumerate(sched.views):
            view.memory["x"] = {"a": 1, "b": 2} if i % 2 else {"b": 2, "a": 1}
        assert sched.unanimous_memory("x") == {"a": 1, "b": 2}

    def test_disagreement_returns_none(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        for i, view in enumerate(sched.views):
            view.memory["x"] = i
        assert sched.unanimous_memory("x") is None

    def test_missing_key_is_unanimous_none(self):
        sched = Scheduler(random_configuration(6, seed=1), Model.BASIC)
        assert sched.unanimous_memory("nope") is None
