"""Tests for the ASCII space-time renderer."""

from fractions import Fraction

import pytest

from repro.analysis.render import render_round, render_trajectory_summary

F = Fraction


class TestRenderRound:
    def test_dimensions(self):
        out = render_round([F(0), F(1, 2)], [1, -1], width=40, steps=10)
        lines = out.splitlines()
        assert len(lines) == 12  # header + 11 rows
        assert all(len(line) == 2 + 40 + 1 for line in lines[1:])

    def test_agents_appear_every_row(self):
        out = render_round([F(0), F(1, 2)], [1, -1], width=40, steps=8)
        for line in out.splitlines()[1:]:
            body = line[2:-1]
            # Either both glyphs visible or they share a cell.
            assert ("0" in body) or ("1" in body)

    def test_collision_rows_marked(self):
        out = render_round([F(0), F(1, 2)], [1, -1], width=40, steps=8)
        assert "*" in out

    def test_no_collisions_no_marks(self):
        out = render_round(
            [F(0), F(1, 4), F(1, 2)], [1, 1, 1], width=30, steps=6
        )
        assert "*" not in out

    def test_custom_labels(self):
        out = render_round(
            [F(0), F(1, 2)], [1, -1], width=20, steps=4, labels=["A", "B"]
        )
        assert "A" in out and "B" in out

    def test_label_count_validated(self):
        with pytest.raises(ValueError):
            render_round([F(0), F(1, 2)], [1, -1], labels=["A"])

    def test_idle_agent_stays_put_until_struck(self):
        out = render_round(
            [F(0), F(1, 2)], [1, 0], width=40, steps=8
        )
        lines = out.splitlines()[1:]
        col_first = lines[0].index("1")
        col_second = lines[1].index("1")
        assert col_first == col_second  # idle before the hit


class TestTrajectorySummary:
    def test_mentions_all_agents(self):
        out = render_trajectory_summary(
            [F(0), F(1, 4), F(1, 2)], [1, -1, 1]
        )
        assert "agent 0" in out and "agent 2" in out

    def test_no_collision_case(self):
        out = render_trajectory_summary([F(0), F(1, 2)], [1, 1])
        assert "no collision" in out
        assert out.startswith("0 collision events")
