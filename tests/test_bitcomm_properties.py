"""Hypothesis property tests for the communication stack.

The collision-coded channel must deliver arbitrary bit patterns across
arbitrary chirality assignments and geometries -- these sweeps try to
break the decoding logic where unit tests cannot enumerate."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.scheduler import Scheduler
from repro.protocols.bitcomm import (
    KEY_FROM_LEFT,
    KEY_FROM_RIGHT,
    exchange_bits,
    exchange_frame,
    relay_flood,
    received_messages,
)
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.ring.configs import explicit_configuration
from repro.types import Chirality, Model

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def rings(draw, min_n=5, max_n=10):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    denom = 1 << 10
    ticks = sorted(draw(st.sets(
        st.integers(min_value=0, max_value=denom - 1),
        min_size=n, max_size=n,
    )))
    chirs = draw(st.lists(
        st.sampled_from([Chirality.CLOCKWISE, Chirality.ANTICLOCKWISE]),
        min_size=n, max_size=n,
    ))
    state = explicit_configuration(
        positions=[Fraction(t, denom) for t in ticks],
        ids=list(range(1, n + 1)),
        chiralities=chirs,
        id_bound=2 * n,
    )
    return state


def own_neighbor_indices(state, i):
    """(right, left) ring indices in agent i's own frame."""
    step = 1 if state.chiralities[i] is Chirality.CLOCKWISE else -1
    return (i + step) % state.n, (i - step) % state.n


class TestExchangeProperties:
    @SLOW
    @given(rings(), st.data())
    def test_arbitrary_bits_delivered(self, state, data):
        n = state.n
        bits = data.draw(st.lists(
            st.integers(min_value=0, max_value=1), min_size=n, max_size=n
        ))
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        by_id = {state.ids[i]: bits[i] for i in range(n)}
        exchange_bits(sched, lambda view: by_id[view.agent_id])
        for i, view in enumerate(sched.views):
            r, l = own_neighbor_indices(state, i)
            assert view.memory[KEY_FROM_RIGHT] == bits[r]
            assert view.memory[KEY_FROM_LEFT] == bits[l]

    @SLOW
    @given(rings(max_n=8), st.data())
    def test_arbitrary_frames_delivered(self, state, data):
        n = state.n
        values = data.draw(st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=15)),
            min_size=n, max_size=n,
        ))
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        by_id = {state.ids[i]: values[i] for i in range(n)}
        exchange_frame(sched, lambda view: by_id[view.agent_id], width=4)
        for i, view in enumerate(sched.views):
            r, l = own_neighbor_indices(state, i)
            assert view.memory["comm.frame_from_right"] == values[r]
            assert view.memory["comm.frame_from_left"] == values[l]

    @SLOW
    @given(rings(max_n=9), st.data())
    def test_flood_hop_attribution(self, state, data):
        """Every received message's (side, hop) must point back at the
        true source, whatever the chirality pattern."""
        n = state.n
        source_index = data.draw(st.integers(min_value=0, max_value=n - 1))
        distance = data.draw(st.integers(min_value=1, max_value=3))
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        source_id = state.ids[source_index]
        relay_flood(
            sched,
            lambda view: 7 if view.agent_id == source_id else None,
            distance=distance,
            width=3,
        )
        for i, view in enumerate(sched.views):
            for side, hop, value in received_messages(view):
                assert value == 7
                step = 1 if state.chiralities[i] is Chirality.CLOCKWISE else -1
                offset = hop * step if side == "right" else -hop * step
                assert (i + offset) % n == source_index

    @SLOW
    @given(rings(max_n=8))
    def test_exchange_restores_positions(self, state):
        sched = Scheduler(state, Model.PERCEPTIVE)
        discover_neighbors(sched)
        start = sched.state.snapshot()
        exchange_bits(sched, lambda view: view.agent_id & 1)
        assert sched.state.snapshot() == start
