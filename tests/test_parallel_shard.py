"""Sharded single-ring execution: bit-exactness against the serial
array backend, session-level ``shards=`` plumbing, fallback paths, and
leak-free failure handling.

Sharding is a pure execution strategy, so the tests compare *complete*
session fingerprints -- round counts, final positions, agent logs,
memory, protocol results -- between the serial array backend and
sharded backends at 1/2/4 workers.  Thresholds are lowered so the test
rings genuinely exercise the shared-memory path (asserted through the
``sharded_spans`` counter), not the small-ring serial fallback.
"""

from __future__ import annotations

import pytest

from repro.api import RingSession, Stretch
from repro.core.scheduler import Scheduler
from repro.exceptions import ConfigurationError
from repro.parallel import shard as shard_mod
from repro.parallel.shard import ShardedArrayBackend, _shard_bounds
from repro.parallel.shm import _OWNED
from repro.ring.arrayops import get_numpy
from repro.ring.backends import ArrayBackend
from repro.ring.configs import random_configuration
from repro.types import Model

#: Sharding decomposes the *vectorised* span path; without numpy the
#: backend is the (already tier-1-tested) scalar serial path.
pytestmark = pytest.mark.skipif(
    get_numpy() is None, reason="sharding requires numpy"
)


def sharded_backend(shards):
    """A sharded backend whose thresholds let test-sized rings shard."""
    return ShardedArrayBackend(shards=shards, min_n=4, min_cells=8)


def session_fingerprint(session, result):
    sched = session.scheduler
    return (
        sched.rounds,
        sched.state.snapshot(),
        [list(view.log) for view in sched.views],
        [dict(view.memory) for view in sched.views],
        result.to_dict(),
    )


class TestShardBounds:
    def test_balanced_contiguous_cover(self):
        for n, shards in [(10, 3), (8, 4), (7, 1), (5, 5)]:
            bounds = _shard_bounds(n, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            assert all(
                bounds[i][1] == bounds[i + 1][0]
                for i in range(len(bounds) - 1)
            )
            sizes = [hi - lo for lo, hi in bounds]
            assert max(sizes) - min(sizes) <= 1


class TestProtocolBitExactness:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize(
        "protocol,model,n",
        [
            ("coordination", "perceptive", 12),
            ("location-discovery", "perceptive", 12),
            ("coordination", "lazy", 9),
        ],
    )
    def test_sharded_session_matches_serial(
        self, protocol, model, n, shards
    ):
        serial = RingSession(n=n, model=model, backend="array", seed=7)
        reference = session_fingerprint(serial, serial.run(protocol))

        backend = sharded_backend(shards)
        session = RingSession(n=n, model=model, backend=backend, seed=7)
        fingerprint = session_fingerprint(session, session.run(protocol))
        assert backend.sharded_spans > 0  # the shm path really ran
        backend.release_shared()
        assert fingerprint == reference


class TestSpanEquality:
    def directions(self, n):
        row_a = [1 if i % 3 else -1 for i in range(n)]
        row_b = [-s for s in row_a]
        return Stretch(pairs=[(row_a, 3), (row_b, 2), (row_a, 1)])

    def span_columns(self, backend, n):
        state = random_configuration(n=n, seed=5, common_sense=False)
        sched = Scheduler(state, model=Model.PERCEPTIVE, backend=backend)
        result = sched.run_stretch(self.directions(n))
        return (
            list(result.rotations),
            [result.dist_ints(j).tolist() for j in range(result.k)],
            [result.coll_ints(j).tolist() for j in range(result.k)],
            backend.offset,
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_stretch_columns_match_serial(self, shards):
        n = 24
        reference = self.span_columns(ArrayBackend(), n)
        backend = sharded_backend(shards)
        columns = self.span_columns(backend, n)
        if shards > 1:
            assert backend.sharded_spans == 1
        else:
            assert backend.sharded_spans == 0  # one shard: serial path
        backend.release_shared()
        assert columns == reference

    def test_small_ring_falls_back_to_serial(self):
        n = 8
        backend = ShardedArrayBackend(shards=2)  # default thresholds
        columns = self.span_columns(backend, n)
        assert backend.sharded_spans == 0
        assert columns == self.span_columns(ArrayBackend(), n)


class TestSessionShardsOption:
    def test_shards_session_matches_array(self):
        plain = RingSession(n=12, model="perceptive", backend="array",
                            seed=3)
        sharded = RingSession(n=12, model="perceptive", seed=3, shards=2)
        r1 = plain.run("coordination")
        r2 = sharded.run("coordination")
        assert session_fingerprint(sharded, r2) == session_fingerprint(
            plain, r1
        )

    def test_shards_one_is_the_plain_array_backend(self):
        session = RingSession(n=9, model="perceptive", shards=1)
        assert not isinstance(
            session.scheduler.simulator.backend, ShardedArrayBackend
        )

    def test_shards_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            RingSession(n=9, shards=0)

    def test_shards_with_non_array_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            RingSession(n=9, backend="lattice", shards=2)


class TestFailurePaths:
    def test_pool_failure_propagates_without_leaking(self, monkeypatch):
        n = 24
        state = random_configuration(n=n, seed=5, common_sense=False)
        backend = sharded_backend(2)
        sched = Scheduler(state, backend=backend)

        def broken_pool(workers):
            raise RuntimeError("no pool on this box")

        monkeypatch.setattr(shard_mod._pool, "get_pool", broken_pool)
        before = set(_OWNED)
        row = [1 if i % 3 else -1 for i in range(n)]
        with pytest.raises(RuntimeError):
            sched.run_stretch(Stretch(row, 4))
        # the span arena must be gone; only the reusable frozen-mirror
        # share arena may remain, and release_shared drops that too.
        leaked = set(_OWNED) - before
        share = backend._share_arena
        assert leaked <= ({share.name} if share is not None else set())
        backend.release_shared()
        assert set(_OWNED) - before == set()

    def test_shm_unavailable_falls_back_to_serial(self, monkeypatch):
        n = 24
        reference = TestSpanEquality().span_columns(ArrayBackend(), n)
        backend = sharded_backend(2)

        def no_shm(layout):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(shard_mod.ShmArena, "create", no_shm)
        columns = TestSpanEquality().span_columns(backend, n)
        assert backend.sharded_spans == 0
        assert backend._shm_broken is True
        assert columns == reference
