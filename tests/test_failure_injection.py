"""Failure injection across the whole registry: every protocol, under
every fault family, on every model and backend, degrades gracefully.

This replaces the original hand-picked corruption pipelines with a
sweep in the style of ``test_fraction_hygiene.py``: for each
``(protocol, model, backend, fault family)`` combination a seeded
:class:`~repro.faults.plan.FaultPlan` is injected and the run is
placed in the graceful-degradation trichotomy by
:func:`repro.faults.report.classify_spec` -- it must either

* **survive** (complete with a payload byte-identical to the
  fault-free twin's),
* **detect** (raise a :class:`~repro.exceptions.ReproError`), or
* **report** (complete with a visibly different, partial payload).

What the sweep rules out is the fourth outcome: an uncontrolled
non-Repro exception, a hang past the plan's round budget, or a silent
wrong answer indistinguishable from a healthy one.  The old white-box
checks (corrupted leader flags, scrambled frames, inconsistent
equation harvests) are subsumed: the Byzantine ``scramble`` mode
performs exactly those memory corruptions mid-run, for every protocol
at once.
"""

import json

import pytest

from repro.api import RingSession
from repro.api.fleet import SessionSpec
from repro.api.registry import list_protocols
from repro.faults.report import OUTCOMES, classify_spec

MODELS = ("perceptive", "lazy", "basic")
BACKENDS = ("lattice", "fraction", "array")

#: One representative seeded plan per fault family.  Slots are chosen
#: inside every swept ring size; rounds hit each protocol mid-pipeline.
FAULT_FAMILIES = {
    "crash": '{"seed":11,"crashes":{"2":1}}',
    "crash-late": '{"seed":12,"crashes":{"0":6}}',
    "byz-flip": '{"seed":13,"byzantine":{"4":{"round":0,"mode":"flip"}}}',
    "byz-random": '{"seed":14,"byzantine":{"4":{"round":2,"mode":"random"}}}',
    "byz-scramble": '{"seed":15,"byzantine":{"3":{"round":3,"mode":"scramble"}}}',
    "delay": '{"seed":16,"delays":{"5":1}}',
    "budget": '{"seed":17,"max_rounds":12}',
}

#: Infeasible by the paper's impossibility result (Table I).
INFEASIBLE = {("location-discovery", "basic", True)}


def _ring_size(protocol: str, model: str) -> int:
    """n=8 everywhere except combinations infeasible on even rings."""
    return 9 if (protocol, model, True) in INFEASIBLE else 8


def _cases():
    for spec in list_protocols():
        for model in MODELS:
            for family, plan in sorted(FAULT_FAMILIES.items()):
                yield pytest.param(
                    spec.name, model, plan,
                    id=f"{spec.name}-{model}-{family}",
                )


def _backend_cases():
    for spec in list_protocols():
        for backend in BACKENDS:
            yield pytest.param(
                spec.name, backend, id=f"{spec.name}-{backend}"
            )


class TestTrichotomySweep:
    @pytest.mark.parametrize("protocol,model,plan", _cases())
    def test_every_fault_family_degrades_gracefully(
        self, protocol, model, plan
    ):
        spec = SessionSpec(
            n=_ring_size(protocol, model),
            protocol=protocol,
            model=model,
            seed=3,
            faults=plan,
        )
        classification = classify_spec(spec)
        assert classification.outcome in OUTCOMES
        if classification.outcome == "detect":
            assert classification.error_type
            assert classification.result is None
        else:
            assert classification.error_type is None
            assert classification.result is not None
            same = json.dumps(
                classification.result, sort_keys=True
            ) == json.dumps(classification.baseline, sort_keys=True)
            assert same == (classification.outcome == "survive")

    @pytest.mark.parametrize("protocol,backend", _backend_cases())
    def test_classification_is_backend_independent(self, protocol, backend):
        """The trichotomy is a property of the *spec*, not the backend:
        faulted runs execute the same scalar rounds everywhere, so each
        backend lands every scenario in the same bucket with the same
        payload (or the same error type)."""
        spec = SessionSpec(
            n=8,
            protocol=protocol,
            model="perceptive",
            backend=backend,
            seed=5,
            faults=FAULT_FAMILIES["crash"],
        )
        reference = classify_spec(
            SessionSpec(
                n=8, protocol=protocol, model="perceptive", seed=5,
                faults=FAULT_FAMILIES["crash"],
            )
        )
        classification = classify_spec(spec)
        assert classification.outcome == reference.outcome
        assert classification.error_type == reference.error_type
        assert json.dumps(classification.result, sort_keys=True) == (
            json.dumps(reference.result, sort_keys=True)
        )


class TestRoundBudget:
    def test_budget_bounds_every_faulted_run(self):
        """A fault plan cannot make any protocol spin forever: the
        round budget converts a hang into FaultBudgetError."""
        from repro.exceptions import FaultBudgetError

        session = RingSession(
            n=8, model="perceptive", seed=3,
            faults='{"seed":1,"max_rounds":3}',
        )
        with pytest.raises(FaultBudgetError):
            session.run("location-discovery")

    def test_jammed_channel_trips_slot_budget(self):
        """A persistent Byzantine jammer cannot wedge the backoff
        channel: the slot budget trips ProtocolError (detect)."""
        spec = SessionSpec(
            n=8, protocol="contention-backoff", seed=7,
            faults='{"seed":1,"byzantine":{"2":{"round":0,"mode":"flip"}}}',
        )
        classification = classify_spec(spec)
        assert classification.outcome == "detect"
        assert classification.error_type == "ProtocolError"
        assert "budget" in (classification.error_message or "")


class TestPartialResults:
    def test_crashed_transmitter_is_reported_not_hidden(self):
        """A crashed agent's message must surface in ``undelivered`` --
        the partial-result side of the graceful-degradation contract."""
        spec = SessionSpec(
            n=8, protocol="contention-backoff", seed=7,
            faults='{"seed":1,"crashes":{"3":0}}',
        )
        classification = classify_spec(spec)
        assert classification.outcome == "report"
        assert classification.result is not None
        assert classification.result["undelivered"] == [3]
        assert classification.baseline is not None
        assert classification.baseline["undelivered"] == []

    def test_scrambled_channel_mirror_is_detected(self):
        """Byzantine memory corruption of an agent's delivery mirror is
        caught by the end-of-run consensus check, never silently
        folded into the summary."""
        spec = SessionSpec(
            n=8, protocol="contention-aloha", seed=7,
            faults='{"seed":1,"byzantine":{"1":{"round":4,"mode":"scramble"}}}',
        )
        classification = classify_spec(spec)
        assert classification.outcome == "detect"
        assert classification.error_type == "ProtocolError"
