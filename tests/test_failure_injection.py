"""Failure-injection tests: corrupt agent state mid-pipeline and check
the library *detects* the breakage instead of returning wrong answers.

The protocols carry internal consistency checks (consensus assertions,
equation-system contradiction detection, unique-leader verification);
these tests prove the checks actually fire.
"""

import pytest

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError, ReproError, SingularSystemError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LABEL, KEY_LEADER
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
)
from repro.protocols.distances import discover_distances
from repro.protocols.emptiness import emptiness_test
from repro.protocols.leader_election import (
    _unique_leader_id,
    elect_leader_with_nontrivial_move,
)
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.protocols.ring_distance import publish_ring_size, ring_distances
from repro.ring.configs import random_configuration
from repro.types import Model


def perceptive_pipeline_until_labels(n=8, seed=1):
    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE)
    nmove_seeded_family(sched)
    agree_direction_from_nontrivial_move(sched)
    elect_leader_with_nontrivial_move(sched)
    discover_neighbors(sched)
    ring_distances(sched)
    publish_ring_size(sched)
    return sched


class TestLeaderVerification:
    def test_duplicate_leader_flags_detected(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        for view in sched.views:
            view.memory[KEY_LEADER] = True  # corrupt: everyone leads
        with pytest.raises(ProtocolError, match="leaders"):
            _unique_leader_id(sched)

    def test_no_leader_detected(self):
        state = random_configuration(8, seed=0, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        for view in sched.views:
            view.memory[KEY_LEADER] = False
        with pytest.raises(ProtocolError):
            _unique_leader_id(sched)


class TestFrameCorruption:
    def test_scrambled_frames_break_emptiness_consensus_or_answer(self):
        """Flipping one agent's frame bit after agreement either trips
        the consensus check or the probe misfires visibly -- it must
        never silently pass as consensus with a wrong global answer for
        the witness set below."""
        state = random_configuration(9, seed=2, common_sense=False)
        sched = Scheduler(state, Model.BASIC)
        nmove_seeded_family(sched)
        agree_direction_from_nontrivial_move(sched)
        # Corrupt one agent's frame.
        sched.views[3].memory[KEY_FRAME_FLIP] = (
            not sched.views[3].memory[KEY_FRAME_FLIP]
        )
        absent = next(
            x for x in range(1, state.id_bound + 1) if x not in state.ids
        )
        try:
            verdict = emptiness_test(sched, {absent})
        except ReproError:
            return  # detected -- good
        # The corrupted agent moved the wrong way: the round containing
        # only the absent ID is no longer all-one-direction, so the
        # rotation index becomes nonzero and the test reports occupancy.
        # Either way the corruption must not fabricate a *correct* run
        # silently; we accept 'False' (wrong but observable) and reject
        # nothing else.
        assert verdict is False


class TestEquationContradiction:
    def test_corrupted_label_is_caught(self):
        """A wrong ring label makes an agent harvest inconsistent
        equations; the exact solver must refuse rather than emit a
        wrong gap vector."""
        sched = perceptive_pipeline_until_labels(n=8, seed=1)
        # Swap two non-adjacent agents' labels: their equation windows
        # no longer match physical reality.
        views = sched.views
        a, b = views[2], views[5]
        a.memory[KEY_LABEL], b.memory[KEY_LABEL] = (
            b.memory[KEY_LABEL], a.memory[KEY_LABEL]
        )
        with pytest.raises((SingularSystemError, ProtocolError)):
            discover_distances(sched)


class TestBroadcastCorruption:
    def test_divergent_ring_size_detected(self):
        sched = perceptive_pipeline_until_labels(n=8, seed=3)
        from repro.protocols.ring_distance import KEY_IS_LAST

        # Corrupt the announcer's label: the broadcast machinery
        # cross-checks the delivered value against the announcement.
        last = next(v for v in sched.views if v.memory.get(KEY_IS_LAST))
        last.memory[KEY_LABEL] = 3  # wrong n
        value = publish_ring_size(sched)
        # The broadcast itself is consistent (everyone hears 3) -- the
        # corruption surfaces later, in Distances' parity/rank checks.
        assert value == 3
        with pytest.raises(ReproError):
            discover_distances(sched)
