"""Per-module tagging: which invariants bind where.

The paper's math guarantees the repo's speedups only while the code
keeps its discipline (ROADMAP "Keep it honest").  This module is the
machine-readable form of that contract: fnmatch patterns over posix
paths *relative to the package root* (``src/repro``) tag each module
with the rule scopes that apply to it, and
:data:`FRACTION_BOUNDARY_FUNCTIONS` names the few functions that are
*allowed* to touch :class:`~fractions.Fraction` inside a hot module --
the interning constructors and spec-fallback branches that form the
documented integer/Fraction boundary.

One-off sites inside otherwise-hot functions use the inline pragma
(``# lint: allow[rule] -- reason``) instead; see ``docs/LINTING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, FrozenSet, Sequence, Set, Tuple

#: Modules whose round loops are the measured hot paths: no Fraction
#: construction outside the boundary whitelist (rule fraction-hot-path).
HOT_PATH_MODULES: Tuple[str, ...] = (
    "ring/backends.py",
    "ring/arrayops.py",
    "analysis/int_equations.py",
    "protocols/policies/*.py",
    # The zero-copy execution layer moves raw int64 columns between
    # processes; a Fraction anywhere in it would mean a pickled object
    # column snuck into the shared-memory seam.
    "parallel/*.py",
    # The run store sits on every cached fleet's hot path and handles
    # results only as their JSON payloads ("p/q" strings); a Fraction
    # here would mean a payload was parsed where it should have been
    # passed through byte-identically.
    "store/*.py",
    # The fault layer rewrites direction vectors inside the per-round
    # injection seam and adjudicates channel slots; it works purely on
    # enums, ints and bools -- a Fraction here would mean adversarial
    # state leaked into the kinematics it is supposed to sit above.
    "faults/*.py",
)

#: Modules whose arithmetic feeds the Z/(2D) tick grid: float literals
#: and int/int true division are taint (rule float-taint).
TICK_GRID_MODULES: Tuple[str, ...] = ("ring/*.py",)

#: Native-policy modules: decide()/finalize/stop-predicate bodies must
#: stay columnar (rule per-agent-loop).
NATIVE_POLICY_MODULES: Tuple[str, ...] = ("protocols/policies/*.py",)

#: The single module allowed to import numpy; everything else goes
#: through repro.ring.arrayops.get_numpy (rule numpy-gate).
NUMPY_GATE_MODULE = "ring/arrayops.py"

#: Functions allowed to construct Fractions inside hot modules: the
#: interning constructors and the Fraction-spec fallback branches that
#: form the documented integer boundary.  Keyed by module path; values
#: are dotted qualnames within the module.
FRACTION_BOUNDARY_FUNCTIONS: Dict[str, FrozenSet[str]] = {
    "ring/backends.py": frozenset({
        # Interned Fraction(num, scale) / Fraction(num, 2*scale)
        # constructors -- the only mint for observation rationals.
        "LatticeBackend._frac1",
        "LatticeBackend._frac2",
        # Observation materialisation: the intern-miss constructor
        # sites of the per-round observation caches.
        "LatticeBackend.execute_round",
    }),
    "analysis/int_equations.py": frozenset({
        # solve() folds integer num/den pairs and makes exactly one
        # Fraction constructor call per unknown (documented boundary).
        "IntEquationSystem.solve",
        # cross_check= shadow: mirrors rows into the Fraction spec
        # engine on purpose.
        "IntEquationSystem._spec_equation",
    }),
    "protocols/policies/base.py": frozenset({
        # Common-frame conversion for the scalar (non-columnar) paths.
        "common_dists",
    }),
    "protocols/policies/distances.py": frozenset({
        # Materialised-round fallback: recovers numerators from
        # interned Fraction observations.
        "_round_columns",
    }),
    "protocols/policies/location_discovery.py": frozenset({
        # Lazy gap columns materialise interned Fractions on read.
        "_GapHarvest.column",
        # Slot-0 predicate value on the materialised fallback path.
        "_slot0_common",
        # Gap-block interning plus the eager Fraction-spec harvest.
        "_harvest_block",
    }),
}

#: Method names whose bodies the per-agent-loop rule inspects.
POLICY_LOOP_SCOPES: FrozenSet[str] = frozenset({"decide", "finalize"})

#: Function-name suffixes treated as speculative stop predicates (in
#: addition to functions literally wired into SpeculativeStretch).
PREDICATE_NAME_MARKERS: Tuple[str, ...] = ("_predicate", "_stop")
PREDICATE_NAMES: FrozenSet[str] = frozenset({"stop"})

#: Names that root simulation state inside a stop predicate; storing
#: through them (or calling mutators on them) breaks the read-only
#: predicate contract (rule speculative-contract).
SPECULATIVE_GUARDED_NAMES: FrozenSet[str] = frozenset({
    "state", "sched", "scheduler", "population", "pop", "sim",
    "simulator", "backend",
})

#: ``self.<attr>`` chains with these attrs are guarded the same way.
SPECULATIVE_GUARDED_SELF_ATTRS: FrozenSet[str] = frozenset({
    "sched", "scheduler", "population", "state", "sim", "simulator",
    "backend",
})

#: Method names (exact) that mutate their receiver.
MUTATING_METHOD_NAMES: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "remove", "discard", "clear",
    "update", "sort", "reverse", "write", "pop", "popleft", "push",
    "add",
})

#: Method-name prefixes that mutate their receiver.
MUTATING_METHOD_PREFIXES: Tuple[str, ...] = (
    "set_", "push_", "commit", "apply_", "record_", "skip_", "run_",
    "advance", "resync", "rotate_", "mutate",
)

#: Module-level ``random.<fn>`` calls that read or reseed the shared
#: global generator (rule nondeterminism).  Seeded ``random.Random(x)``
#: instances are the sanctioned source of randomness.
GLOBAL_RANDOM_BANNED: FrozenSet[str] = frozenset({
    "random", "seed", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "getrandbits", "betavariate",
    "gauss", "normalvariate", "vonmisesvariate", "expovariate",
    "triangular",
})

#: Wall-clock reads: banned everywhere on RunReport-producing paths.
WALL_CLOCK_ATTRS: FrozenSet[str] = frozenset({"time", "time_ns"})


def matches(path: str, patterns: Sequence[str]) -> bool:
    """Whether the package-relative posix ``path`` matches any pattern."""
    return any(fnmatch(path, pattern) for pattern in patterns)


@dataclass(frozen=True)
class LintConfig:
    """The rule scoping knobs, overridable for tests and fixtures."""

    hot_path_modules: Tuple[str, ...] = HOT_PATH_MODULES
    tick_grid_modules: Tuple[str, ...] = TICK_GRID_MODULES
    native_policy_modules: Tuple[str, ...] = NATIVE_POLICY_MODULES
    numpy_gate_module: str = NUMPY_GATE_MODULE
    fraction_boundary: Dict[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(FRACTION_BOUNDARY_FUNCTIONS)
    )

    def is_hot(self, path: str) -> bool:
        return matches(path, self.hot_path_modules)

    def is_tick_grid(self, path: str) -> bool:
        return matches(path, self.tick_grid_modules)

    def is_native_policy(self, path: str) -> bool:
        return matches(path, self.native_policy_modules)

    def is_numpy_gate(self, path: str) -> bool:
        return path == self.numpy_gate_module

    def fraction_whitelist(self, path: str) -> FrozenSet[str]:
        return self.fraction_boundary.get(path, frozenset())


DEFAULT_CONFIG = LintConfig()
