"""Rule ``speculative-contract``: stop predicates are read-only.

A :class:`~repro.ring.stretch.SpeculativeStretch` predicate is called
*after* the backend has optimistically advanced the whole span: on the
array backend all rounds beyond the firing one are rolled back by a
rotation-offset rewind, and on scalar backends the predicate runs
interleaved round by round.  The two executions are bit-exact only if
the predicate observes the emitted columns without touching simulation
state -- a predicate that writes through the scheduler, population or
ring state would bake rolled-back rounds into live state on one
backend but not the other.

Predicates may (and do) mutate their *own* closure state -- running
sums, per-slot equation systems, harvest buffers.  What they must not
do, and what this rule flags inside any function wired into a
``SpeculativeStretch(stop=...)`` (or named ``stop`` / ``*_predicate``
/ ``*_stop`` in a module that uses SpeculativeStretch):

* attribute or subscript stores rooted at simulation-state names
  (``state``, ``sched``, ``population``, ... or ``self.sched`` /
  ``self.population`` / ... chains), and ``del`` of the same;
* calls to mutating methods (``set_*``, ``push*``, ``commit*``,
  ``append``, ``update``, ...) on those roots or on the stretch
  outcome the predicate receives as its first argument.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.astutil import FunctionNode, root_of, scoped_functions
from repro.lint.config import (
    MUTATING_METHOD_NAMES,
    MUTATING_METHOD_PREFIXES,
    PREDICATE_NAME_MARKERS,
    SPECULATIVE_GUARDED_NAMES,
    SPECULATIVE_GUARDED_SELF_ATTRS,
)
from repro.lint.rules import Rule, register


def _mutating_name(attr: str) -> bool:
    return attr in MUTATING_METHOD_NAMES or attr.startswith(
        MUTATING_METHOD_PREFIXES
    )


def _guarded(node: ast.AST, extra: Set[str]) -> Optional[str]:
    """The guarded root behind ``node``'s access chain, if any.

    ``state.x`` -> "state"; ``self.sched.state.x`` -> "self.sched";
    ``result.y`` (first predicate arg) -> its name; else None.
    """
    # Peel the chain down to its base, tracking one self.<attr> hop.
    base = node
    while isinstance(base, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(base, ast.Attribute) and isinstance(
            base.value, ast.Name
        ):
            if base.value.id == "self" and (
                base.attr in SPECULATIVE_GUARDED_SELF_ATTRS
            ):
                return f"self.{base.attr}"
            break
        base = (
            base.value
            if isinstance(base, (ast.Attribute, ast.Subscript))
            else base.func
        )
    root = root_of(node)
    if root is not None and (
        root.id in SPECULATIVE_GUARDED_NAMES or root.id in extra
    ):
        return root.id
    return None


def _predicate_functions(tree: ast.Module) -> List[ast.AST]:
    """Functions wired into SpeculativeStretch(stop=...) plus any
    conventionally named predicates in a module that builds one."""
    uses_speculative = any(
        isinstance(node, ast.Name) and node.id == "SpeculativeStretch"
        for node in ast.walk(tree)
    )
    if not uses_speculative:
        return []
    by_name = {}
    for qualname, fn in scoped_functions(tree):
        by_name.setdefault(fn.name, []).append(fn)
    predicates: List[ast.AST] = []
    seen: Set[int] = set()

    def add(fn: ast.AST) -> None:
        if id(fn) not in seen:
            seen.add(id(fn))
            predicates.append(fn)

    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "SpeculativeStretch"
        ):
            continue
        for keyword in node.keywords:
            if keyword.arg != "stop":
                continue
            value = keyword.value
            if isinstance(value, ast.Lambda):
                add(value)
            elif isinstance(value, ast.Name):
                for fn in by_name.get(value.id, ()):
                    add(fn)
    for qualname, fn in scoped_functions(tree):
        if fn.name == "stop" or fn.name.endswith(PREDICATE_NAME_MARKERS):
            add(fn)
    return predicates


@register
class SpeculativeContract(Rule):
    name = "speculative-contract"
    severity = "error"
    description = (
        "SpeculativeStretch stop predicate mutates simulation state "
        "(must be read-only over the emitted columns)"
    )

    def check(self, ctx) -> Iterable:
        for fn in _predicate_functions(ctx.tree):
            if isinstance(fn, ast.Lambda):
                first_arg = (
                    fn.args.args[0].arg if fn.args.args else None
                )
                body: List[ast.AST] = [fn.body]
                label = "<lambda predicate>"
            else:
                first_arg = (
                    fn.args.args[0].arg if fn.args.args else None
                )
                body = list(fn.body)
                label = fn.name
            extra = {first_arg} if first_arg else set()
            stack = list(body)
            while stack:
                node = stack.pop()
                if isinstance(node, FunctionNode):
                    continue  # nested defs are scoped on their own
                targets: List[ast.AST] = []
                if isinstance(node, (ast.Assign, ast.Delete)):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ):
                        root = _guarded(target, extra)
                        if root is not None:
                            yield ctx.finding(
                                node, self.name, self.severity,
                                f"stop predicate {label} stores "
                                f"through {root}: predicates run "
                                "against optimistically-executed "
                                "rounds that may be rolled back -- "
                                "they must be read-only over the "
                                "emitted columns",
                            )
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if _mutating_name(node.func.attr):
                        root = _guarded(node.func.value, extra)
                        if root is not None:
                            yield ctx.finding(
                                node, self.name, self.severity,
                                f"stop predicate {label} calls "
                                f"{root}.{node.func.attr}(...): "
                                "predicates must not mutate "
                                "simulation state or the stretch "
                                "outcome",
                            )
                stack.extend(ast.iter_child_nodes(node))
