"""The rule registry.

A rule is a class with ``name`` / ``severity`` / ``description`` and a
``check(ctx)`` generator of findings; ``applies(ctx)`` scopes it to the
modules its invariant binds (hot paths, ring kinematics, native
policies, ...).  Decorating with :func:`register` adds an instance to
the registry; :func:`all_rules` hands the engine every registered rule
(or a named subset), and :func:`rule_catalogue` renders the registry
into the schema-v1 document so a findings JSON is self-describing.

Adding a rule: drop a module in this package, subclass :class:`Rule`,
decorate with ``@register``, import it at the bottom of this file, and
give it a fixture in ``tests/lint_fixtures/`` proving it fires (the
fixture test fails on registered rules without one).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Type

if TYPE_CHECKING:  # circular only at type-check time
    from repro.lint.engine import ModuleContext
    from repro.lint.findings import Finding


class Rule:
    """Base class: one invariant, checked per module."""

    name: str = ""
    severity: str = "error"
    description: str = ""

    def applies(self, ctx: "ModuleContext") -> bool:
        """Whether this rule's invariant binds ``ctx``'s module."""
        return True

    def check(self, ctx: "ModuleContext") -> Iterable["Finding"]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and file the rule (name-keyed;
    last registration wins, like the protocol registry)."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    """Registered rules, name-sorted; ``names`` selects a subset."""
    if names is None:
        return [_REGISTRY[name] for name in sorted(_REGISTRY)]
    selected = []
    for name in names:
        if name not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown lint rule {name!r}; known: {known}")
        selected.append(_REGISTRY[name])
    return selected


def rule_catalogue() -> Dict[str, Dict[str, str]]:
    """Name -> {severity, description} for the findings document,
    including the pragma meta-rules the engine itself emits."""
    from repro.lint.pragmas import PRAGMA_RULE, PRAGMA_UNUSED_RULE

    catalogue = {
        name: {
            "severity": rule.severity,
            "description": rule.description,
        }
        for name, rule in sorted(_REGISTRY.items())
    }
    catalogue[PRAGMA_RULE] = {
        "severity": "error",
        "description": "malformed suppression pragma (missing "
        "justification, unknown rule, or bad syntax)",
    }
    catalogue[PRAGMA_UNUSED_RULE] = {
        "severity": "warning",
        "description": "well-formed pragma that suppressed nothing",
    }
    return catalogue


# Rule modules register on import, in name order.
from repro.lint.rules import float_taint  # noqa: E402,F401
from repro.lint.rules import fraction_hot_path  # noqa: E402,F401
from repro.lint.rules import nondeterminism  # noqa: E402,F401
from repro.lint.rules import numpy_gate  # noqa: E402,F401
from repro.lint.rules import per_agent_loop  # noqa: E402,F401
from repro.lint.rules import speculative_contract  # noqa: E402,F401
