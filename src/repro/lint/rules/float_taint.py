"""Rule ``float-taint``: the tick grid is exact; floats never touch it.

Every collision time and place in a round lands on the ``Z/(2D)`` tick
grid (ROADMAP: the event engine runs pure-int heap keys on a
``1/(4D)`` grid), and backend equivalence is *bit*-exact -- one float
rounding anywhere in ``ring/`` and the property tests' guarantees are
gone in a way that only shows up on awkward denominators.

Flagged in the tick-grid modules:

* float and complex literals (``0.5`` instead of ``Fraction(1, 2)``);
* calls to ``float(...)``;
* true division of two integer literals (``1 / 2`` is ``0.5``; exact
  code divides Fractions or keeps integer numerators).

Division of Fraction values stays exact and is not flagged -- the rule
targets the shapes that *create* floats.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.rules import Rule, register


def _is_int_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return type(node.value) is int
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_int_literal(node.operand)
    return False


@register
class FloatTaint(Rule):
    name = "float-taint"
    severity = "error"
    description = (
        "float literal, float() call, or int/int true division in a "
        "tick-grid (ring kinematics) module"
    )

    def applies(self, ctx) -> bool:
        return ctx.config.is_tick_grid(ctx.path)

    def check(self, ctx) -> Iterable:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and type(node.value) in (
                float, complex,
            ):
                yield ctx.finding(
                    node, self.name, self.severity,
                    f"{type(node.value).__name__} literal "
                    f"{node.value!r} in a tick-grid module; collision "
                    "kinematics are exact rationals on Z/(2D) -- use "
                    "Fraction or integer numerators",
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ) and node.func.id == "float":
                if ctx.in_annotation(node):
                    continue
                yield ctx.finding(
                    node, self.name, self.severity,
                    "float() call in a tick-grid module taints the "
                    "exact Z/(2D) grid",
                )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Div
            ):
                if _is_int_literal(node.left) and _is_int_literal(
                    node.right
                ):
                    yield ctx.finding(
                        node, self.name, self.severity,
                        "true division of integer literals produces a "
                        "float; use Fraction(a, b) or keep integer "
                        "numerators",
                    )
