"""Rule ``per-agent-loop``: native policies stay columnar.

The native phase drivers exist so that a whole round (or a whole fused
span) costs one Python call; a scalar ``for view in views`` /
``for i in range(state.n)`` loop inside a native ``decide``,
``finalize`` or speculative stop-predicate body reintroduces the O(n)
per-agent dispatch the policy layer was built to remove -- and it does
so silently, because results stay bit-exact while n=10^5 runs crawl.

Scope: ``decide`` / ``finalize`` method bodies and stop-predicate
functions (named ``stop`` or ``*_predicate`` / ``*_stop``) in the
native policy modules.  Flagged iterations: any ``for`` statement or
comprehension whose iterable mentions ``views``, or calls ``range`` /
``enumerate`` / ``zip`` over something derived from a population size
(``*.n``, bare ``n``, ``len(views)``).

Legitimate scalar sites -- numpy-absent fallbacks, per-slot equation
systems -- carry a pragma explaining why they are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.astutil import FunctionNode, scoped_functions
from repro.lint.config import POLICY_LOOP_SCOPES, PREDICATE_NAME_MARKERS
from repro.lint.rules import Rule, register

_LOOPY = (
    ast.For, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
)


def _is_population_sized(expr: ast.AST) -> Optional[str]:
    """A description of why ``expr`` iterates per agent, or None."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and sub.id == "views":
            return "iterates over views"
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name) and func.id == "range":
                for arg in sub.args:
                    for inner in ast.walk(arg):
                        if (
                            isinstance(inner, ast.Attribute)
                            and inner.attr == "n"
                        ):
                            return (
                                "iterates range("
                                + ast.unparse(arg) + ")"
                            )
                        if (
                            isinstance(inner, ast.Name)
                            and inner.id == "n"
                        ):
                            return (
                                "iterates range("
                                + ast.unparse(arg) + ")"
                            )
    return None


def _predicate_like(name: str) -> bool:
    return name in POLICY_LOOP_SCOPES or name == "stop" or name.endswith(
        PREDICATE_NAME_MARKERS
    )


@register
class PerAgentLoop(Rule):
    name = "per-agent-loop"
    severity = "error"
    description = (
        "scalar per-agent iteration inside a native decide/finalize/"
        "stop-predicate body"
    )

    def applies(self, ctx) -> bool:
        return ctx.config.is_native_policy(ctx.path)

    def check(self, ctx) -> Iterable:
        for qualname, fn in scoped_functions(ctx.tree):
            leaf = qualname.rsplit(".", 1)[-1]
            if not _predicate_like(leaf):
                continue
            # Walk this body only, without descending into nested
            # defs that are themselves scoped separately.
            stack = list(ast.iter_child_nodes(fn))
            while stack:
                node = stack.pop()
                if isinstance(node, FunctionNode):
                    continue  # scoped separately by the outer loop
                if isinstance(node, _LOOPY):
                    iters = (
                        [node.iter]
                        if isinstance(node, ast.For)
                        else [gen.iter for gen in node.generators]
                    )
                    for it in iters:
                        why = _is_population_sized(it)
                        if why is not None:
                            yield ctx.finding(
                                node, self.name, self.severity,
                                f"{qualname} {why}: one Python "
                                "iteration per agent on the native "
                                "decision path -- compute the column "
                                "in one vectorised pass, or pragma "
                                "the scalar fallback",
                            )
                            break
                stack.extend(ast.iter_child_nodes(node))
