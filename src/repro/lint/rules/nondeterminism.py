"""Rule ``nondeterminism``: RunReports stay bit-identical.

Fleet results are bit-identical across executors and worker counts,
which is what makes every run content-addressable (ROADMAP open item
1's result cache).  That property dies the moment any
RunReport-producing path reads ambient state.  Banned everywhere in
the package:

* wall-clock reads: ``time.time`` / ``time.time_ns`` (and importing
  them by name) -- benchmarks time with ``perf_counter``, results
  never carry wall-clock values;
* the shared global random generator: module-level ``random.<fn>()``
  calls and ``from random import <fn>`` -- randomness flows through
  explicitly seeded ``random.Random(seed)`` instances;
* unseeded ``random.Random()`` -- seeds from OS entropy;
* ``id(...)`` used as a dict key (subscript or dict-literal key):
  CPython addresses vary across processes, so any iteration or
  serialisation keyed on them is run-dependent.  Key by
  ``view.agent_id`` (unique, stable) instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.config import GLOBAL_RANDOM_BANNED, WALL_CLOCK_ATTRS
from repro.lint.rules import Rule, register


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@register
class Nondeterminism(Rule):
    name = "nondeterminism"
    severity = "error"
    description = (
        "ambient-state read (wall clock, global random, unseeded "
        "Random, id()-keyed dict) on a RunReport-producing path"
    )

    def check(self, ctx) -> Iterable:
        for node in ast.walk(ctx.tree):
            # -- wall clock ------------------------------------------
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "time" and (
                node.attr in WALL_CLOCK_ATTRS
            ):
                yield ctx.finding(
                    node, self.name, self.severity,
                    f"time.{node.attr} read; results must not depend "
                    "on the wall clock (benchmarks use perf_counter)",
                )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_ATTRS:
                            yield ctx.finding(
                                node, self.name, self.severity,
                                f"importing time.{alias.name}; results "
                                "must not depend on the wall clock",
                            )
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in GLOBAL_RANDOM_BANNED:
                            yield ctx.finding(
                                node, self.name, self.severity,
                                f"importing random.{alias.name} binds "
                                "the shared global generator; use a "
                                "seeded random.Random(seed) instance",
                            )
            # -- global random ---------------------------------------
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "random" and (
                node.attr in GLOBAL_RANDOM_BANNED
            ):
                yield ctx.finding(
                    node, self.name, self.severity,
                    f"random.{node.attr} uses the shared global "
                    "generator (seeded once per process); use a "
                    "seeded random.Random(seed) instance",
                )
            # -- unseeded Random() -----------------------------------
            elif isinstance(node, ast.Call):
                func = node.func
                is_random_ctor = (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr == "Random"
                ) or (
                    isinstance(func, ast.Name) and func.id == "Random"
                )
                if (
                    is_random_ctor
                    and not node.args
                    and not node.keywords
                ):
                    yield ctx.finding(
                        node, self.name, self.severity,
                        "Random() without a seed draws from OS "
                        "entropy; every generator takes an explicit "
                        "seed",
                    )
            # -- id()-keyed dicts ------------------------------------
            if isinstance(node, ast.Subscript) and _is_id_call(
                node.slice
            ):
                yield ctx.finding(
                    node, self.name, self.severity,
                    "dict access keyed by id(...): object addresses "
                    "vary across processes; key by a stable value "
                    "(e.g. view.agent_id)",
                )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        yield ctx.finding(
                            key, self.name, self.severity,
                            "dict literal keyed by id(...): object "
                            "addresses vary across processes; key by "
                            "a stable value (e.g. view.agent_id)",
                        )
