"""Rule ``fraction-hot-path``: no Fraction work in hot modules.

The ~35x array-over-lattice and ~11x int-over-Fraction speedups (see
``BENCH_*.json``) exist because the tagged hot modules run on integer
numerators over a shared denominator; a stray ``Fraction(...)`` in one
of them silently reverts a hot path to arbitrary-precision rational
arithmetic.  This rule flags every load of the ``Fraction`` name in a
hot module -- construction, aliasing, or passing it around -- outside

* the whitelisted interning/boundary functions
  (:data:`repro.lint.config.FRACTION_BOUNDARY_FUNCTIONS`), where
  Fractions are *supposed* to be minted (observation interning, the
  one-constructor-per-unknown ``solve`` fold, spec fallbacks), and
* type annotations (not runtime constructions; the package uses
  ``from __future__ import annotations`` throughout).

The runtime counterpart is the profiled zero-Fraction-dunder sweep in
``tests/test_fraction_hygiene.py``; this rule catches the regression
before it ever runs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.astutil import enclosing_map, in_scope
from repro.lint.rules import Rule, register


@register
class FractionOnHotPath(Rule):
    name = "fraction-hot-path"
    severity = "error"
    description = (
        "Fraction used in a hot-path module outside the whitelisted "
        "interning/boundary functions"
    )

    def applies(self, ctx) -> bool:
        return ctx.config.is_hot(ctx.path)

    def check(self, ctx) -> Iterable:
        whitelist = ctx.config.fraction_whitelist(ctx.path)
        owner = enclosing_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Name) or node.id != "Fraction":
                continue
            if ctx.in_annotation(node):
                continue
            scope = owner.get(id(node), "")
            if in_scope(scope, whitelist):
                continue
            where = f"in {scope}" if scope else "at module level"
            yield ctx.finding(
                node, self.name, self.severity,
                f"Fraction used {where} of hot module {ctx.path}; hot "
                "paths run on integer numerators over a shared "
                "denominator -- intern at the boundary or whitelist "
                "the function in repro.lint.config",
            )
