"""Rule ``numpy-gate``: numpy is optional; one module imports it.

The array backend degrades to stdlib ``array`` buffers when numpy is
absent, and CI runs a whole no-numpy axis to prove it.  That axis only
means something while every numpy import in the package funnels
through :func:`repro.ring.arrayops.get_numpy` -- the probe the
fallback tests monkeypatch.  A direct ``import numpy`` anywhere else
either breaks numpy-less hosts (top level) or silently bypasses the
gate's cache and the tests' forced-absence hook (function level), so
both are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.rules import Rule, register


@register
class NumpyGate(Rule):
    name = "numpy-gate"
    severity = "error"
    description = (
        "numpy imported outside the get_numpy gate module "
        "(ring/arrayops.py)"
    )

    def applies(self, ctx) -> bool:
        return not ctx.config.is_numpy_gate(ctx.path)

    def check(self, ctx) -> Iterable:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "numpy":
                        yield ctx.finding(
                            node, self.name, self.severity,
                            "direct numpy import bypasses the "
                            "get_numpy gate (numpy is optional; the "
                            "no-numpy CI axis monkeypatches the "
                            "gate's probe)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "numpy":
                    yield ctx.finding(
                        node, self.name, self.severity,
                        "direct numpy import bypasses the get_numpy "
                        "gate (numpy is optional; the no-numpy CI "
                        "axis monkeypatches the gate's probe)",
                    )
