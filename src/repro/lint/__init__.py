"""``repro lint``: AST-based invariant checks for the whole stack.

The repo's speedups rest on invariants the paper's math guarantees
only while the code keeps its discipline (ROADMAP "Keep it honest"):
exact rationals on the tick grid, no Fraction work on hot paths,
columnar native policies, deterministic RunReports, optional numpy
behind one gate, read-only speculative predicates.  This package makes
that contract machine-checked: a rule registry over stdlib ``ast``,
per-module hot-path tagging, findings with ``file:line`` spans and
severities, a schema-v1 JSON document, and a justification-carrying
suppression pragma (``# lint: allow[rule] -- reason``).

Run it as ``python -m repro lint [--json] [--baseline FILE]``; the
tier-1 suite keeps the real tree at zero unsuppressed findings.  See
``docs/LINTING.md`` for the rules and how to add one.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import (
    PACKAGE_ROOT,
    LintResult,
    ModuleContext,
    lint_package,
    lint_paths,
    lint_source,
)
from repro.lint.findings import (
    SCHEMA,
    Finding,
    baseline_keys,
    new_findings,
    to_document,
)
from repro.lint.pragmas import PRAGMA_RULE, PRAGMA_UNUSED_RULE
from repro.lint.rules import Rule, all_rules, register, rule_catalogue

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "PACKAGE_ROOT",
    "PRAGMA_RULE",
    "PRAGMA_UNUSED_RULE",
    "Rule",
    "SCHEMA",
    "all_rules",
    "baseline_keys",
    "lint_package",
    "lint_paths",
    "lint_source",
    "new_findings",
    "register",
    "rule_catalogue",
    "to_document",
]
