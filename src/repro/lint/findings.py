"""Finding records and the schema-v1 findings document.

A :class:`Finding` is one rule hit: a ``path:line:col`` span, the rule
name, a severity and a human message.  Findings sort by location so
every rendering of the same tree is byte-stable -- CI diffs of the
``--json`` document stay reviewable.

The JSON document (:func:`to_document`) is versioned
(``repro.lint.findings/v1``) and round-trips: the output of
``python -m repro lint --json`` is itself a valid ``--baseline`` input
(see :func:`baseline_keys` / :func:`new_findings`).  Baselines match on
``(rule, path, message)`` -- line numbers drift when unrelated code
moves, the triple does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

SCHEMA = "repro.lint.findings/v1"

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source span."""

    path: str  # posix path relative to the package root
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    rule: str
    severity: str
    message: str
    #: Suppression note: None while active; the justification text of
    #: the ``lint: allow`` pragma that claimed it otherwise.
    reason: Optional[str] = None

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line drift."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.reason is not None:
            data["reason"] = self.reason
        return data

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Canonical order: by location, then rule -- byte-stable output."""
    return sorted(findings)


def to_document(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    files: int,
    rules: Dict[str, Dict[str, str]],
    root: str,
) -> Dict[str, object]:
    """The schema-v1 findings document for ``--json`` output."""
    findings = sort_findings(findings)
    suppressed = sort_findings(suppressed)
    return {
        "schema": SCHEMA,
        "root": root,
        "files": files,
        "rules": rules,
        "findings": [f.to_dict() for f in findings],
        "suppressed": [f.to_dict() for f in suppressed],
        "summary": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(
                1 for f in findings if f.severity == "warning"
            ),
            "suppressed": len(suppressed),
        },
    }


def baseline_keys(document: Dict[str, object]) -> Set[Tuple[str, str, str]]:
    """The finding identities recorded in a schema-v1 document."""
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"baseline document has schema {schema!r}, expected {SCHEMA!r}"
        )
    keys = set()
    for entry in document.get("findings", ()):
        keys.add((entry["rule"], entry["path"], entry["message"]))
    return keys


def new_findings(
    findings: Sequence[Finding], baseline: Dict[str, object]
) -> List[Finding]:
    """Findings not present in the baseline document."""
    known = baseline_keys(baseline)
    return [f for f in findings if f.key() not in known]
