"""The suppression pragma: ``# lint: allow[rule] -- reason``.

A pragma must carry a justification -- the reason after ``--`` is
mandatory, and a pragma without one is itself a finding (the point of
the linter is that every exemption is documented in place).  Placement
is strict:

* a *trailing* pragma (sharing a line with code) suppresses findings
  anchored to that line;
* an *own-line* pragma (comment-only line) suppresses findings on the
  line directly below it;
* anywhere else it suppresses nothing (and is reported as unused).

Several rules may share one pragma: ``allow[rule-a, rule-b]``.
Comments are discovered with :mod:`tokenize`, so pragma-looking text
inside string literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding

#: Meta-rule: malformed pragmas (missing reason, unknown rule, bad
#: syntax).  Errors -- a broken exemption must not pass silently.
PRAGMA_RULE = "pragma"
#: Meta-rule: a well-formed pragma that suppressed nothing (warning).
PRAGMA_UNUSED_RULE = "pragma-unused"

_PRAGMA_MARK = re.compile(r"#\s*lint\s*:")
_PRAGMA = re.compile(
    r"#\s*lint\s*:\s*allow\s*\[(?P<rules>[^\]]*)\]"
    r"\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int  # line the comment sits on (1-based)
    own_line: bool  # comment-only line (applies to the next line)
    rules: Tuple[str, ...]
    reason: str

    @property
    def target_line(self) -> int:
        return self.line + 1 if self.own_line else self.line


def _comments(source: str) -> Iterable[Tuple[int, int, str, str]]:
    """Yield ``(line, col, text, source_line)`` per comment token."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield (
                    token.start[0], token.start[1], token.string,
                    token.line,
                )
    except (tokenize.TokenError, IndentationError):
        # The AST parse reports syntax problems; pragmas just stop at
        # the broken point.
        return


def parse_pragmas(
    source: str, path: str, known_rules: Iterable[str]
) -> Tuple[List[Pragma], List[Finding]]:
    """Extract the file's pragmas; malformed ones become findings."""
    known = set(known_rules)
    pragmas: List[Pragma] = []
    problems: List[Finding] = []

    def problem(line: int, col: int, message: str) -> None:
        problems.append(Finding(
            path=path, line=line, col=col, rule=PRAGMA_RULE,
            severity="error", message=message,
        ))

    for line, col, text, source_line in _comments(source):
        if not _PRAGMA_MARK.search(text):
            continue
        match = _PRAGMA.search(text)
        if match is None:
            problem(
                line, col,
                "unrecognised lint pragma; the form is "
                "'# lint: allow[rule] -- reason'",
            )
            continue
        names = tuple(
            name.strip()
            for name in match.group("rules").split(",")
            if name.strip()
        )
        reason = match.group("reason")
        ok = True
        if not names:
            problem(line, col, "lint pragma allows no rules")
            ok = False
        for name in names:
            if name not in known:
                problem(
                    line, col,
                    f"lint pragma allows unknown rule {name!r}",
                )
                ok = False
        if not reason:
            problem(
                line, col,
                "lint pragma without a justification; write "
                "'# lint: allow[" + ", ".join(names or ("rule",))
                + "] -- why this site is exempt'",
            )
            ok = False
        if not ok:
            continue  # a broken pragma never suppresses
        own_line = source_line[:col].strip() == ""
        pragmas.append(Pragma(line, own_line, names, reason))
    return pragmas, problems


def apply_pragmas(
    findings: List[Finding],
    pragmas: List[Pragma],
    path: str,
    checked_rules: Optional[Set[str]] = None,
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split ``findings`` into (active, suppressed) and report unused
    pragmas.  A pragma claims every finding of an allowed rule anchored
    to its target line; pragma meta-findings are never suppressible.
    A pragma only counts as *unused* if every rule it allows was
    actually checked (``checked_rules``; None means all were) -- a
    ``--rule``-filtered run must not flag the other rules' pragmas."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    used = [False] * len(pragmas)
    for finding in findings:
        claimed_by = None
        if finding.rule not in (PRAGMA_RULE, PRAGMA_UNUSED_RULE):
            for i, pragma in enumerate(pragmas):
                if (
                    finding.line == pragma.target_line
                    and finding.rule in pragma.rules
                ):
                    claimed_by = i
                    break
        if claimed_by is None:
            active.append(finding)
        else:
            used[claimed_by] = True
            suppressed.append(Finding(
                path=finding.path, line=finding.line, col=finding.col,
                rule=finding.rule, severity=finding.severity,
                message=finding.message,
                reason=pragmas[claimed_by].reason,
            ))
    unused = [
        Finding(
            path=path, line=pragma.line, col=0,
            rule=PRAGMA_UNUSED_RULE, severity="warning",
            message=(
                "pragma suppresses nothing (rule "
                + ", ".join(pragma.rules)
                + " did not fire on its target line)"
            ),
        )
        for pragma, was_used in zip(pragmas, used)
        if not was_used
        and (
            checked_rules is None
            or all(rule in checked_rules for rule in pragma.rules)
        )
    ]
    return active, suppressed, unused
