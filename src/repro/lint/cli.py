"""Command-line entry point for ``python -m repro lint``.

Exit status is 0 when every finding is suppressed or matched by the
baseline, 1 otherwise.  ``--json`` emits the schema-v1 findings
document (the same document ``--baseline`` accepts, so a clean run's
output round-trips as next run's baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import PACKAGE_ROOT, LintResult, lint_package, lint_paths
from repro.lint.findings import baseline_keys, new_findings
from repro.lint.rules import all_rules, rule_catalogue


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` verb's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the schema-v1 findings document instead of text",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="findings document from a previous --json run; only "
        "findings not present in it fail the run",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _collect(paths: List[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for name, meta in sorted(rule_catalogue().items()):
            print(f"{name} ({meta['severity']}): {meta['description']}")
        return 0
    try:
        all_rules(args.rules)  # validate --rule names up front
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.paths:
        result = lint_paths(
            _collect(list(args.paths)),
            package_root=PACKAGE_ROOT,
            rules=args.rules,
        )
    else:
        result = lint_package(rules=args.rules)

    failing = result.findings
    if args.baseline is not None:
        try:
            document = json.loads(args.baseline.read_text())
            baseline_keys(document)  # validates the schema up front
        except (OSError, ValueError) as exc:
            print(f"error: unreadable baseline: {exc}", file=sys.stderr)
            return 2
        failing = new_findings(result.findings, document)

    if args.as_json:
        print(json.dumps(result.to_document(), indent=2, sort_keys=True))
    else:
        _print_text(result, failing, baselined=args.baseline is not None)
    return 1 if failing else 0


def _print_text(
    result: LintResult,
    failing: List,
    baselined: bool,
) -> None:
    for finding in result.findings:
        print(finding.render())
    checked = result.files
    suppressed = len(result.suppressed)
    parts = [f"{len(result.findings)} finding(s)"]
    if baselined:
        parts.append(f"{len(failing)} new")
    parts.append(f"{suppressed} suppressed")
    parts.append(f"{checked} file(s) checked")
    print("lint: " + ", ".join(parts))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro lint")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
