"""The lint driver: parse modules, run rules, apply pragmas.

The engine is deliberately small: it turns each ``*.py`` file into a
:class:`ModuleContext` (AST + package-relative path + config tags),
asks every registered rule for findings, then lets the pragma layer
(:mod:`repro.lint.pragmas`) claim the justified ones.  Everything is
pure stdlib ``ast`` -- the linter must run on the no-numpy CI axis.

Entry points:

* :func:`lint_source` -- lint one source string under a *virtual*
  package-relative path (the fixture corpus uses this to place bad
  snippets inside hot-path scopes);
* :func:`lint_paths` -- lint files on disk;
* :func:`lint_package` -- lint the installed ``repro`` package tree
  (what ``python -m repro lint`` and the tier-1 zero-findings test
  run).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import (
    Finding,
    sort_findings,
    to_document,
)
from repro.lint.pragmas import apply_pragmas, parse_pragmas
from repro.lint.rules import all_rules, rule_catalogue

#: The package root the default walk lints: src/repro.
PACKAGE_ROOT = Path(__file__).resolve().parent.parent


@dataclass
class ModuleContext:
    """Everything a rule may ask about one module."""

    path: str  # package-relative posix path, e.g. "ring/backends.py"
    source: str
    tree: ast.Module
    config: LintConfig
    _annotation_nodes: Optional[Set[int]] = field(
        default=None, repr=False
    )

    def finding(
        self, node: ast.AST, rule: str, severity: str, message: str
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            severity=severity,
            message=message,
        )

    @property
    def annotation_nodes(self) -> Set[int]:
        """ids of AST nodes sitting in annotation position (type
        annotations are not runtime constructions -- the package uses
        ``from __future__ import annotations`` throughout)."""
        if self._annotation_nodes is None:
            spans: Set[int] = set()
            for node in ast.walk(self.tree):
                targets: List[ast.AST] = []
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if node.returns is not None:
                        targets.append(node.returns)
                    args = node.args
                    for arg in (
                        list(args.posonlyargs)
                        + list(args.args)
                        + list(args.kwonlyargs)
                        + [args.vararg, args.kwarg]
                    ):
                        if arg is not None and arg.annotation is not None:
                            targets.append(arg.annotation)
                elif isinstance(node, ast.AnnAssign):
                    targets.append(node.annotation)
                for target in targets:
                    for sub in ast.walk(target):
                        spans.add(id(sub))
            self._annotation_nodes = spans
        return self._annotation_nodes

    def in_annotation(self, node: ast.AST) -> bool:
        return id(node) in self.annotation_nodes


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    suppressed: List[Finding]
    files: int
    root: str

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_document(self) -> Dict[str, object]:
        return to_document(
            self.findings, self.suppressed, self.files,
            rule_catalogue(), self.root,
        )

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"checked {self.files} file(s): "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint one module given as a string.

    ``path`` is the *virtual* package-relative posix path that decides
    which scopes apply -- fixtures place known-bad snippets at e.g.
    ``"protocols/policies/fixture.py"`` to enter the hot-path scope.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return LintResult(
            findings=[Finding(
                path=path, line=exc.lineno or 1, col=exc.offset or 0,
                rule="syntax", severity="error",
                message=f"module does not parse: {exc.msg}",
            )],
            suppressed=[], files=1, root=path,
        )
    ctx = ModuleContext(path=path, source=source, tree=tree, config=config)
    selected = all_rules(rules)
    raw: List[Finding] = []
    for rule in selected:
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    pragmas, pragma_problems = parse_pragmas(
        source, path, known_rules=[r.name for r in all_rules(None)],
    )
    active, suppressed, unused = apply_pragmas(
        sort_findings(raw), pragmas, path,
        checked_rules={rule.name for rule in selected},
    )
    active.extend(pragma_problems)
    active.extend(unused)
    return LintResult(
        findings=sort_findings(active),
        suppressed=sort_findings(suppressed),
        files=1,
        root=path,
    )


def _merge(results: List[LintResult], root: str) -> LintResult:
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for result in results:
        findings.extend(result.findings)
        suppressed.extend(result.suppressed)
    return LintResult(
        findings=sort_findings(findings),
        suppressed=sort_findings(suppressed),
        files=sum(result.files for result in results),
        root=root,
    )


def lint_paths(
    paths: Sequence[Path],
    package_root: Path = PACKAGE_ROOT,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files on disk; paths are made package-relative for tagging."""
    results = []
    for path in paths:
        resolved = Path(path).resolve()
        try:
            relative = resolved.relative_to(package_root).as_posix()
        except ValueError:
            relative = resolved.name
        results.append(lint_source(
            resolved.read_text(), relative, config=config, rules=rules,
        ))
    return _merge(results, root=str(package_root))


def lint_package(
    package_root: Path = PACKAGE_ROOT,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``*.py`` module of the package tree."""
    paths = sorted(package_root.rglob("*.py"))
    return lint_paths(
        paths, package_root=package_root, config=config, rules=rules,
    )
