"""Shared AST helpers for the lint rules (pure stdlib ``ast``)."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Tuple

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)
ScopeNode = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def scoped_functions(
    tree: ast.Module,
) -> Iterable[Tuple[str, ast.AST]]:
    """Yield ``(qualname, node)`` for every function in the module,
    with ``Class.method`` / ``outer.inner`` dotted names."""

    def walk(node: ast.AST, stack: Tuple[str, ...]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, FunctionNode):
                qual = stack + (child.name,)
                yield ".".join(qual), child
                yield from walk(child, qual)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, stack + (child.name,))
            else:
                yield from walk(child, stack)

    yield from walk(tree, ())


def enclosing_map(tree: ast.Module) -> Dict[int, str]:
    """Map every AST node id to the dotted lexical path of its
    enclosing defs/classes (``""`` at module level, ``Class.method``
    inside a method, ``Class.method.closure`` inside its closures).
    A def/class node itself is owned by the scope that *defines* it."""
    owner: Dict[int, str] = {}

    def paint(node: ast.AST, path: Tuple[str, ...]) -> None:
        here = ".".join(path)
        for child in ast.iter_child_nodes(node):
            # lint: allow[nondeterminism] -- AST node ids key a within-parse cache; the addresses never reach output or iteration order
            owner[id(child)] = here
            if isinstance(child, ScopeNode):
                paint(child, path + (child.name,))
            else:
                paint(child, path)

    paint(tree, ())
    return owner


def in_scope(owner: str, whitelist: Iterable[str]) -> bool:
    """Whether lexical path ``owner`` sits inside (or is) one of the
    whitelisted qualnames -- closures of a whitelisted function count."""
    for qual in whitelist:
        if owner == qual or owner.startswith(qual + "."):
            return True
    return False


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``foo`` for ``foo(...)``, ``foo.bar`` for
    ``foo.bar(...)`` (one attribute hop only), else None."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Name
    ):
        return f"{func.value.id}.{func.attr}"
    return None


def root_of(node: ast.AST) -> Optional[ast.AST]:
    """The root of an attribute/subscript/call chain:
    ``a.b[0].c()`` -> the ``a`` Name node; None for other shapes."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    return node if isinstance(node, ast.Name) else None


def contains_name(node: ast.AST, name: str) -> bool:
    """Whether any Name node with id ``name`` appears in the subtree."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )
