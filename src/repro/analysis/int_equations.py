"""Fraction-free incremental elimination over the shared-denominator
lattice.

Every observation a backend emits is an integer numerator over one
shared denominator ``D`` (``dist`` over ``D``, ``coll`` over ``2 D`` --
the same ``Z/(2D)`` grid the kinematics run on).  The exact-`Fraction`
:class:`~repro.analysis.equations.EquationSystem` therefore spends its
whole life normalising rationals whose denominators all divide ``D``.
:class:`IntEquationSystem` is its fraction-free twin: rows are integer
coefficient vectors, right-hand sides are integer numerators over the
system's single ``den``, and elimination is Bareiss-style -- each
combination step is the integer cross-multiplication
``(p // g) * row - (c // g) * brow`` followed by content (gcd) removal,
so no rational arithmetic ever runs.  Only :meth:`IntEquationSystem.
solve` materialises Fractions, one constructor call per unknown, by
exact integer back-substitution.

The Fraction classes stay untouched as the executable spec; the
equivalence is load-bearing and pinned three ways:

* construction with ``cross_check=True`` shadows every ``add`` /
  ``solve`` on a live :class:`~repro.analysis.equations.EquationSystem`
  and asserts identical rank trajectory, identical
  :class:`~repro.exceptions.SingularSystemError` behaviour and
  identical solutions (``discover_distances(..., engine="cross")``
  turns this on for the native Distances driver);
* ``tests/test_int_equations.py`` property-tests the agreement on
  random window systems;
* ``benchmarks/bench_equations.py`` enforces bit-exact protocol output
  against the spec engine before timing anything.

Rows follow the ``array`` backend's optional-numpy contract: int64
vectors when :func:`~repro.ring.arrayops.get_numpy` finds numpy (with
an overflow guard that falls back before a combination could exceed
int64), plain Python-int lists otherwise -- the list path is exact at
arbitrary precision, so the guard can always retreat to it.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.analysis.equations import Equation, EquationSystem
from repro.exceptions import SingularSystemError
from repro.ring.arrayops import get_numpy

#: A combination ``mp * row - mc * brow`` is safe on the int64 path as
#: long as ``|mp| * max|row| + |mc| * max|brow|`` stays below this; one
#: bit of headroom under 2^63 absorbs the sign.
_INT64_GUARD = 1 << 62


class IntEquation:
    """One constraint ``sum_i coeffs[i] * x_i = value / den`` where
    ``den`` is the owning system's shared denominator.

    ``coeffs`` is a sequence of plain ints (or an int64 numpy row);
    ``value`` is the right-hand side's integer *numerator*.  Nothing
    here ever materialises a Fraction.
    """

    __slots__ = ("coeffs", "value")

    def __init__(self, coeffs, value: int) -> None:
        self.coeffs = coeffs
        self.value = value

    @staticmethod
    def window(
        n: int, start: int, count: int, value: int, scale: int = 1, xp=None
    ) -> "IntEquation":
        """Integer twin of :meth:`Equation.window`: the constraint
        ``scale * (x_start + ... + x_{start+count-1}) = value / den``
        with cyclic indices.  With ``xp`` the coefficient row is built
        as an int64 vector by (at most two) slice adds."""
        start %= n
        whole, rem = divmod(count, n)
        if xp is not None:
            coeffs = xp.zeros(n, dtype=xp.int64)
            if whole:
                coeffs += scale * whole
            end = start + rem
            if end <= n:
                coeffs[start:end] += scale
            else:
                coeffs[start:] += scale
                coeffs[: end - n] += scale
            return IntEquation(coeffs, value)
        coeffs = [scale * whole] * n
        for k in range(rem):
            coeffs[(start + k) % n] += scale
        return IntEquation(coeffs, value)


class IntEquationSystem:
    """Incremental fraction-free Gaussian elimination (Bareiss-style).

    Mirrors :class:`~repro.analysis.equations.EquationSystem`'s API and
    observable behaviour exactly -- same pivot choice (first nonzero
    column, scanning ascending), same rank trajectory, same
    :class:`SingularSystemError` on contradictions, identical
    :meth:`solve` output -- but every elimination step is integer-only.
    Basis rows are stored unnormalised (integer row, integer value
    numerator, pivot made positive, content removed), so a stored row
    equals the spec's reduced row times a nonzero integer; that scalar
    cancels in rank decisions and in back-substitution.
    """

    def __init__(self, n: int, den: int, cross_check: bool = False) -> None:
        if den <= 0:
            raise ValueError("den must be a positive integer")
        self.n = n
        self.den = den
        self._np = get_numpy()
        # pivot column -> (row, value numerator, max |coefficient|)
        self._basis: Dict[int, Tuple[object, int, int]] = {}
        self._shadow: Optional[EquationSystem] = (
            EquationSystem(n) if cross_check else None
        )

    # -- spec mirroring ---------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self._basis)

    @property
    def full_rank(self) -> bool:
        return self.rank == self.n

    def _spec_equation(self, eq: IntEquation) -> Equation:
        coeffs = eq.coeffs
        if not isinstance(coeffs, (list, tuple)):
            coeffs = coeffs.tolist()
        return Equation(
            tuple(Fraction(int(c)) for c in coeffs),
            Fraction(int(eq.value), self.den),
        )

    # -- elimination ------------------------------------------------------

    def add(self, eq: IntEquation) -> bool:
        """Insert an equation; returns True if it increased the rank.

        Raises:
            SingularSystemError: If the equation contradicts the basis.
        """
        if self._shadow is None:
            return self._add(eq)
        spec_raised = False
        try:
            expected = self._shadow.add(self._spec_equation(eq))
        except SingularSystemError:
            spec_raised = True
        try:
            grew = self._add(eq)
        except SingularSystemError:
            if not spec_raised:
                raise AssertionError(
                    "cross-check failed: int path raised where the "
                    "Fraction spec accepted the equation"
                )
            raise
        if spec_raised:
            raise AssertionError(
                "cross-check failed: Fraction spec raised where the "
                "int path accepted the equation"
            )
        if grew != expected or self.rank != self._shadow.rank:
            raise AssertionError(
                "cross-check failed: rank trajectories diverged "
                f"(int {self.rank}, spec {self._shadow.rank})"
            )
        return grew

    def _add(self, eq: IntEquation) -> bool:
        value = int(eq.value)
        xp = self._np
        if xp is not None:
            try:
                row = xp.array(eq.coeffs, dtype=xp.int64)
            except OverflowError:
                row = None
            if row is not None:
                return self._add_np(row, value)
        coeffs = eq.coeffs
        if not isinstance(coeffs, list):
            coeffs = (
                list(coeffs)
                if isinstance(coeffs, tuple)
                else [int(c) for c in coeffs]
            )
        else:
            coeffs = list(coeffs)
        return self._add_py(coeffs, value)

    def _add_np(self, row, value: int) -> bool:
        """int64 elimination; retreats to :meth:`_add_py` before any
        combination could overflow (or when a basis row already lives
        on the unbounded list representation)."""
        xp = self._np
        rmax = int(xp.abs(row).max()) if row.size else 0
        while True:
            nonzero = xp.flatnonzero(row)
            if nonzero.size == 0:
                break
            col = int(nonzero[0])
            entry = self._basis.get(col)
            if entry is None:
                self._store(col, row, value)
                return True
            brow, bval, bmax = entry
            if isinstance(brow, list):
                return self._add_py(row.tolist(), value, from_col=col)
            pivot = int(brow[col])
            coeff = int(row[col])
            shrink = gcd(pivot, coeff)
            mult_row = pivot // shrink
            mult_basis = coeff // shrink
            grown = abs(mult_row) * rmax + abs(mult_basis) * bmax
            if grown >= _INT64_GUARD:
                # The running bound is pessimistic; retry it exactly,
                # then give the arbitrary-precision path the row.
                rmax = int(xp.abs(row).max())
                grown = abs(mult_row) * rmax + abs(mult_basis) * bmax
                if grown >= _INT64_GUARD:
                    return self._add_py(row.tolist(), value, from_col=col)
            row = mult_row * row - mult_basis * brow
            value = mult_row * value - mult_basis * bval
            rmax = grown
        if value != 0:
            raise SingularSystemError("observation contradicts earlier ones")
        return False

    def _add_py(self, row: List[int], value: int, from_col: int = 0) -> bool:
        """Arbitrary-precision (Python int) elimination."""
        basis = self._basis
        for col in range(from_col, self.n):
            coeff = row[col]
            if coeff == 0:
                continue
            entry = basis.get(col)
            if entry is None:
                self._store(col, row, value)
                return True
            brow, bval, _bmax = entry
            if not isinstance(brow, list):
                brow = brow.tolist()
            pivot = brow[col]
            shrink = gcd(pivot, coeff)
            mult_row = pivot // shrink
            mult_basis = coeff // shrink
            row = [
                mult_row * a - mult_basis * b for a, b in zip(row, brow)
            ]
            value = mult_row * value - mult_basis * bval
        if value != 0:
            raise SingularSystemError("observation contradicts earlier ones")
        return False

    def _store(self, col: int, row, value: int) -> None:
        """File ``row`` as the pivot for ``col``: content removed,
        pivot made positive, max |coefficient| cached for the int64
        overflow guard."""
        xp = self._np
        if isinstance(row, list):
            content = 0
            for coeff in row:
                content = gcd(content, coeff)
                if content == 1:
                    break
            content = gcd(content, value)
            if content > 1:
                row = [coeff // content for coeff in row]
                value //= content
            if row[col] < 0:
                row = [-coeff for coeff in row]
                value = -value
            bmax = max(abs(coeff) for coeff in row)
        else:
            magnitudes = xp.abs(row)
            content = gcd(int(xp.gcd.reduce(magnitudes)), value)
            if content > 1:
                row = row // content
                value //= content
                magnitudes = xp.abs(row)
            if int(row[col]) < 0:
                row = -row
                value = -value
            bmax = int(magnitudes.max())
        self._basis[col] = (row, value, bmax)

    # -- solving ----------------------------------------------------------

    def solve(self) -> List[Fraction]:
        """Back-substitute into the exact solution vector.

        Integer-only: per unknown one running numerator/denominator
        pair is folded over the basis row's nonzeros with gcd
        reduction, and the result materialises as a single ``Fraction``
        constructor call -- no Fraction arithmetic anywhere.
        """
        if not self.full_rank:
            raise SingularSystemError(
                f"rank {self.rank} < {self.n}: not enough observations"
            )
        solution = self._solve_ints()
        result = [Fraction(num, den) for num, den in solution]
        if self._shadow is not None:
            expected = self._shadow.solve()
            if result != expected:
                raise AssertionError(
                    "cross-check failed: int and Fraction solutions differ"
                )
        return result

    def _solve_ints(self) -> List[Tuple[int, int]]:
        xp = self._np
        pairs: List[Optional[Tuple[int, int]]] = [None] * self.n
        for col in sorted(self._basis.keys(), reverse=True):
            row, value, _bmax = self._basis[col]
            if isinstance(row, list):
                beyond = [
                    (c, row[c])
                    for c in range(col + 1, self.n)
                    if row[c] != 0
                ]
                pivot = row[col]
            else:
                beyond = [
                    (c, int(row[c]))
                    for c in xp.flatnonzero(row).tolist()
                    if c != col
                ]
                pivot = int(row[col])
            # acc = value/den - sum coeff * x_c, folded as one exact
            # integer numerator/denominator pair.
            acc_num, acc_den = value, self.den
            for c, coeff in beyond:
                num_c, den_c = pairs[c]
                acc_num = acc_num * den_c - coeff * num_c * acc_den
                acc_den = acc_den * den_c
                shrink = gcd(acc_num, acc_den)
                if shrink > 1:
                    acc_num //= shrink
                    acc_den //= shrink
            pairs[col] = (acc_num, acc_den * pivot)
        return [pair if pair is not None else (0, 1) for pair in pairs]

    def solve_if_ready(self) -> Optional[List[Fraction]]:
        """The solution if the system already has full rank, else None."""
        return self.solve() if self.full_rank else None
