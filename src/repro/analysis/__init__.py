"""Exact linear algebra used by location-discovery protocols."""

from repro.analysis.linear_system import (
    solve_linear_system,
    solve_cyclic_pair_sums,
    solve_cyclic_pair_sums_ints,
)
from repro.analysis.equations import Equation, EquationSystem
from repro.analysis.int_equations import IntEquation, IntEquationSystem
from repro.analysis.render import render_round, render_trajectory_summary

__all__ = [
    "solve_linear_system",
    "solve_cyclic_pair_sums",
    "solve_cyclic_pair_sums_ints",
    "Equation",
    "EquationSystem",
    "IntEquation",
    "IntEquationSystem",
    "render_round",
    "render_trajectory_summary",
]
