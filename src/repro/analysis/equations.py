"""Linear-equation bookkeeping for agents reconstructing gap vectors.

An agent in the perceptive location-discovery protocol harvests, every
round, up to two linear equations over the unknown gaps x_0 .. x_{n-1}
(one from ``dist()``, one from ``coll()``).  :class:`EquationSystem`
accumulates them, tracks rank incrementally, and solves once full rank
is reached.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SingularSystemError


@dataclass(frozen=True)
class Equation:
    """One linear constraint sum_i coeffs[i] * x_i = value."""

    coeffs: Tuple[Fraction, ...]
    value: Fraction

    @staticmethod
    def window(
        n: int, start: int, count: int, scale: Fraction, value: Fraction
    ) -> "Equation":
        """Constraint ``scale * (x_start + ... + x_{start+count-1}) = value``
        with cyclic indices -- the shape every ring observation takes."""
        coeffs = [Fraction(0)] * n
        for k in range(count):
            coeffs[(start + k) % n] += scale
        return Equation(tuple(coeffs), value)


class EquationSystem:
    """Incremental exact Gaussian elimination over Fraction rows.

    Rows are reduced against the current basis as they arrive; dependent
    -- but consistent -- rows are dropped, inconsistent rows raise.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        # pivot column -> reduced row (coeffs + value + nonzero columns)
        self._basis: Dict[
            int, Tuple[List[Fraction], Fraction, Tuple[int, ...]]
        ] = {}

    @property
    def rank(self) -> int:
        return len(self._basis)

    @property
    def full_rank(self) -> bool:
        return self.rank == self.n

    def add(self, eq: Equation) -> bool:
        """Insert an equation; returns True if it increased the rank.

        The working row's nonzero columns are tracked as a min-heap, so
        reduction walks only the live support and stops the moment the
        row empties instead of scanning out the remaining columns.
        Elimination order is unchanged (ascending columns; a basis row
        stored at pivot ``col`` has no nonzeros before ``col``, so
        subtraction only ever adds support to the right of the cursor).

        Raises:
            SingularSystemError: If the equation contradicts the basis.
        """
        row = list(eq.coeffs)
        value = eq.value
        support = [col for col, c in enumerate(row) if c != 0]
        heapq.heapify(support)
        while support:
            col = heapq.heappop(support)
            if row[col] == 0:
                continue  # cancelled (or re-pushed) since it was filed
            entry = self._basis.get(col)
            if entry is None:
                inv = 1 / row[col]
                reduced = [c * inv for c in row]
                filed = tuple(
                    c for c, v in enumerate(reduced) if v != 0
                )
                self._basis[col] = (reduced, value * inv, filed)
                return True
            brow, bval, bsupport = entry
            factor = row[col]
            for c in bsupport:
                before = row[c]
                after = before - factor * brow[c]
                row[c] = after
                if before == 0 and after != 0:
                    heapq.heappush(support, c)
            value = value - factor * bval
        if value != 0:
            raise SingularSystemError("observation contradicts earlier ones")
        return False

    def solve(self) -> List[Fraction]:
        """Back-substitute the full-rank basis into the solution vector."""
        if not self.full_rank:
            raise SingularSystemError(
                f"rank {self.rank} < {self.n}: not enough observations"
            )
        solution: List[Optional[Fraction]] = [None] * self.n
        for col in sorted(self._basis.keys(), reverse=True):
            row, val, support = self._basis[col]
            acc = val
            for c in support:
                if c != col:
                    acc -= row[c] * solution[c]
            solution[col] = acc
        return [s if s is not None else Fraction(0) for s in solution]

    def solve_if_ready(self) -> Optional[List[Fraction]]:
        """The solution if the system already has full rank, else None."""
        return self.solve() if self.full_rank else None
