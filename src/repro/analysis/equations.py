"""Linear-equation bookkeeping for agents reconstructing gap vectors.

An agent in the perceptive location-discovery protocol harvests, every
round, up to two linear equations over the unknown gaps x_0 .. x_{n-1}
(one from ``dist()``, one from ``coll()``).  :class:`EquationSystem`
accumulates them, tracks rank incrementally, and solves once full rank
is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SingularSystemError


@dataclass(frozen=True)
class Equation:
    """One linear constraint sum_i coeffs[i] * x_i = value."""

    coeffs: Tuple[Fraction, ...]
    value: Fraction

    @staticmethod
    def window(
        n: int, start: int, count: int, scale: Fraction, value: Fraction
    ) -> "Equation":
        """Constraint ``scale * (x_start + ... + x_{start+count-1}) = value``
        with cyclic indices -- the shape every ring observation takes."""
        coeffs = [Fraction(0)] * n
        for k in range(count):
            coeffs[(start + k) % n] += scale
        return Equation(tuple(coeffs), value)


class EquationSystem:
    """Incremental exact Gaussian elimination over Fraction rows.

    Rows are reduced against the current basis as they arrive; dependent
    -- but consistent -- rows are dropped, inconsistent rows raise.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        # pivot column -> reduced row (coeffs + value)
        self._basis: Dict[int, Tuple[List[Fraction], Fraction]] = {}

    @property
    def rank(self) -> int:
        return len(self._basis)

    @property
    def full_rank(self) -> bool:
        return self.rank == self.n

    def add(self, eq: Equation) -> bool:
        """Insert an equation; returns True if it increased the rank.

        Raises:
            SingularSystemError: If the equation contradicts the basis.
        """
        row = list(eq.coeffs)
        value = eq.value
        for col in range(self.n):
            if row[col] == 0:
                continue
            entry = self._basis.get(col)
            if entry is None:
                inv = 1 / row[col]
                reduced = [c * inv for c in row]
                self._basis[col] = (reduced, value * inv)
                return True
            brow, bval = entry
            factor = row[col]
            row = [c - factor * b for c, b in zip(row, brow)]
            value = value - factor * bval
        if value != 0:
            raise SingularSystemError("observation contradicts earlier ones")
        return False

    def solve(self) -> List[Fraction]:
        """Back-substitute the full-rank basis into the solution vector."""
        if not self.full_rank:
            raise SingularSystemError(
                f"rank {self.rank} < {self.n}: not enough observations"
            )
        solution: List[Optional[Fraction]] = [None] * self.n
        for col in sorted(self._basis.keys(), reverse=True):
            row, val = self._basis[col]
            acc = val
            for c in range(col + 1, self.n):
                if row[c] != 0:
                    acc -= row[c] * solution[c]
            solution[col] = acc
        return [s if s is not None else Fraction(0) for s in solution]

    def solve_if_ready(self) -> Optional[List[Fraction]]:
        """The solution if the system already has full rank, else None."""
        return self.solve() if self.full_rank else None
