"""Exact linear solvers over Fractions.

Location discovery reduces to solving linear systems whose unknowns are
the inter-agent gaps x_1 .. x_n.  Working over rationals keeps the
solutions exact, so reconstructed positions can be compared with ground
truth by equality.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.exceptions import SingularSystemError


def solve_linear_system(
    rows: Sequence[Sequence[Fraction]], rhs: Sequence[Fraction]
) -> List[Fraction]:
    """Solve A·x = b exactly by Gauss-Jordan elimination.

    Args:
        rows: m rows of n coefficients each, m >= n.  Redundant
            (linearly dependent) rows are tolerated as long as they are
            consistent.
        rhs: The m right-hand sides.

    Returns:
        The unique solution x (length n).

    Raises:
        SingularSystemError: If the system is under-determined or
            inconsistent.
    """
    m = len(rows)
    if m != len(rhs):
        raise SingularSystemError("rows and rhs length mismatch")
    if m == 0:
        return []
    n = len(rows[0])
    aug = [list(map(Fraction, row)) + [Fraction(rhs[i])] for i, row in enumerate(rows)]

    rank = 0
    pivot_cols: List[int] = []
    for col in range(n):
        pivot = next(
            (r for r in range(rank, m) if aug[r][col] != 0), None
        )
        if pivot is None:
            continue
        aug[rank], aug[pivot] = aug[pivot], aug[rank]
        inv = 1 / aug[rank][col]
        aug[rank] = [v * inv for v in aug[rank]]
        for r in range(m):
            if r != rank and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[rank])]
        pivot_cols.append(col)
        rank += 1
        if rank == m:
            break

    if rank < n:
        raise SingularSystemError(
            f"system is under-determined: rank {rank} < {n} unknowns"
        )
    # rank == n here, so every column is a pivot column and the
    # Gauss-Jordan passes above zeroed all coefficients of the rows
    # beyond the basis; a leftover nonzero right-hand side is a
    # redundant row contradicting the basis.
    for r in range(rank, m):
        if aug[r][n] != 0:
            raise SingularSystemError(
                "inconsistent system: redundant row contradicts the basis"
            )

    solution = [Fraction(0)] * n
    for r, col in enumerate(pivot_cols):
        solution[col] = aug[r][n]
    return solution


def solve_cyclic_pair_sums(sums: Sequence[Fraction]) -> List[Fraction]:
    """Recover x from y_j = x_j + x_{j+1 mod n}, for odd n.

    The circulant I + P is invertible exactly when n is odd; the inverse
    telescopes:  x_0 = (y_0 - y_1 + y_2 - ... + y_{n-1}) / 2, and the
    rest follow from x_{j+1} = y_j - x_j.

    Raises:
        SingularSystemError: If n is even (the alternating-sum kernel).
    """
    n = len(sums)
    if n % 2 == 0:
        raise SingularSystemError(
            "cyclic pair sums do not determine x for even n"
        )
    alternating = Fraction(0)
    for j, y in enumerate(sums):
        alternating += y if j % 2 == 0 else -y
    x0 = alternating / 2
    xs = [x0]
    for j in range(n - 1):
        xs.append(sums[j] - xs[-1])
    return xs


def solve_cyclic_pair_sums_ints(
    sums: Sequence[int], den: int, cache: Optional[dict] = None
) -> List[Fraction]:
    """Integer-numerator twin of :func:`solve_cyclic_pair_sums`.

    ``sums`` holds the pair sums' numerators over ``den`` (the
    backends' shared denominator); the telescoping runs entirely on
    Python ints over ``2 * den`` and only the final gap values
    materialise as Fractions, interned through ``cache`` (callers
    solving one system per ring slot share it: every slot recovers the
    same n gap values, so the n-squared cells collapse to n
    constructor calls).

    Raises:
        SingularSystemError: If n is even (the alternating-sum kernel).
    """
    n = len(sums)
    if n % 2 == 0:
        raise SingularSystemError(
            "cyclic pair sums do not determine x for even n"
        )
    alternating = 0
    for j, y in enumerate(sums):
        alternating += y if j % 2 == 0 else -y
    # x_0 = alternating / 2 over den, i.e. numerator over 2 * den;
    # x_{j+1} = y_j - x_j keeps everything on that doubled grid.
    numerators = [alternating]
    for j in range(n - 1):
        numerators.append(2 * sums[j] - numerators[-1])
    doubled = 2 * den
    if cache is None:
        cache = {}
    xs: List[Fraction] = []
    for num in numerators:
        value = cache.get(num)
        if value is None:
            value = cache[num] = Fraction(num, doubled)
        xs.append(value)
    return xs
