"""ASCII space-time rendering of bouncing-agent rounds.

Renders one round as a diagram with time flowing downward and the
circle unrolled horizontally: each agent's trajectory is a column of
digits drifting left/right, collisions show where trajectories meet.
Built on the exact trajectory recording of the event simulator; purely
presentational, but handy in examples and when debugging protocols.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.ring.collisions import position_at, simulate_collisions

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_round(
    positions: Sequence[Fraction],
    velocities: Sequence[int],
    width: int = 64,
    steps: int = 16,
    duration: Fraction = Fraction(1),
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Render one round as an ASCII space-time diagram.

    Args:
        positions: Ring-ordered starting positions in [0, 1).
        velocities: Objective velocities in {-1, 0, +1}.
        width: Columns (circle resolution).
        steps: Time samples (rows), t = 0 .. duration inclusive.
        labels: One-character glyph per agent; defaults to 0..9a..z
            cycling.

    Returns:
        The diagram as a newline-joined string.  When two agents round
        to the same column the later-indexed one wins the cell; an
        asterisk marks cells where a collision happened within the
        preceding time slice.
    """
    n = len(positions)
    traces, _ = simulate_collisions(
        positions, velocities, duration=duration, record_paths=True
    )
    if labels is None:
        labels = [_GLYPHS[i % len(_GLYPHS)] for i in range(n)]
    if len(labels) != n:
        raise ValueError("one label per agent required")

    collision_times: List[Fraction] = sorted({
        bp[0]
        for tr in traces
        for bp in (tr.path or [])[1:-1]
    })

    lines = []
    header = f"t=0 .. t={duration}, {n} agents, circle unrolled to {width} cols"
    lines.append(header)
    previous_t = Fraction(0)
    for row in range(steps + 1):
        t = duration * row / steps
        cells = [" "] * width
        hit = any(previous_t < ct <= t for ct in collision_times)
        for i, tr in enumerate(traces):
            pos = position_at(tr.path, t)
            col = int(pos * width) % width
            cells[col] = labels[i]
        marker = "*" if hit and row > 0 else " "
        lines.append(f"{marker}|" + "".join(cells) + "|")
        previous_t = t
    return "\n".join(lines)


def render_trajectory_summary(
    positions: Sequence[Fraction], velocities: Sequence[int]
) -> str:
    """One line per agent: start, bounce count, first collision, end."""
    traces, events = simulate_collisions(
        positions, velocities, record_paths=True
    )
    lines = [f"{events} collision events"]
    for i, tr in enumerate(traces):
        first = (
            f"first hit after {tr.coll_distance}"
            if tr.coll_distance is not None
            else "no collision"
        )
        lines.append(
            f"agent {i}: {positions[i]} -> {tr.final_position}  "
            f"({tr.collisions} bounces, {first})"
        )
    return "\n".join(lines)
