"""The replayable regression corpus: recorded fault scenarios as JSON.

When the property-based scenario fuzzer finds a run that violates the
graceful-degradation trichotomy (or any other property), the offending
scenario is serialised here as one small JSON file.  Committed entries
live in ``tests/regression_corpus/`` and are replayed by the tier-1
suite on every run -- a fuzzer find becomes a permanent regression
test the moment it is recorded, independent of hypothesis versions,
shrink behaviour or database state.

Entry schema (``ENTRY_SCHEMA = 1``)::

    {
      "schema": 1,
      "note":  "<free-form human context>",
      "scenario": { ...SessionSpec.to_dict()... },
      "expect": {
        "outcome": "survive" | "detect" | "report",
        "error":   "<exception class name>",   # detect only
        "result":  { ...payload... }           # survive/report only
      }
    }

Replay recomputes the scenario's classification from scratch (both the
faulted run and its fault-free twin) and asserts the recorded
expectation -- outcome, error *type* (messages may improve), and the
exact result payload.  Everything in an entry is deterministic, so a
replay mismatch is a real behaviour change, never flake.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.report import OUTCOMES, Classification, classify_spec

if TYPE_CHECKING:  # circular only at type-check time
    from repro.api.fleet import SessionSpec

#: Schema version of a corpus entry.
ENTRY_SCHEMA = 1

#: Repo-relative home of the committed corpus.
DEFAULT_CORPUS_DIR = os.path.join("tests", "regression_corpus")


def make_entry(
    spec: "SessionSpec",
    classification: Classification,
    note: str = "",
) -> Dict[str, object]:
    """Build the JSON document recording ``spec``'s classification."""
    expect: Dict[str, object] = {"outcome": classification.outcome}
    if classification.outcome == "detect":
        expect["error"] = classification.error_type
    else:
        expect["result"] = classification.result
    return {
        "schema": ENTRY_SCHEMA,
        "note": note,
        "scenario": spec.to_dict(),
        "expect": expect,
    }


def entry_name(entry: Dict[str, object]) -> str:
    """Stable, content-derived filename for an entry.

    Hashing the scenario (not the expectation) keeps one file per
    scenario: re-recording the same scenario overwrites rather than
    accumulating near-duplicates.
    """
    payload = json.dumps(
        entry["scenario"], sort_keys=True, separators=(",", ":"),
        ensure_ascii=True,
    )
    digest = hashlib.sha256(payload.encode("ascii")).hexdigest()[:12]
    scenario = entry["scenario"]
    protocol = str(scenario.get("protocol", "unknown"))  # type: ignore[union-attr]
    outcome = str(entry["expect"]["outcome"])  # type: ignore[index, call-overload]
    return f"{protocol}-{outcome}-{digest}.json"


def write_entry(
    entry: Dict[str, object],
    directory: str = DEFAULT_CORPUS_DIR,
    name: Optional[str] = None,
) -> str:
    """Write ``entry`` into the corpus directory; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name or entry_name(entry))
    with open(path, "w", encoding="ascii") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True,
                  ensure_ascii=True)
        handle.write("\n")
    return path


def record_scenario(
    spec: "SessionSpec",
    directory: str = DEFAULT_CORPUS_DIR,
    note: str = "",
) -> Tuple[str, Classification]:
    """Classify ``spec`` and persist the result as a corpus entry.

    The one-call path the fuzzer (and ``tools/record_regression.py``)
    uses: whatever the scenario *currently* does becomes the recorded
    expectation, so the entry pins today's behaviour against tomorrow's
    regressions.
    """
    classification = classify_spec(spec)
    entry = make_entry(spec, classification, note=note)
    return write_entry(entry, directory), classification


def load_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
) -> List[Tuple[str, Dict[str, object]]]:
    """All corpus entries under ``directory`` as ``(path, entry)``,
    sorted by filename for deterministic collection order."""
    if not os.path.isdir(directory):
        return []
    entries: List[Tuple[str, Dict[str, object]]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="ascii") as handle:
            entries.append((path, json.load(handle)))
    return entries


def replay_entry(entry: Dict[str, object]) -> Classification:
    """Re-run a recorded scenario and assert its pinned expectation.

    Raises :class:`AssertionError` (with a diff-friendly message) on
    any divergence; returns the fresh classification on success.
    """
    from repro.api.fleet import SessionSpec

    if entry.get("schema") != ENTRY_SCHEMA:
        raise ConfigurationError(
            f"corpus entry schema {entry.get('schema')!r} is not the "
            f"supported {ENTRY_SCHEMA}"
        )
    spec = SessionSpec.from_dict(dict(entry["scenario"]))  # type: ignore[call-overload]
    expect = dict(entry["expect"])  # type: ignore[call-overload]
    expected_outcome = expect["outcome"]
    if expected_outcome not in OUTCOMES:
        raise ConfigurationError(
            f"corpus entry expects unknown outcome {expected_outcome!r}"
        )
    fresh = classify_spec(spec)
    assert fresh.outcome == expected_outcome, (
        f"scenario {entry['scenario']} now classifies as "
        f"{fresh.outcome!r} (recorded: {expected_outcome!r}; "
        f"error={fresh.error_type!r} {fresh.error_message!r})"
    )
    if expected_outcome == "detect":
        assert fresh.error_type == expect["error"], (
            f"scenario {entry['scenario']} now detects via "
            f"{fresh.error_type!r} (recorded: {expect['error']!r})"
        )
    else:
        recorded = json.dumps(expect["result"], sort_keys=True)
        current = json.dumps(fresh.result, sort_keys=True)
        assert recorded == current, (
            f"scenario {entry['scenario']} result payload changed:\n"
            f"  recorded: {recorded}\n"
            f"  current:  {current}"
        )
    return fresh
