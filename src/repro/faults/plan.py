"""FaultPlan: a deterministic, seeded, JSON-able adversary description.

A plan names *which* agent slots misbehave and *when*, in three
independent families:

* **crashes** -- crash-stop: from round ``r`` on, the slot is pinned to
  ``IDLE`` forever (a halted agent still occupies its position on the
  ring and still participates in collisions, exactly like a lazy-model
  idler).
* **byzantine** -- from round ``r`` on, the slot's chosen direction is
  corrupted each round: ``flip`` reverses it, ``random`` replaces it
  with a seeded coin flip over {RIGHT, LEFT}, and ``scramble``
  additionally corrupts the slot's protocol memory once, at round ``r``
  (booleans negated, ints xor-ed with 1 -- type-exact, so enum-valued
  entries survive).
* **delays** -- asynchrony: the slot executes the direction it *chose*
  ``lag`` rounds ago (its first ``lag`` rounds replay its round-0
  intent).  This models a slow agent on a synchronous round clock.

All randomness flows through one ``random.Random(seed)`` instance and
all per-round draws happen in sorted slot order, so a plan is a pure
function of its JSON document: two runs with equal plans inject
identical faults.  ``max_rounds`` is the round budget for faulted runs;
protocols whose termination argument a fault breaks surface as
:class:`~repro.exceptions.FaultBudgetError` instead of spinning.

The canonical JSON form (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.canonical`) is what the run-store key document embeds,
so a plan participates in content-addressed caching like every other
input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.exceptions import ConfigurationError

#: Schema tag for the plan's JSON document.
PLAN_SCHEMA = 1

#: Recognised Byzantine corruption modes.
BYZANTINE_MODES: Tuple[str, ...] = ("flip", "random", "scramble")

#: Round budget applied to faulted runs when the plan does not set one.
#: Generous: the largest legitimate protocol round counts are O(n log n)
#: at tier-1 sizes, orders of magnitude below this.
DEFAULT_MAX_ROUNDS = 10_000

FaultPlanLike = Union[None, "FaultPlan", str, Mapping[str, object]]


def _canonical_json(document: object) -> str:
    """Canonical JSON: sorted keys, compact separators, ASCII only.

    Mirrors ``repro.store.keys.canonical_json`` byte-for-byte, duplicated
    here so the plan layer stays importable without the store (which
    pulls in the registry and the whole API surface).
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _slot(value: object, family: str) -> int:
    """Validate a slot index (JSON object keys arrive as strings)."""
    if isinstance(value, str):
        try:
            value = int(value)
        except ValueError:
            raise ConfigurationError(
                f"faults: {family} slot {value!r} is not an integer"
            ) from None
    if type(value) is not int:
        raise ConfigurationError(
            f"faults: {family} slot {value!r} is not an integer"
        )
    if value < 0:
        raise ConfigurationError(
            f"faults: {family} slot {value} is negative"
        )
    return value


def _round(value: object, family: str, minimum: int = 0) -> int:
    if type(value) is not int or isinstance(value, bool):
        raise ConfigurationError(
            f"faults: {family} value {value!r} is not an integer"
        )
    if value < minimum:
        raise ConfigurationError(
            f"faults: {family} value {value} is below {minimum}"
        )
    return value


@dataclass(frozen=True)
class FaultPlan:
    """A frozen fault schedule over agent slots.

    Attributes:
        seed: Seed for the plan's private ``random.Random`` (used only
            by ``random``-mode Byzantine slots).
        crashes: ``(slot, round)`` pairs -- slot is IDLE from that
            round on.
        byzantine: ``(slot, round, mode)`` triples with mode in
            :data:`BYZANTINE_MODES`.
        delays: ``(slot, lag)`` pairs with ``lag >= 1`` -- the slot
            executes its direction choice from ``lag`` rounds ago.
        max_rounds: Round budget for faulted runs; ``None`` means
            :data:`DEFAULT_MAX_ROUNDS`.
    """

    seed: int = 0
    crashes: Tuple[Tuple[int, int], ...] = field(default=())
    byzantine: Tuple[Tuple[int, int, str], ...] = field(default=())
    delays: Tuple[Tuple[int, int], ...] = field(default=())
    max_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        _round(self.seed, "seed")
        crashes = tuple(
            (_slot(s, "crashes"), _round(r, "crashes round"))
            for s, r in self.crashes
        )
        byzantine = []
        for entry in self.byzantine:
            slot, start, mode = entry
            if mode not in BYZANTINE_MODES:
                raise ConfigurationError(
                    f"faults: unknown byzantine mode {mode!r}; expected one"
                    f" of {', '.join(BYZANTINE_MODES)}"
                )
            byzantine.append(
                (_slot(slot, "byzantine"), _round(start, "byzantine round"),
                 mode)
            )
        delays = tuple(
            (_slot(s, "delays"), _round(lag, "delay lag", minimum=1))
            for s, lag in self.delays
        )
        for family, slots in (
            ("crashes", [s for s, _ in crashes]),
            ("byzantine", [s for s, _, _ in byzantine]),
            ("delays", [s for s, _ in delays]),
        ):
            if len(slots) != len(set(slots)):
                raise ConfigurationError(
                    f"faults: duplicate {family} slot"
                )
        if self.max_rounds is not None:
            _round(self.max_rounds, "max_rounds", minimum=1)
        object.__setattr__(self, "crashes", tuple(sorted(crashes)))
        object.__setattr__(self, "byzantine", tuple(sorted(byzantine)))
        object.__setattr__(self, "delays", tuple(sorted(delays)))

    # ----------------------------------------------------------------- #
    # Constructors

    @staticmethod
    def none() -> "FaultPlan":
        """The empty plan: injects nothing, enforces nothing."""
        return FaultPlan()

    def is_none(self) -> bool:
        """True when the plan changes no behaviour at all."""
        return (
            not self.crashes
            and not self.byzantine
            and not self.delays
            and self.max_rounds is None
        )

    @staticmethod
    def from_dict(document: Mapping[str, object]) -> "FaultPlan":
        """Parse the JSON document form; raises ``ConfigurationError``."""
        if not isinstance(document, Mapping):
            raise ConfigurationError(
                f"faults: expected an object, got {type(document).__name__}"
            )
        known = {"schema", "seed", "crashes", "byzantine", "delays",
                 "max_rounds"}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigurationError(
                f"faults: unknown key(s) {', '.join(map(repr, unknown))}"
            )
        schema = document.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"faults: unsupported schema {schema!r}"
            )
        crashes_doc = document.get("crashes", {})
        byz_doc = document.get("byzantine", {})
        delays_doc = document.get("delays", {})
        for family, doc in (("crashes", crashes_doc),
                            ("byzantine", byz_doc),
                            ("delays", delays_doc)):
            if not isinstance(doc, Mapping):
                raise ConfigurationError(
                    f"faults: {family} must be an object mapping slot ->"
                    " schedule"
                )
        byzantine = []
        for slot, entry in byz_doc.items():
            if not isinstance(entry, Mapping):
                raise ConfigurationError(
                    "faults: byzantine entries must be objects with"
                    " 'round' and 'mode'"
                )
            extra = sorted(set(entry) - {"round", "mode"})
            if extra:
                raise ConfigurationError(
                    f"faults: unknown byzantine key(s)"
                    f" {', '.join(map(repr, extra))}"
                )
            mode = entry.get("mode", "flip")
            if not isinstance(mode, str):
                raise ConfigurationError(
                    f"faults: byzantine mode {mode!r} is not a string"
                )
            byzantine.append((slot, entry.get("round", 0), mode))
        seed = document.get("seed", 0)
        max_rounds = document.get("max_rounds")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ConfigurationError(f"faults: seed {seed!r} is not an int")
        return FaultPlan(
            seed=seed,
            crashes=tuple(crashes_doc.items()),  # type: ignore[arg-type]
            byzantine=tuple(byzantine),  # type: ignore[arg-type]
            delays=tuple(delays_doc.items()),  # type: ignore[arg-type]
            max_rounds=max_rounds,  # type: ignore[arg-type]
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        """Parse a JSON string; raises ``ConfigurationError``."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"faults: invalid JSON ({exc})"
            ) from None
        return FaultPlan.from_dict(document)

    @staticmethod
    def coerce(value: FaultPlanLike) -> Optional["FaultPlan"]:
        """Normalise any accepted spelling to a plan, or ``None``.

        Accepts ``None``, a plan, a JSON string, or a document mapping.
        Empty plans normalise to ``None`` so a ``FaultPlan.none()``
        session is *the same object graph* as a plain one -- this is
        what makes fault-free byte-equivalence structural rather than
        incidental.
        """
        if value is None:
            return None
        if isinstance(value, FaultPlan):
            plan = value
        elif isinstance(value, str):
            plan = FaultPlan.from_json(value)
        elif isinstance(value, Mapping):
            plan = FaultPlan.from_dict(value)
        else:
            raise ConfigurationError(
                f"faults: cannot interpret {type(value).__name__} as a"
                " fault plan"
            )
        return None if plan.is_none() else plan

    # ----------------------------------------------------------------- #
    # Serialisation

    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON document (slot keys as strings)."""
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "crashes": {str(s): r for s, r in self.crashes},
            "byzantine": {
                str(s): {"round": r, "mode": mode}
                for s, r, mode in self.byzantine
            },
            "delays": {str(s): lag for s, lag in self.delays},
            "max_rounds": self.max_rounds,
        }

    def canonical(self) -> str:
        """Canonical JSON string (sorted keys, compact, ASCII)."""
        return _canonical_json(self.to_dict())

    # ----------------------------------------------------------------- #
    # Validation against a concrete ring

    def slots(self) -> Tuple[int, ...]:
        """All slots the plan touches, sorted and de-duplicated."""
        touched = {s for s, _ in self.crashes}
        touched.update(s for s, _, _ in self.byzantine)
        touched.update(s for s, _ in self.delays)
        return tuple(sorted(touched))

    def validate_for(self, n: int) -> None:
        """Check every slot fits a ring of ``n`` agents."""
        for slot in self.slots():
            if slot >= n:
                raise ConfigurationError(
                    f"faults: slot {slot} out of range for n={n}"
                )

    @property
    def round_budget(self) -> int:
        """The effective budget for faulted runs."""
        return self.max_rounds if self.max_rounds is not None \
            else DEFAULT_MAX_ROUNDS
