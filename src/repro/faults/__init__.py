"""Adversarial execution models: crash-stop, Byzantine and delayed agents
plus randomized contention channels, as one deterministic fault layer.

The paper's world is synchronous lockstep with obedient agents; this
package is the scenario space beyond it (ROADMAP open item 4).  It has
three parts:

* :mod:`repro.faults.plan` -- :class:`FaultPlan`, a frozen, JSON-able,
  seeded description of *which* agents misbehave and *when* (crash-stop
  at round r, Byzantine direction/memory corruption, per-agent delivery
  delays).  ``Scheduler``/``RingSession``/``SessionSpec`` and the CLI
  (``--faults``) all accept one, and the run-store key document
  incorporates it.
* :mod:`repro.faults.inject` -- :class:`FaultInjector`, the scheduler
  hook that deterministically rewrites each round's direction vector
  according to the plan.
* :mod:`repro.faults.channels` -- contention-channel protocols
  (backoff-window and probabilistic loss/capture medium access) built
  over the existing probe/restore collision machinery and registered
  in the ordinary protocol registry.

Graceful degradation is a trichotomy, computed by
:func:`repro.faults.report.classify_spec`: a protocol under a plan
either *survives* (bit-identical result to its fault-free twin),
*detects* (raises a :class:`~repro.exceptions.ReproError`), or
*reports* (completes with a different -- partial/degraded -- result).
Anything else is a bug, and the scenario fuzzer records it into
``tests/regression_corpus/`` (:mod:`repro.faults.corpus`).
"""

from repro.faults.plan import (
    BYZANTINE_MODES,
    DEFAULT_MAX_ROUNDS,
    FaultPlan,
    PLAN_SCHEMA,
)
from repro.faults.inject import FaultInjector
from repro.faults.report import OUTCOMES, Classification, classify_spec

# repro.faults.channels and repro.faults.corpus are import-on-demand:
# channels pulls in the scheduler stack (and is registered by
# repro.api), corpus is test/tool-facing.

__all__ = [
    "BYZANTINE_MODES",
    "Classification",
    "DEFAULT_MAX_ROUNDS",
    "FaultInjector",
    "FaultPlan",
    "OUTCOMES",
    "PLAN_SCHEMA",
    "classify_spec",
]
