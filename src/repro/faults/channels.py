"""Contention-channel protocols: medium access over the bouncing ring.

Two randomized MAC (medium-access-control) disciplines, registered as
ordinary registry protocols, model *contention* -- the third adversary
family of ROADMAP open item 4 -- on top of the existing ``Z/(2D)``
collision machinery:

* ``contention-backoff`` -- binary-exponential backoff with a doubling
  contention window (the IC3Net ``channel.py`` discipline): every agent
  holds one message; a colliding transmitter doubles its window (capped)
  and redraws its wait.
* ``contention-aloha`` -- slotted ALOHA with probabilistic loss and
  capture (the LoRaMesh medium): each pending agent transmits per slot
  with probability 1/2; a lone transmission is lost with probability
  1/10; a collision is *captured* by one transmitter with probability
  1/4.

Physical realisation: one channel slot is a probe/restore pair executed
through the scheduler -- transmitters play local RIGHT, listeners local
LEFT, then the reversed round restores every position (Lemma 1: a
round's entire effect is a rotation, so the reverse round undoes it).
Slots therefore cost real rounds, collide through the real collision
engine, and are subject to an active fault plan like any other round.
Runs of slots with no transmitter are fused into one
:class:`~repro.ring.stretch.SpeculativeStretch` -- the optimistic span
is a constant lookahead of listen pairs and the stop predicate cuts it
at the (data-dependent) next transmission slot, so idle stretches stay
on the backend's fused fast path.

Channel *adjudication* is an explicit oracle abstraction: who-spoke is
decided from the transmitter set the MAC layer drew (as IC3Net's
channel does), not decoded from the probe's observations -- a single
``dist``/``coll`` pair does not identify the number of transmitters
without gap knowledge the agents are still missing.  All channel
randomness flows through one seeded ``random.Random`` whose seed is
derived (SHA-256) from the ring's public parameters, so runs are
deterministic per configuration and bit-identical across backends.

Graceful degradation under a fault plan: crash-stopped agents fall
silent and their messages surface in ``ContentionResult.undelivered``
(the *report* outcome); Byzantine agents jam every slot, blowing the
backoff windows up until the slot budget trips ``ProtocolError`` (the
*detect* outcome); each agent mirrors its own delivery state in memory
and a scrambled mirror is caught by the end-of-run consensus check.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import ContentionResult
from repro.ring.stretch import SpeculativeStretch, Stretch
from repro.types import LocalDirection

# Per-agent memory keys: the agent-visible mirror of the channel state.
KEY_MAC_DELIVERED = "mac.delivered"    # bool: did my message get through?
KEY_MAC_ATTEMPTS = "mac.attempts"      # int: my transmission attempts

#: Backoff discipline: initial and maximum contention windows.
BACKOFF_W0 = 2
BACKOFF_W_MAX = 64

#: ALOHA discipline, as integer odds (rng.randrange(k) == 0):
#: transmit 1/2 per pending agent per slot, lose 1/10 of lone
#: transmissions, capture 1/4 of collisions.
ALOHA_TX_ODDS = 2
ALOHA_LOSS_ODDS = 10
ALOHA_CAPTURE_ODDS = 4

#: Idle slots fused per speculative span (the optimistic upper bound).
IDLE_LOOKAHEAD = 8


def _slot_budget(n: int) -> int:
    """Channel slots allowed before the run is declared wedged.

    Generous: a fault-free run needs O(n) successful slots and the
    expected contention overhead is a small constant factor; only an
    adversary (a jammer, a scrambled window) exhausts this.
    """
    return 64 * (n + 4)


def channel_seed(n: int, ids: Sequence[int], id_bound: int) -> int:
    """Deterministic channel seed from the ring's public parameters."""
    payload = json.dumps(
        {"id_bound": id_bound, "ids": list(ids), "n": n},
        sort_keys=True, separators=(",", ":"), ensure_ascii=True,
    )
    return int(hashlib.sha256(payload.encode("ascii")).hexdigest()[:16], 16)


def _listen_rows(n: int) -> Tuple[List[LocalDirection], List[LocalDirection]]:
    """The idle-slot probe row (everyone listens) and its reverse."""
    return [LocalDirection.LEFT] * n, [LocalDirection.RIGHT] * n


def _run_transmission_slot(sched: Scheduler, n: int,
                           transmitters: Set[int]) -> None:
    """One physical channel slot: probe round + restoring reverse."""
    row = [
        LocalDirection.RIGHT if i in transmitters else LocalDirection.LEFT
        for i in range(n)
    ]
    sched.run_stretch(Stretch.probe_restore(row))


def _run_idle_slots(sched: Scheduler, n: int, delta: int) -> None:
    """Fuse ``delta`` idle slots (2*delta listen rounds) into one span.

    The plan is the constant :data:`IDLE_LOOKAHEAD` upper bound of
    alternating listen pairs (every even prefix is position-restoring);
    the stop predicate commits exactly the ``delta`` pairs the MAC
    state calls for, so the data-dependent length stays on the fused
    fast path.
    """
    listen, reverse = _listen_rows(n)
    span = min(delta, IDLE_LOOKAHEAD)
    pairs: List[Tuple[List[LocalDirection], int]] = []
    for _ in range(IDLE_LOOKAHEAD):
        pairs.append((listen, 1))
        pairs.append((reverse, 1))
    cut = 2 * span - 1

    def stop(result: object, j: int) -> bool:
        return j >= cut

    sched.run_stretch(SpeculativeStretch(pairs=pairs, stop=stop))
    remaining = delta - span
    while remaining > 0:
        chunk = min(remaining, IDLE_LOOKAHEAD)
        sched.run_stretch(
            Stretch(pairs=[(listen, chunk), (reverse, chunk)])
        )
        remaining -= chunk


def _active_jammers(sched: Scheduler) -> Set[int]:
    """Byzantine slots currently corrupting rounds: channel jammers.

    A direction-corrupting adversary cannot be kept off the medium, so
    the channel models every active Byzantine slot as a persistent
    transmitter.  Crash wins over Byzantine, exactly as in the
    injector.
    """
    plan = sched.faults
    if plan is None:
        return set()
    t = sched.rounds
    jammers = {slot for slot, start, _ in plan.byzantine if t >= start}
    return jammers - sched.crashed_slots()


class _ChannelRun:
    """Shared MAC harness: slot loop, mirrors, accounting, consensus."""

    def __init__(self, sched: Scheduler) -> None:
        self.sched = sched
        self.n = len(sched.views)
        state = sched.population
        self.rng = random.Random(
            channel_seed(self.n, state.ids, state.id_bound)
        )
        self.delivered_order: List[int] = []
        self.delivered: Set[int] = set()
        self.slots = 0
        self.attempts = 0
        self.collisions = 0
        self.lost = 0
        for view in sched.views:
            view.memory[KEY_MAC_DELIVERED] = False
            view.memory[KEY_MAC_ATTEMPTS] = 0

    def pending(self) -> List[int]:
        """Agents still holding a message, crash-stopped ones excluded."""
        silenced = self.sched.crashed_slots()
        return [
            i for i in range(self.n)
            if i not in self.delivered and i not in silenced
        ]

    def charge_attempts(self, transmitters: Sequence[int]) -> None:
        self.attempts += len(transmitters)
        for i in transmitters:
            memory = self.sched.views[i].memory
            memory[KEY_MAC_ATTEMPTS] = memory[KEY_MAC_ATTEMPTS] + 1

    def deliver(self, winner: int) -> None:
        self.delivered.add(winner)
        self.delivered_order.append(winner)
        self.sched.views[winner].memory[KEY_MAC_DELIVERED] = True

    def check_budget(self, discipline: str) -> None:
        if self.slots >= _slot_budget(self.n):
            raise ProtocolError(
                f"contention {discipline} exhausted its "
                f"{_slot_budget(self.n)}-slot budget with "
                f"{len(self.pending())} message(s) still pending"
            )

    def finish(self) -> None:
        """Consensus check: every agent's mirror must match the oracle.

        A Byzantine memory scramble flips an agent's delivered flag or
        attempt counter mirror; the divergence is detected here, before
        any result is reported.
        """
        sched = self.sched
        for i, view in enumerate(sched.views):
            mirrored = view.memory.get(KEY_MAC_DELIVERED)
            if type(mirrored) is not bool or (
                mirrored != (i in self.delivered)
            ):
                raise ProtocolError(
                    f"channel state diverged across agents: slot {i} "
                    f"mirrors delivered={mirrored!r}, oracle says "
                    f"{i in self.delivered}"
                )
            if type(view.memory.get(KEY_MAC_ATTEMPTS)) is not int:
                raise ProtocolError(
                    f"channel state diverged across agents: slot {i} "
                    f"holds a non-integer attempt counter"
                )


def _run_backoff(sched: Scheduler) -> None:
    """Binary-exponential backoff until every live message is through."""
    run = _ChannelRun(sched)
    n = run.n
    window = [BACKOFF_W0] * n
    wait = [run.rng.randrange(BACKOFF_W0) for _ in range(n)]
    while True:
        pending = run.pending()
        if not pending:
            break
        run.check_budget("backoff")
        jammers = _active_jammers(sched)
        transmitters = [i for i in pending if wait[i] == 0]
        if not transmitters and not jammers:
            # Nobody speaks until the smallest wait runs out: fuse the
            # whole quiet gap into one span.
            delta = min(wait[i] for i in pending)
            delta = min(delta, _slot_budget(n) - run.slots)
            _run_idle_slots(sched, n, delta)
            run.slots += delta
            for i in pending:
                wait[i] -= delta
            continue
        contenders = set(transmitters) | jammers
        _run_transmission_slot(sched, n, contenders)
        run.slots += 1
        run.charge_attempts(transmitters)
        if len(contenders) == 1 and transmitters:
            run.deliver(transmitters[0])
        elif len(contenders) >= 2:
            run.collisions += 1
            for i in transmitters:
                window[i] = min(2 * window[i], BACKOFF_W_MAX)
                wait[i] = run.rng.randrange(window[i])
        # A jammer speaking alone is just a busy slot.
        for i in pending:
            if i not in contenders and wait[i] > 0:
                wait[i] -= 1
    run.finish()
    _publish(sched, run)


def _run_aloha(sched: Scheduler) -> None:
    """Slotted ALOHA with loss and capture until delivery or budget."""
    run = _ChannelRun(sched)
    n = run.n

    def draw(pending: List[int]) -> List[int]:
        return [
            i for i in pending
            if run.rng.randrange(ALOHA_TX_ODDS) == 0
        ]

    while True:
        pending = run.pending()
        if not pending:
            break
        run.check_budget("aloha")
        jammers = _active_jammers(sched)
        transmitters = draw(pending)
        if not transmitters and not jammers:
            # Pre-draw upcoming slots to size the quiet gap, then fuse
            # it; the first non-empty draw is carried into this slot's
            # transmission handling below.
            delta = 1
            while delta < IDLE_LOOKAHEAD:
                transmitters = draw(pending)
                if transmitters:
                    break
                delta += 1
            _run_idle_slots(sched, n, delta)
            run.slots += delta
            if not transmitters:
                continue
        contenders = sorted(set(transmitters) | jammers)
        _run_transmission_slot(sched, n, set(contenders))
        run.slots += 1
        run.charge_attempts(transmitters)
        if len(contenders) == 1 and transmitters:
            if run.rng.randrange(ALOHA_LOSS_ODDS) == 0:
                run.lost += 1
            else:
                run.deliver(transmitters[0])
        elif len(contenders) >= 2:
            if run.rng.randrange(ALOHA_CAPTURE_ODDS) == 0:
                winner = run.rng.choice(contenders)
                if winner in transmitters:
                    run.deliver(winner)
                else:
                    run.collisions += 1
            else:
                run.collisions += 1
        # A jammer speaking alone is just a busy slot.
    run.finish()
    _publish(sched, run)


#: Memory key for the channel oracle's final summary (consensus value).
KEY_MAC_SUMMARY = "mac.summary"


def _publish(sched: Scheduler, run: _ChannelRun) -> None:
    """Write the oracle's summary identically into every agent's memory."""
    silenced = sorted(set(range(run.n)) - run.delivered)
    summary = {
        "slots": run.slots,
        "attempts": run.attempts,
        "collisions": run.collisions,
        "lost": run.lost,
        "delivered_order": list(run.delivered_order),
        "undelivered": silenced,
    }
    for view in sched.views:
        view.memory[KEY_MAC_SUMMARY] = dict(summary)


def _collect_contention(
    sched: Scheduler, rounds_by_phase: Dict[str, int]
) -> ContentionResult:
    summary = sched.unanimous_memory(KEY_MAC_SUMMARY)
    if not isinstance(summary, dict):
        raise ProtocolError(
            "contention run ended without a consensus channel summary"
        )
    return ContentionResult(
        rounds=sched.rounds,
        rounds_by_phase=rounds_by_phase,
        slots=int(summary["slots"]),
        attempts=int(summary["attempts"]),
        collisions=int(summary["collisions"]),
        lost=int(summary["lost"]),
        delivered_order=[int(i) for i in summary["delivered_order"]],
        undelivered=[int(i) for i in summary["undelivered"]],
    )


def _contention_plan(
    runner: Callable[[Scheduler], None]
) -> Callable[[Scheduler, bool, Optional[str]], List[object]]:
    def plan(
        sched: Scheduler, common_sense: bool, driver: Optional[str] = None
    ) -> List[object]:
        from repro.api.registry import Phase, resolve_driver

        # The MAC layer has a single implementation; the driver choice
        # only labels the phase (both names execute identical code).
        return [Phase("contention", runner, resolve_driver(driver))]

    return plan


def register_protocols() -> None:
    """Register the contention protocols (idempotent; last wins)."""
    from repro.api.registry import ProtocolSpec, register

    register(ProtocolSpec(
        name="contention-backoff",
        description="binary-exponential backoff channel over probe/"
        "restore slots (IC3Net-style contention window)",
        plan=_contention_plan(_run_backoff),
        collect=_collect_contention,
    ))
    register(ProtocolSpec(
        name="contention-aloha",
        description="slotted ALOHA channel with probabilistic loss and "
        "capture over probe/restore slots (LoRaMesh-style medium)",
        plan=_contention_plan(_run_aloha),
        collect=_collect_contention,
    ))
