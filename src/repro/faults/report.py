"""Outcome classification: the graceful-degradation trichotomy.

Every fault-injected run lands in exactly one of three buckets, and
this module is the single place that decides which:

* ``"survive"`` -- the faulted run completed and its result payload is
  byte-identical to the fault-free twin's (the faults were absorbed:
  e.g. a delayed agent on a protocol whose adjudication never reads
  positions);
* ``"detect"`` -- the run raised a :class:`~repro.exceptions.ReproError`
  (``ProtocolError``, ``ModelViolationError``,
  ``FaultBudgetError``, ...): the protocol noticed the adversary and
  refused to emit a wrong answer;
* ``"report"`` -- the run completed but its payload differs from the
  twin's: a *partial* result, with the damage visible in the payload
  itself (e.g. a crashed transmitter surfacing in
  ``ContentionResult.undelivered``).

The classification is computed by actually running both executions --
the faulted spec and its fault-free twin -- so it is exactly as
deterministic as the runs themselves, and a recorded classification
can be replayed bit-for-bit later (see :mod:`repro.faults.corpus`).

What is *not* an acceptable outcome is a silent wrong answer that the
payload does not distinguish from a healthy one; the property suite
(``tests/test_fault_properties.py``) pins every registry protocol to
this trichotomy.
"""

from __future__ import annotations

import dataclasses
import json
from typing import TYPE_CHECKING, Dict, Optional

from repro.exceptions import ReproError

if TYPE_CHECKING:  # circular only at type-check time
    from repro.api.fleet import SessionSpec

#: The three graceful-degradation outcomes, in canonical order.
OUTCOMES = ("survive", "detect", "report")


@dataclasses.dataclass(frozen=True)
class Classification:
    """Where one faulted spec landed in the trichotomy.

    Attributes:
        outcome: ``"survive"``, ``"detect"`` or ``"report"``.
        error_type: Exception class name for ``"detect"``, else None.
        error_message: Exception text for ``"detect"``, else None.
            Recorded for humans; replay asserts the type, not the
            message, so error wording can improve without invalidating
            the corpus.
        result: The faulted run's result payload (``to_dict()``) for
            ``"survive"``/``"report"``, else None.
        baseline: The fault-free twin's result payload, for context.
    """

    outcome: str
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    baseline: Optional[Dict[str, object]] = None


def _run_result(spec: "SessionSpec") -> Dict[str, object]:
    """Run one spec in-process and return its result payload."""
    from repro.api.session import RingSession
    from repro.types import Model

    session = RingSession(
        n=spec.n,
        model=Model(spec.model),
        backend=spec.backend,
        seed=spec.seed,
        common_sense=spec.common_sense,
        id_bound=spec.id_bound,
        config=spec.config,
        driver=spec.driver,
        unchecked=spec.unchecked,
        faults=spec.faults,
    )
    result = session.run(spec.protocol)
    return result.to_dict()  # type: ignore[attr-defined, no-any-return]


def classify_spec(spec: "SessionSpec") -> Classification:
    """Run ``spec`` and its fault-free twin; place it in the trichotomy.

    The twin shares every axis except the fault plan, so any payload
    difference is attributable to the faults alone.  Raises whatever
    the *twin* raises -- a spec whose fault-free execution fails is
    misconfigured, not gracefully degraded -- while faulted-run
    failures of the :class:`~repro.exceptions.ReproError` family are
    the ``"detect"`` outcome.  (Non-Repro exceptions from the faulted
    run propagate: an adversary must never be able to produce an
    uncontrolled crash.)
    """
    twin = dataclasses.replace(spec, faults=None)
    baseline = _run_result(twin)
    try:
        faulted = _run_result(spec)
    except ReproError as error:
        return Classification(
            outcome="detect",
            error_type=type(error).__name__,
            error_message=str(error),
            baseline=baseline,
        )
    same = json.dumps(faulted, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
    return Classification(
        outcome="survive" if same else "report",
        result=faulted,
        baseline=baseline,
    )
