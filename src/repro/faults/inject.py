"""FaultInjector: the scheduler hook that executes a FaultPlan.

The injector sits between a protocol's decision and the simulator: the
scheduler hands it the round's direction vector and round index, and it
returns the vector the adversary actually lets through.  Application
order within a round is fixed (delays, then Byzantine corruption, then
crash-stop), chosen so the strongest adversary wins: a crashed slot is
IDLE no matter what its Byzantine or delayed persona wanted.

Determinism contract: the single ``random.Random(plan.seed)`` instance
is consumed in sorted slot order, once per active ``random``-mode slot
per round, so the injected fault stream is a pure function of
``(plan, round history)`` -- independent of backend, driver or host.
"""

from __future__ import annotations

import random
from typing import Dict, List, MutableMapping, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.types import LocalDirection

#: The Byzantine ``random`` mode draws from the two moving directions
#: only -- a Byzantine agent in the basic model must still move.
_RANDOM_DIRECTIONS = (LocalDirection.RIGHT, LocalDirection.LEFT)


def scramble_memory(memory: MutableMapping[str, object]) -> None:
    """Corrupt a protocol memory in place, type-exactly.

    Booleans are negated and ints are xor-ed with 1; every other value
    (enums, strings, Fractions, tuples) is left alone so the corruption
    perturbs protocol *state* without fabricating values outside a
    slot's type domain.  Keys are visited in sorted order for
    determinism.
    """
    for key in sorted(memory):
        value = memory[key]
        if type(value) is bool:
            memory[key] = not value
        elif type(value) is int:
            memory[key] = value ^ 1


class FaultInjector:
    """Applies one :class:`FaultPlan` to a run's direction stream."""

    def __init__(self, plan: FaultPlan, n: int) -> None:
        plan.validate_for(n)
        self.plan = plan
        self.n = n
        self._crashes: Tuple[Tuple[int, int], ...] = plan.crashes
        self._byzantine: Tuple[Tuple[int, int, str], ...] = plan.byzantine
        self._delays: Tuple[Tuple[int, int], ...] = plan.delays
        self._max_lag = max((lag for _, lag in plan.delays), default=0)
        self._rng = random.Random(plan.seed)
        #: Per-round recorded *intended* directions, kept only as far
        #: back as the largest delay lag reaches.
        self._intents: Dict[int, List[LocalDirection]] = {}
        self._scrambled: set = set()

    @property
    def idle_exempt(self) -> frozenset:
        """Slots the simulator must allow to idle in must-move models.

        A crash-stopped agent is IDLE by force, not by protocol choice,
        so the basic/perceptive "must move" check does not apply to it.
        """
        return frozenset(slot for slot, _ in self._crashes)

    def crashed_at(self, t: int) -> frozenset:
        """Slots already crash-stopped at round ``t``."""
        return frozenset(s for s, r in self._crashes if t >= r)

    def transform(
        self,
        directions: Sequence[LocalDirection],
        t: int,
        memories: Sequence[MutableMapping[str, object]],
    ) -> List[LocalDirection]:
        """The direction vector the adversary lets through at round ``t``."""
        out = list(directions)
        if self._max_lag:
            self._intents[t] = list(directions)
            stale = t - self._max_lag
            for old in [r for r in self._intents if r < stale]:
                del self._intents[old]
            for slot, lag in self._delays:
                src = t - lag
                if src < 0:
                    src = 0
                recorded = self._intents.get(src)
                if recorded is not None:
                    out[slot] = recorded[slot]
        for slot, start, mode in self._byzantine:
            if t < start:
                continue
            if mode == "flip":
                out[slot] = out[slot].opposite()
            elif mode == "random":
                out[slot] = self._rng.choice(_RANDOM_DIRECTIONS)
            else:  # scramble: flip direction + one-shot memory corruption
                out[slot] = out[slot].opposite()
                if slot not in self._scrambled:
                    self._scrambled.add(slot)
                    scramble_memory(memories[slot])
        for slot, start in self._crashes:
            if t >= start:
                out[slot] = LocalDirection.IDLE
        return out
