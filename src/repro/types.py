"""Shared value types: model variants, directions, chirality, observations.

These are the vocabulary types used across the simulator, the scheduler
and every protocol.  They deliberately contain no behaviour beyond small
conversion helpers, so that each module can depend on them without
dragging in simulation machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple


class Model(enum.Enum):
    """The three model variants of Section I-A of the paper.

    * ``BASIC`` -- an agent must start every round moving right or left.
    * ``LAZY`` -- an agent may additionally start a round idle.
    * ``PERCEPTIVE`` -- the basic model plus the ``coll()`` observation
      (distance from the round's start position to the first collision).
    """

    BASIC = "basic"
    LAZY = "lazy"
    PERCEPTIVE = "perceptive"

    @property
    def allows_idle(self) -> bool:
        """Whether agents may choose to stay idle at the start of a round."""
        return self is Model.LAZY

    @property
    def reports_collisions(self) -> bool:
        """Whether agents receive ``coll()`` at the end of each round."""
        return self is Model.PERCEPTIVE


class LocalDirection(enum.Enum):
    """A direction as chosen by an agent, in the agent's own frame.

    ``RIGHT`` is the agent's own clockwise; an agent with flipped
    chirality moving ``RIGHT`` moves objectively anticlockwise.
    """

    RIGHT = "right"
    LEFT = "left"
    IDLE = "idle"

    def opposite(self) -> "LocalDirection":
        """The reversed direction; ``IDLE`` reverses to itself."""
        if self is LocalDirection.RIGHT:
            return LocalDirection.LEFT
        if self is LocalDirection.LEFT:
            return LocalDirection.RIGHT
        return LocalDirection.IDLE


class Chirality(enum.IntEnum):
    """An agent's private sense of direction.

    ``CLOCKWISE`` (+1) means the agent's "right" coincides with the
    objective clockwise direction (increasing position coordinate);
    ``ANTICLOCKWISE`` (-1) means it is flipped.  Agents never see this
    value -- it lives in the world state only.
    """

    CLOCKWISE = 1
    ANTICLOCKWISE = -1

    def flipped(self) -> "Chirality":
        return Chirality(-int(self))


def local_to_velocity(direction: LocalDirection, chirality: Chirality) -> int:
    """Map an agent's local direction choice to an objective velocity.

    Returns +1 (objective clockwise), -1 (objective anticlockwise) or 0.
    """
    if direction is LocalDirection.IDLE:
        return 0
    sign = 1 if direction is LocalDirection.RIGHT else -1
    return sign * int(chirality)


@dataclass(frozen=True, slots=True)
class Observation:
    """What one agent learns at the end of one round.

    Attributes:
        dist: Arc from the agent's start position to its end position,
            measured in the agent's own clockwise direction, in [0, 1).
        coll: Arc from the agent's start position to its first collision
            in the round, or ``None`` if the agent experienced no
            collision (or the model does not report collisions).  The
            value is an unsigned arc length along the agent's initial
            direction of travel; an initially idle agent that is struck
            reports 0.
    """

    dist: Fraction
    coll: Optional[Fraction] = None

    @property
    def moved(self) -> bool:
        """True when the agent's end position differs from its start."""
        return self.dist != 0

    @property
    def collided(self) -> bool:
        """True when a first-collision distance was reported."""
        return self.coll is not None


@dataclass(frozen=True, slots=True)
class RoundOutcome:
    """The full (omniscient) outcome of simulating one round.

    Produced by the simulator for the scheduler; never shown to agents
    directly.  ``observations[i]`` is agent ``i``'s view of the round.

    Attributes:
        observations: Per-agent observations, in ring order.
        rotation_index: The round's rotation index r = (nC - nA) mod n
            (Lemma 1), in the objective clockwise direction.
        collision_events: Total number of collision events processed.
    """

    observations: Tuple[Observation, ...]
    rotation_index: int
    collision_events: int


FractionLike = Fraction
PositionSeq = Sequence[Fraction]
