"""Intersection-free families (Definition 24, Fact 25).

A family of k-subsets of [N] is (N,k,l)-intersection free when no two
members share exactly l elements.  Frankl and Füredi's bound -- for k a
power of two with k <= N/64, log2 |F| <= (11k/12) log2(N/k) when
l = k/2 -- is the extremal input to the distinguisher lower bound
(Lemma 23): a large independent set in the "intersection exactly n"
graph would contradict it.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError


def is_intersection_free(
    family: Sequence[Iterable[int]], k: int, l: int
) -> bool:
    """Check that all members have size k and no two intersect in
    exactly l elements."""
    sets = [frozenset(f) for f in family]
    if any(len(s) != k for s in sets):
        return False
    for a, b in itertools.combinations(sets, 2):
        if len(a & b) == l:
            return False
    return True


def frankl_furedi_bound(universe: int, k: int) -> float:
    """Upper bound on log2 |F| for (N,k,k/2)-intersection free families
    (Fact 25).  Requires k a power of two and k <= N/64."""
    if k & (k - 1):
        raise ConfigurationError("Fact 25 requires k to be a power of two")
    if k > universe / 64:
        raise ConfigurationError("Fact 25 requires k <= N/64")
    return (11 * k / 12) * math.log2(universe / k)


def chromatic_lower_bound(universe: int, n: int) -> float:
    """The Lemma 23 chain: log2 χ(G) >= (n/6) log2(N/(2n)) for the graph
    on 2n-subsets joined when they intersect in exactly n elements."""
    if 2 * n > universe:
        raise ConfigurationError("need 2n <= N")
    return (n / 6) * math.log2(universe / (2 * n))


def max_intersection_free_exhaustive(universe: int, k: int, l: int) -> int:
    """Largest (N,k,l)-intersection free family, by exhaustive search.

    Exponential; only for tiny parameters in tests (universe <= 8).
    """
    if universe > 8:
        raise ConfigurationError("exhaustive search: universe too large")
    subsets = [
        frozenset(c)
        for c in itertools.combinations(range(1, universe + 1), k)
    ]
    best = 0

    def extend(chosen, start):
        nonlocal best
        best = max(best, len(chosen))
        for i in range(start, len(subsets)):
            cand = subsets[i]
            if all(len(cand & c) != l for c in chosen):
                chosen.append(cand)
                extend(chosen, i + 1)
                chosen.pop()

    extend([], 0)
    return best
