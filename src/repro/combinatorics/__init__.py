"""Combinatorial structures behind the paper's bounds.

* (N,n)-distinguishers (Definition 20) -- the symmetry-breaking
  structure whose minimal size Θ(n log(N/n)/log n) governs the even-n
  basic/lazy lower bounds;
* (N,n)-selective families (Definition 35, Clementi et al.) -- used by
  the perceptive NMoveS algorithm;
* intersection-free family bounds (Fact 25) -- the extremal set theory
  input to the distinguisher lower bound;
* closed-form bound formulas for every Table I / Table II cell.
"""

from repro.combinatorics.distinguishers import (
    is_distinguisher,
    random_distinguisher,
    minimal_distinguisher_size,
    greedy_distinguisher,
    is_strong_distinguisher,
)
from repro.combinatorics.selective_families import (
    is_selective_family,
    scale_family,
    greedy_selective_family,
)
from repro.combinatorics.intersection_free import (
    is_intersection_free,
    frankl_furedi_bound,
)
from repro.combinatorics import bounds

__all__ = [
    "is_distinguisher",
    "random_distinguisher",
    "minimal_distinguisher_size",
    "greedy_distinguisher",
    "is_strong_distinguisher",
    "is_selective_family",
    "scale_family",
    "greedy_selective_family",
    "is_intersection_free",
    "frankl_furedi_bound",
    "bounds",
]
