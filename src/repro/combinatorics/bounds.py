"""Closed-form complexity bounds for every Table I / Table II cell.

These functions return the *growth term* of each bound (no hidden
constants): benchmarks fit measured round counts against them to check
the paper's shapes rather than absolute values.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def _check(universe: int, n: int) -> None:
    if not (universe >= n > 4):
        raise ConfigurationError("bounds assume N >= n > 4")


def log_n_bound(universe: int) -> float:
    """O(log N): odd-n leader election, Table II cells, broadcasts."""
    return math.log2(max(2, universe))


def log_ratio_bound(universe: int, n: int) -> float:
    """Θ(log(N/n)): odd-n nontrivial move (Prop 19)."""
    _check(universe, n)
    return math.log2(max(2.0, universe / n))


def log_squared_bound(universe: int) -> float:
    """O(log² N): constructive basic-model even-n leader election with a
    common sense of direction (Lemma 13)."""
    return math.log2(max(2, universe)) ** 2


def coordination_even_bound(universe: int, n: int) -> float:
    """Θ(n log(N/n) / log n): every coordination problem in the basic
    and lazy models with even n (Cor 28)."""
    _check(universe, n)
    return n * math.log2(max(2.0, universe / n)) / math.log2(n)


def distinguisher_size_bound(universe: int, n: int) -> float:
    """Θ(n log(N/n) / log n): smallest (N,n)-distinguisher (Cor 29).

    Unlike the protocol bounds, this is pure combinatorics: any
    1 <= n <= N is meaningful (the n > 4 ring assumption does not apply).
    """
    if not (universe >= n >= 1):
        raise ConfigurationError("need 1 <= n <= N")
    return n * math.log2(max(2.0, universe / n)) / math.log2(max(2, n))


def distinguisher_counting_bound(universe: int, n: int) -> float:
    """The Lemma 43 counting floor: log2 C(N,n) / log2(n+1), a lower
    bound for *strong* distinguishers (simple but slightly weaker)."""
    if not (universe >= n >= 1):
        raise ConfigurationError("need 1 <= n <= N")
    return math.log2(math.comb(universe, n)) / math.log2(n + 1)


def nmove_perceptive_bound(universe: int, n: int) -> float:
    """O(√n log N): NMoveS (Lemma 36)."""
    _check(universe, n)
    return math.sqrt(n) * math.log2(max(2, universe))


def ld_walk_bound(universe: int, n: int) -> float:
    """n + O(log N): location discovery via rotation sweeps (Lemma 16)."""
    _check(universe, n)
    return n + math.log2(max(2, universe))


def ld_lazy_even_bound(universe: int, n: int) -> float:
    """n + Θ(n log(N/n)/log n): lazy model, even n (Table I)."""
    _check(universe, n)
    return n + coordination_even_bound(universe, n)


def ld_perceptive_bound(universe: int, n: int) -> float:
    """n/2 + O(√n log² N): perceptive model, even n (Table I)."""
    _check(universe, n)
    return n / 2 + math.sqrt(n) * math.log2(max(2, universe)) ** 2


def ld_lower_bound(n: int, perceptive: bool) -> float:
    """Lemma 6: n-1 rounds (dist() only) or n/2 (perceptive)."""
    return n / 2 if perceptive else n - 1


def fits_bound(measured, inputs, bound_fn, tolerance: float = 3.0) -> bool:
    """Crude shape check: the measured/bound ratio across inputs must
    stay within a multiplicative band of width ``tolerance``."""
    ratios = [
        m / bound_fn(*args) for m, args in zip(measured, inputs)
        if bound_fn(*args) > 0
    ]
    return bool(ratios) and max(ratios) <= tolerance * min(ratios)
