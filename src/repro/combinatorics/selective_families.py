"""(N,n)-selective families (Definition 35; Clementi, Monti, Silvestri).

A family F of subsets of [N] is (N,n)-selective when every nonempty
Z ⊆ [N] with |Z| <= n has some F in the family with |Z ∩ F| = 1.
Clementi et al. prove families of size O(n log(N/n)) exist; NMoveS
(Algorithm 4) executes one on the current local leaders.

Three constructions are provided:

* :func:`scale_family` -- the standard randomized construction:
  for each density scale 2^-s (s = 0..ceil(log n)) draw ``reps``
  pseudo-random sets.  For any fixed Z, the scale nearest 1/|Z|
  isolates an element with constant probability, so the family works
  for a fixed target with overwhelming probability; the deterministic
  seed makes it a published protocol constant (our realisation of the
  paper's probabilistic-method step).
* :func:`greedy_selective_family` -- an exhaustively *verified* family
  for small parameters, built greedily to cover all candidate sets.
* :func:`is_selective_family` -- the exponential-time verifier used in
  tests and the greedy construction.
"""

from __future__ import annotations

import itertools
import random
from typing import FrozenSet, Iterable, List, Sequence, Set

from repro.exceptions import ConfigurationError


def is_selective_family(
    family: Sequence[Iterable[int]], universe: int, n: int
) -> bool:
    """Exhaustively check (N,n)-selectivity.  Exponential in N: use only
    for small parameters (N <= ~16)."""
    sets = [frozenset(f) for f in family]
    ground = range(1, universe + 1)
    for size in range(1, n + 1):
        for z in itertools.combinations(ground, size):
            zs = frozenset(z)
            if not any(len(zs & f) == 1 for f in sets):
                return False
    return True


def scale_family(
    universe: int, n: int, seed: int = 0, reps: int | None = None
) -> List[FrozenSet[int]]:
    """Pseudo-random multi-scale selective family over [universe].

    Scale s includes each element independently with probability 2^-s;
    scale 0 is the full universe (which selects every singleton Z).
    Size: (ceil(log2 n) + 1) * reps sets, reps defaulting to
    max(4, bit length of the universe).
    """
    if n < 1 or universe < n:
        raise ConfigurationError("need 1 <= n <= universe")
    rng = random.Random(seed)
    if reps is None:
        reps = max(8, 2 * universe.bit_length())
    scales = max(1, n - 1).bit_length()
    family: List[FrozenSet[int]] = [frozenset(range(1, universe + 1))]
    for s in range(1, scales + 1):
        for _rep in range(reps):
            members = {
                x for x in range(1, universe + 1)
                if rng.getrandbits(s) == 0
            }
            family.append(frozenset(members))
    return family


def greedy_selective_family(universe: int, n: int) -> List[FrozenSet[int]]:
    """Small verified family: greedily add the subset covering the most
    still-unselected targets.  Exponential; for tests and tiny N only."""
    if universe > 14:
        raise ConfigurationError(
            "greedy construction enumerates all subsets; universe too large"
        )
    ground = list(range(1, universe + 1))
    targets: List[FrozenSet[int]] = [
        frozenset(z)
        for size in range(1, n + 1)
        for z in itertools.combinations(ground, size)
    ]
    candidates: List[FrozenSet[int]] = [
        frozenset(c)
        for size in range(1, universe + 1)
        for c in itertools.combinations(ground, size)
    ]
    family: List[FrozenSet[int]] = []
    uncovered: Set[FrozenSet[int]] = set(targets)
    while uncovered:
        best, best_cover = None, -1
        for cand in candidates:
            cover = sum(1 for z in uncovered if len(z & cand) == 1)
            if cover > best_cover:
                best, best_cover = cand, cover
        if best is None or best_cover == 0:
            raise ConfigurationError("greedy construction stalled")
        family.append(best)
        uncovered = {z for z in uncovered if len(z & best) != 1}
    return family


def selects(family: Sequence[Iterable[int]], z: Set[int]) -> bool:
    """Whether some member of the family intersects ``z`` in exactly one
    element (the per-target selectivity predicate)."""
    zs = set(z)
    return any(len(zs & set(f)) == 1 for f in family)
