"""(N,n)-distinguishers (Definitions 20-21) and their sizes.

A family S_1..S_k of subsets of [N] is an (N,n)-distinguisher when for
every pair of *disjoint* n-subsets X1, X2 some S_i satisfies
|S_i ∩ X1| != |S_i ∩ X2|.  Proposition 22 reduces the weak nontrivial
move problem to this notion: until the first nontrivial round, an
agent's only possible behaviour is a fixed published sequence of sets,
and a round breaks the symmetry between the two chirality classes
exactly when its set distinguishes them.  The paper proves the minimal
size is Θ(n log(N/n) / log n) (Lemma 23 + Theorem 27).

This module provides: an exhaustive verifier, Theorem 27's random
construction, a greedy (verified) constructor, an exact minimal-size
search (branch-and-bound hitting set, small parameters only), and the
strong-distinguisher check of Definition 21.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


def _disjoint_pairs(universe: int, n: int) -> List[Tuple[int, int]]:
    """All unordered pairs of disjoint n-subsets of [universe], as
    bitmasks (element x -> bit x-1)."""
    masks = [
        sum(1 << (x - 1) for x in combo)
        for combo in itertools.combinations(range(1, universe + 1), n)
    ]
    pairs = []
    for i, m1 in enumerate(masks):
        for m2 in masks[i + 1:]:
            if m1 & m2 == 0:
                pairs.append((m1, m2))
    return pairs


def _distinguishes(set_mask: int, pair: Tuple[int, int]) -> bool:
    m1, m2 = pair
    return (set_mask & m1).bit_count() != (set_mask & m2).bit_count()


def _to_mask(s: Iterable[int]) -> int:
    return sum(1 << (x - 1) for x in s)


def is_distinguisher(
    family: Sequence[Iterable[int]], universe: int, n: int
) -> bool:
    """Exhaustive check of Definition 20.  Exponential in ``universe``."""
    masks = [_to_mask(s) for s in family]
    for pair in _disjoint_pairs(universe, n):
        if not any(_distinguishes(m, pair) for m in masks):
            return False
    return True


def violating_pair(
    family: Sequence[Iterable[int]], universe: int, n: int
) -> Optional[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """A disjoint pair the family fails to distinguish, or None."""
    masks = [_to_mask(s) for s in family]
    for pair in _disjoint_pairs(universe, n):
        if not any(_distinguishes(m, pair) for m in masks):
            def unmask(m: int) -> FrozenSet[int]:
                return frozenset(
                    x for x in range(1, universe + 1) if m >> (x - 1) & 1
                )

            return unmask(pair[0]), unmask(pair[1])
    return None


def random_distinguisher(
    universe: int, n: int, seed: int = 0, size: Optional[int] = None
) -> List[FrozenSet[int]]:
    """Theorem 27's construction: each element joins each set w.p. 1/2.

    The default size follows the paper's O(n log(N/n)/log n) bound with
    a small constant; use :func:`is_distinguisher` to verify for small
    parameters.
    """
    import math

    if size is None:
        ratio = max(2.0, universe / max(1, n))
        size = max(4, int(4 * n * math.log2(ratio) / max(1.0, math.log2(max(2, n)))))
    rng = random.Random(seed)
    return [
        frozenset(
            x for x in range(1, universe + 1) if rng.getrandbits(1)
        )
        for _ in range(size)
    ]


def greedy_distinguisher(universe: int, n: int) -> List[FrozenSet[int]]:
    """Verified distinguisher via greedy hitting-set.  Small N only."""
    if universe > 12:
        raise ConfigurationError("greedy distinguisher: universe too large")
    pairs = _disjoint_pairs(universe, n)
    # Complement-closed search space: S and its complement distinguish
    # the same pairs, so fix element 1's membership.
    candidates = [m for m in range(1 << universe) if m & 1]
    family_masks: List[int] = []
    remaining = list(pairs)
    while remaining:
        best, best_hit = None, 0
        for cand in candidates:
            hit = sum(1 for p in remaining if _distinguishes(cand, p))
            if hit > best_hit:
                best, best_hit = cand, hit
        if best is None:
            raise ConfigurationError("no candidate distinguishes a pair: bug")
        family_masks.append(best)
        remaining = [p for p in remaining if not _distinguishes(best, p)]
    return [
        frozenset(x for x in range(1, universe + 1) if m >> (x - 1) & 1)
        for m in family_masks
    ]


def minimal_distinguisher_size(
    universe: int, n: int, max_size: int = 6
) -> Optional[int]:
    """Exact minimal (N,n)-distinguisher size by branch-and-bound.

    Returns None if no family of size <= max_size exists.  Exponential;
    intended for the lower-bound benchmark's small instances.
    """
    pairs = _disjoint_pairs(universe, n)
    if not pairs:
        return 0
    candidates = [m for m in range(1 << universe) if m & 1]
    hit_sets = {
        cand: frozenset(
            i for i, p in enumerate(pairs) if _distinguishes(cand, p)
        )
        for cand in candidates
    }
    all_pairs = frozenset(range(len(pairs)))

    def search(covered: FrozenSet[int], budget: int) -> bool:
        if covered == all_pairs:
            return True
        if budget == 0:
            return False
        # Branch on the first uncovered pair: some chosen set must hit it.
        target = min(all_pairs - covered)
        for cand, hits in hit_sets.items():
            if target in hits:
                if search(covered | hits, budget - 1):
                    return True
        return False

    for k in range(1, max_size + 1):
        if search(frozenset(), k):
            return k
    return None


def is_strong_distinguisher(
    family: Sequence[Iterable[int]],
    universe: int,
    prefix_lengths: Dict[int, int],
) -> bool:
    """Definition 21: for each n, the prefix of length prefix_lengths[n]
    must be an (N,n)-distinguisher."""
    for n, length in prefix_lengths.items():
        if length > len(family):
            return False
        if not is_distinguisher(list(family)[:length], universe, n):
            return False
    return True
