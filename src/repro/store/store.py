"""The two-tier RunReport store: in-process LRU over on-disk entries.

Layout (``~/.cache/repro`` by default; ``REPRO_CACHE_DIR`` or
``--cache-dir`` override)::

    <cache_dir>/v1/<digest[:2]>/<digest>.json   one schema-v1 envelope
    <cache_dir>/events.jsonl                    per-process counter lines

An envelope records the digest it is filed under, the canonical key
document, the producing spec and backend, the repro version, and the
result payload.  Writes are write-then-``os.replace`` into the final
path, so concurrent writers racing the same key each land a complete
envelope and readers never observe a half-written file.  On read,
*anything* unexpected -- unreadable file, malformed JSON, schema or
digest mismatch, missing result -- is a miss, never an error: the
caller recomputes, exactly as if the entry did not exist.  A store
whose directory cannot be written (read-only filesystem, permissions)
degrades to its memory tier alone.

Counters (hits / misses / stores / store failures) are in-process and
appended to ``events.jsonl`` as one JSON line per process at exit, so
``python -m repro cache stats`` can report activity across the many
short-lived processes of a test suite or CI job.
"""

from __future__ import annotations

import atexit
import copy
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional

#: Schema version of the on-disk envelope; mismatches are misses.
STORE_SCHEMA = 1

#: In-process LRU capacity (entries, not bytes).
DEFAULT_MEMORY_SLOTS = 256

_COUNTER_FIELDS = ("hits", "misses", "stores", "store_failures")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class RunStore:
    """Content-addressed RunReport store with an in-process LRU tier.

    Attributes:
        cache_dir: Root directory of the on-disk tier.
        memory_slots: LRU capacity of the in-process tier.
        hits / misses / stores / store_failures: In-process counters
            since the last event flush (flushed to ``events.jsonl`` at
            process exit).
    """

    def __init__(
        self,
        cache_dir: Optional[object] = None,
        memory_slots: int = DEFAULT_MEMORY_SLOTS,
    ) -> None:
        self.cache_dir = (
            Path(str(cache_dir)) if cache_dir is not None
            else default_cache_dir()
        )
        self.memory_slots = max(0, memory_slots)
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_failures = 0
        atexit.register(self.flush_events)

    # -- paths -----------------------------------------------------------

    @property
    def entries_dir(self) -> Path:
        return self.cache_dir / f"v{STORE_SCHEMA}"

    @property
    def events_path(self) -> Path:
        return self.cache_dir / "events.jsonl"

    def entry_path(self, digest: str) -> Path:
        return self.entries_dir / digest[:2] / f"{digest}.json"

    # -- the two tiers ---------------------------------------------------

    def _remember(self, digest: str, envelope: Dict[str, object]) -> None:
        if self.memory_slots == 0:
            return
        self._memory[digest] = envelope
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    def load_entry(self, digest: str) -> Optional[Dict[str, object]]:
        """Read and validate the on-disk envelope (no counters, no
        memory promotion) -- the raw primitive ``get`` and ``verify``
        build on.  Returns ``None`` for anything less than a complete,
        schema-matching, digest-matching envelope.
        """
        try:
            text = self.entry_path(digest).read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            return None  # corrupt or truncated: a miss, not an error
        if not isinstance(envelope, dict):
            return None
        if envelope.get("store_schema") != STORE_SCHEMA:
            return None  # version mismatch: a miss, not an error
        if envelope.get("digest") != digest:
            return None  # misfiled entry: never serve it
        if "result" not in envelope:
            return None
        return envelope

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The envelope stored under ``digest``, or ``None`` (a miss).

        Memory tier first, then disk (promoting into memory).  The
        returned envelope is a private copy -- callers can mutate it
        without poisoning the cache.
        """
        cached = self._memory.get(digest)
        if cached is not None:
            self._memory.move_to_end(digest)
            self.hits += 1
            return copy.deepcopy(cached)
        envelope = self.load_entry(digest)
        if envelope is None:
            self.misses += 1
            return None
        self._remember(digest, envelope)
        self.hits += 1
        return copy.deepcopy(envelope)

    def put(
        self,
        digest: str,
        result: Dict[str, object],
        *,
        key: Dict[str, object],
        spec: Dict[str, object],
        backend: str,
    ) -> bool:
        """File ``result`` under ``digest``; returns whether the disk
        tier accepted it.

        The memory tier always takes the entry; the disk write is
        atomic (unique temp file, then ``os.replace``) and any
        ``OSError`` -- read-only directory, full disk, racing cleanup
        -- degrades to memory-only silently.
        """
        from repro import __version__

        envelope: Dict[str, object] = {
            "store_schema": STORE_SCHEMA,
            "digest": digest,
            "key": key,
            "spec": spec,
            "backend": backend,
            "repro_version": __version__,
            "result": result,
        }
        self._remember(digest, copy.deepcopy(envelope))
        path = self.entry_path(digest)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(envelope, sort_keys=True, indent=None) + "\n"
            )
            os.replace(tmp, path)
        except OSError:
            self.store_failures += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    # -- maintenance -----------------------------------------------------

    def iter_digests(self) -> Iterator[str]:
        """All on-disk digests, sorted (deterministic verify order)."""
        if not self.entries_dir.is_dir():
            return
        for path in sorted(self.entries_dir.glob("*/*.json")):
            yield path.stem

    def stats(self) -> Dict[str, object]:
        """Entry count and bytes on disk plus cross-process counters."""
        entries = 0
        total = 0
        if self.entries_dir.is_dir():
            for path in self.entries_dir.glob("*/*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "cache_dir": str(self.cache_dir),
            "entries": entries,
            "bytes": total,
            "memory_entries": len(self._memory),
            "events": self.event_totals(),
        }

    def clear(self) -> int:
        """Drop both tiers; returns how many disk entries were removed."""
        self._memory.clear()
        removed = 0
        if self.entries_dir.is_dir():
            for path in sorted(
                self.entries_dir.rglob("*"), reverse=True
            ):
                try:
                    if path.is_dir():
                        path.rmdir()
                    else:
                        path.unlink()
                        if path.suffix == ".json":
                            removed += 1
                except OSError:
                    continue
            try:
                self.entries_dir.rmdir()
            except OSError:
                pass
        try:
            self.events_path.unlink()
        except OSError:
            pass
        return removed

    # -- cross-process counters ------------------------------------------

    def flush_events(self) -> None:
        """Append this process's counters to ``events.jsonl`` and reset.

        One line per process with activity; idempotent when idle.  Any
        write failure is swallowed -- counters are observability, not
        correctness.
        """
        counters = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        if not any(counters.values()):
            return
        counters["pid"] = os.getpid()
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            with open(self.events_path, "a") as fh:
                fh.write(json.dumps(counters, sort_keys=True) + "\n")
        except OSError:
            return
        for name in _COUNTER_FIELDS:
            setattr(self, name, 0)

    def event_totals(self) -> Dict[str, int]:
        """Counters summed over ``events.jsonl`` plus this process's
        unflushed activity (malformed lines are skipped)."""
        totals = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        try:
            lines = self.events_path.read_text().splitlines()
        except OSError:
            return totals
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if not isinstance(event, dict):
                continue
            for name in _COUNTER_FIELDS:
                value = event.get(name)
                if isinstance(value, int):
                    totals[name] += value
        return totals
