"""The compute-or-fetch service layer over the run store.

This module owns the policy half of the cache: when caching is on
(explicit flag, or the ``REPRO_CACHE`` environment switch), which
store serves a directory (one :class:`~repro.store.store.RunStore`
per resolved path, process-wide), and the one-call primitive
:func:`compute_or_fetch` that the session, fleet and CLI wiring all
reduce to.

The contract everywhere: a fetch returns a result **bit-identical** to
what computing would have produced (property-tested across protocols,
models, backends, drivers and executors), and any cache problem --
unkeyable spec, corrupt entry, unwritable directory -- silently falls
back to computing.  Enabling the cache can change how fast an answer
arrives, never which answer.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.api.fleet import SessionSpec, run_session_spec
from repro.store.keys import safe_key
from repro.store.store import RunStore, default_cache_dir

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Process-wide store registry, one per resolved cache directory.
_STORES: Dict[str, RunStore] = {}


def cache_enabled_default() -> bool:
    """Whether the ``REPRO_CACHE`` environment switch turns caching on
    for surfaces that default to "ambient" (Fleet and the CLI)."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() in _TRUTHY


def resolve_cache(flag: Optional[bool]) -> bool:
    """An explicit flag wins; ``None`` defers to ``REPRO_CACHE``."""
    if flag is None:
        return cache_enabled_default()
    return bool(flag)


def get_store(cache_dir: Optional[object] = None) -> RunStore:
    """The process-wide store for ``cache_dir`` (default directory when
    ``None``), created on first use."""
    path = Path(str(cache_dir)) if cache_dir is not None else (
        default_cache_dir()
    )
    key = str(path)
    store = _STORES.get(key)
    if store is None:
        store = RunStore(path)
        _STORES[key] = store
    return store


def reset_stores() -> None:
    """Flush and forget every registered store (test isolation)."""
    for store in _STORES.values():
        store.flush_events()
    _STORES.clear()


def compute_or_fetch(
    spec: SessionSpec,
    *,
    store: Optional[RunStore] = None,
    cache_dir: Optional[object] = None,
) -> Tuple[Dict[str, object], bool, Optional[str]]:
    """``(result, fetched, digest)`` for ``spec``.

    Fetches the stored result when the spec keys to an existing entry;
    otherwise computes through :func:`~repro.api.fleet.run_session_spec`
    and files the result.  ``fetched`` says which happened; ``digest``
    is ``None`` for uncacheable specs (which always compute).
    """
    if store is None:
        store = get_store(cache_dir)
    keyed = safe_key(spec)
    if keyed is not None:
        digest, key_doc = keyed
        entry = store.get(digest)
        if entry is not None:
            return entry["result"], True, digest  # type: ignore[return-value]
    row = run_session_spec(spec)
    result: Dict[str, object] = row["result"]  # type: ignore[assignment]
    if keyed is not None:
        store.put(
            digest, result, key=key_doc, spec=spec.to_dict(),
            backend=spec.backend,
        )
        return result, False, digest
    return result, False, None


def verify_entry(store: RunStore, digest: str) -> Dict[str, object]:
    """Recompute one stored entry and compare bit-for-bit.

    Reruns the envelope's recorded producing spec through the normal
    session path and asserts the fresh result equals the stored one.
    Returns a JSON-ready row: ``{"digest", "ok", "detail"}``.
    """
    envelope = store.load_entry(digest)
    if envelope is None:
        return {
            "digest": digest, "ok": False,
            "detail": "entry unreadable or invalid",
        }
    try:
        spec = SessionSpec.from_dict(dict(envelope["spec"]))  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError):
        return {
            "digest": digest, "ok": False,
            "detail": "envelope spec does not round-trip",
        }
    fresh = run_session_spec(spec)["result"]
    if fresh != envelope["result"]:
        return {
            "digest": digest, "ok": False,
            "detail": "stored result differs from recompute",
        }
    return {
        "digest": digest, "ok": True,
        "detail": f"recomputed {spec.protocol} n={spec.n} bit-identical",
    }
