"""Canonical run keys: the content address of a deterministic run.

A run's result is a pure function of its *backend-independent* spec:
protocol, ring size, model, seed, configuration generator, ID bound,
common sense of direction, unchecked mode, and the phase plan the
registry routes that setting to.  Backend, driver, shard count,
executor kind and worker count are deliberately **excluded** from the
key: results are property-tested bit-identical across every
combination of them, so excluding them is what lets a report computed
once on the lattice backend serve later array, fraction, callback,
sharded and pooled requests.

The key document is serialised as canonical JSON -- sorted keys,
compact separators, ASCII only -- and hashed with SHA-256.  The exact
serialisation (and a known-answer digest) is pinned by
``tests/test_store_keys.py`` so digests are stable across Python
versions, processes and machines; hash randomisation cannot touch it
because every dict is emitted sorted.

The phase plan is recovered without building a ring: the registry's
``plan`` callables only consult the scheduler's model and ring parity,
so a tiny duck-typed probe stands in for the real
:class:`~repro.core.scheduler.Scheduler`.  Protocols whose plan needs
more than the probe offers are simply uncacheable (:func:`safe_key`
returns ``None`` and the caller computes as before) -- the cache can
only ever decline, never corrupt.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.api.registry import DEFAULT_DRIVER, get_protocol
from repro.types import Model

if TYPE_CHECKING:  # circular only at type-check time
    from repro.api.fleet import SessionSpec

#: Schema version of the key document; bumping it invalidates every
#: stored digest at once.
KEY_SCHEMA = 1


def canonical_json(document: object) -> str:
    """The one true JSON serialisation digests are computed over.

    Sorted keys, compact separators, ASCII escapes: byte-identical for
    equal documents regardless of dict insertion order, Python version
    or hash seed.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


class _ProbeState:
    """Just enough ring state for the registry's plan routing."""

    __slots__ = ("n", "parity_even")

    def __init__(self, n: int) -> None:
        self.n = n
        self.parity_even = n % 2 == 0


class _PlanProbe:
    """Duck-typed Scheduler stand-in: plan() only reads model/parity."""

    __slots__ = ("state", "model")

    def __init__(self, n: int, model: Model) -> None:
        self.state = _ProbeState(n)
        self.model = model


def phase_plan(spec: "SessionSpec") -> List[str]:
    """The phase names the registry would run for ``spec``'s setting.

    Included in the key so a routing change (a protocol gaining,
    losing or reordering phases) can never serve a stale report.
    Raises whatever the registry's plan raises -- unknown protocols,
    infeasible settings, or probe-incompatible custom plans; callers
    going through :func:`safe_key` treat any failure as "uncacheable".
    """
    proto = get_protocol(spec.protocol)
    probe = _PlanProbe(spec.n, Model(spec.model))
    # Phase *names* are driver-independent (the driver only selects
    # between two bit-exact implementations of each phase).
    phases = proto.plan(probe, spec.common_sense, DEFAULT_DRIVER)  # type: ignore[arg-type]
    return [phase.name for phase in phases]


def key_document(spec: "SessionSpec") -> Dict[str, object]:
    """The backend-independent key payload for ``spec``.

    Everything that determines the result is here; everything that is
    merely an equivalent way of computing it (backend, driver, shards,
    executor, workers) is not.
    """
    document: Dict[str, object] = {
        "key_schema": KEY_SCHEMA,
        "protocol": spec.protocol,
        "n": spec.n,
        "model": spec.model,
        "seed": spec.seed,
        "config": spec.config,
        "common_sense": spec.common_sense,
        "id_bound": spec.id_bound,
        "unchecked": spec.unchecked,
        "phases": phase_plan(spec),
    }
    # The fault plan is part of what determines the outcome, so an
    # active plan joins the key; fault-free specs keep the exact
    # historical document (and digest bytes).  An unparseable or
    # out-of-range plan raises here, which safe_key maps to
    # "uncacheable" -- a spec that cannot run cannot be keyed either.
    if spec.faults is not None:
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.from_json(spec.faults)
        plan.validate_for(spec.n)
        document["faults"] = plan.to_dict()
    return document


def run_key(spec: "SessionSpec") -> str:
    """SHA-256 hex digest of ``spec``'s canonical key document."""
    payload = canonical_json(key_document(spec))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def safe_key(spec: "SessionSpec") -> Optional[Tuple[str, Dict[str, object]]]:
    """``(digest, key_document)`` for ``spec``, or ``None`` if it
    cannot be keyed (unknown protocol, infeasible setting, a plan the
    probe cannot drive).  ``None`` means "compute as if there were no
    cache" -- the failure will surface, if at all, exactly where it
    always did.
    """
    try:
        document = key_document(spec)
    except Exception:  # noqa: BLE001 -- any failure means "uncacheable"
        return None
    payload = canonical_json(document)
    return hashlib.sha256(payload.encode("ascii")).hexdigest(), document
