"""Content-addressed run cache: compute-or-fetch for deterministic runs.

Every run in this repo is deterministic end to end: Fleet results are
bit-identical across executors, worker counts, backends and drivers,
and RunReport JSON carries exact ``"p/q"`` rationals.  That makes each
result a pure function of its backend-independent spec -- so a repeated
request is a dictionary hit, not a simulation (ROADMAP open item 1).

This package is that dictionary:

* :mod:`repro.store.keys` -- the canonical run key: a SHA-256 digest
  over a pinned canonical-JSON serialisation of the backend-independent
  spec (protocol, n, model, seed, config, id bound, common sense,
  unchecked, and the registry's phase plan).  Backend, driver, shard
  count and executor are deliberately excluded: results are
  property-tested bit-identical across all of them, which is what lets
  a lattice-computed report serve an array request.

* :mod:`repro.store.store` -- :class:`~repro.store.store.RunStore`, a
  two-tier store: an in-process LRU dict in front of an on-disk
  content-addressed layout (``~/.cache/repro`` or ``--cache-dir``,
  atomic write-then-rename).  Corrupt, truncated or version-mismatched
  entries are misses, never errors.

* :mod:`repro.store.service` -- :func:`compute_or_fetch` and the store
  registry, wired into :meth:`RingSession.run <repro.api.session.RingSession.run>`,
  :class:`~repro.api.fleet.Fleet` (pre-flight hit/miss partition plus
  intra-sweep dedup) and the CLI (``--cache`` / ``--no-cache`` /
  ``--cache-dir``; ``python -m repro cache stats|verify|clear``).

The committed ``BENCH_cache.json`` report gates the win: warm hits
>= 20x over recompute and intra-sweep dedup >= 1.5x on a
duplicate-heavy fleet, bit-exactness enforced before timing.
"""

from repro.store.keys import canonical_json, key_document, run_key, safe_key
from repro.store.service import (
    cache_enabled_default,
    compute_or_fetch,
    get_store,
    resolve_cache,
    verify_entry,
)
from repro.store.store import RunStore, default_cache_dir

__all__ = [
    "RunStore",
    "cache_enabled_default",
    "canonical_json",
    "compute_or_fetch",
    "default_cache_dir",
    "get_store",
    "key_document",
    "resolve_cache",
    "run_key",
    "safe_key",
    "verify_entry",
]
