"""Exact circle arithmetic on the unit-circumference ring.

All positions are rationals in [0, 1).  Working over
:class:`fractions.Fraction` keeps every collision time and every
observation exact, which matters because the paper's protocols test
*equalities* between observed quantities (e.g. ``2z = y1 + ... + yj`` in
Algorithm 5); floating point would need tolerances and could mislabel
agents.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

ONE = Fraction(1)
ZERO = Fraction(0)


def normalize(x: Fraction) -> Fraction:
    """Reduce a coordinate to the canonical representative in [0, 1)."""
    return x - (x // 1)


def cw_arc(start: Fraction, end: Fraction) -> Fraction:
    """Arc length from ``start`` to ``end`` walking clockwise.

    Clockwise is the direction of increasing coordinate.  The result is
    in [0, 1); ``cw_arc(p, p) == 0``.
    """
    return normalize(end - start)


def ccw_arc(start: Fraction, end: Fraction) -> Fraction:
    """Arc length from ``start`` to ``end`` walking anticlockwise."""
    return normalize(start - end)


def gaps(positions: Sequence[Fraction]) -> List[Fraction]:
    """Clockwise gaps between consecutive agents.

    ``gaps(p)[i]`` is the arc from ``p[i]`` to ``p[(i + 1) % n]`` going
    clockwise -- the quantity the paper calls ``x_i`` (with its 1-based
    labels).  Positions must be listed in ring order; the gaps of a valid
    configuration are strictly positive and sum to 1.
    """
    n = len(positions)
    result = []
    for i in range(n):
        arc = cw_arc(positions[i], positions[(i + 1) % n])
        if arc == 0 and n > 1:
            arc = ONE if n == 1 else arc
        result.append(arc)
    return result


def is_ring_ordered(positions: Sequence[Fraction]) -> bool:
    """Whether positions are distinct and listed in clockwise ring order.

    A sequence is ring ordered when, starting anywhere, walking clockwise
    meets the agents in index order.  Equivalently the clockwise gaps are
    all strictly positive and sum to exactly 1.
    """
    n = len(positions)
    if n == 0:
        return True
    if len(set(normalize(p) for p in positions)) != n:
        return False
    total = sum(gaps(positions), ZERO)
    return total == ONE and all(g > 0 for g in gaps(positions))


def sort_ring(positions: Sequence[Fraction]) -> List[int]:
    """Indices that put positions into clockwise ring order.

    The returned permutation starts from the agent with the smallest
    canonical coordinate.
    """
    canon = [normalize(p) for p in positions]
    return sorted(range(len(positions)), key=lambda i: canon[i])


def interleave_sum(values: Sequence[Fraction], start: int, count: int) -> Fraction:
    """Sum of ``count`` consecutive cyclic entries beginning at ``start``.

    Used to express ``dist()``/``coll()`` observations as sums of gap
    variables: the clockwise displacement of an agent shifted by ``r``
    ring places from slot ``s`` is ``interleave_sum(gaps, s, r)``.
    """
    n = len(values)
    total = ZERO
    for k in range(count):
        total += values[(start + k) % n]
    return total
