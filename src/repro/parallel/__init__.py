"""Zero-copy shared-memory execution: arenas, warm pools, sharded rings.

Three rungs, each building on the previous one:

* :mod:`repro.parallel.shm` -- a named-column allocator over
  :mod:`multiprocessing.shared_memory`: int64 and byte columns packed
  into one segment, numpy ``frombuffer`` views when numpy is available
  and stdlib ``memoryview("q")`` casts when it is not, with an explicit
  create/attach/close/unlink lifecycle (context-manager owner, atexit
  sweep) so CI never leaks segments.

* :mod:`repro.parallel.pool` -- persistent *warm* worker pools: one
  process pool per worker count, reused across runs, whose workers
  attach to a shm arena once per run and keep the attachment cached.
  Fleet jobs pass only ``(arena name, spec index)``-sized tuples; spec
  payloads and result rows travel through shm slots, not pickles.

* :mod:`repro.parallel.shard` -- :class:`ShardedArrayBackend`: one
  large ring's fused-stretch columns computed by several workers, each
  owning a contiguous slot range.  The round-boundary merge is a
  rotation-offset exchange (Lemma 1): workers share only the frozen
  prefix mirror and the span's rotation schedule, never column data.

Everything degrades gracefully: no numpy, no usable shared memory or a
single worker all fall back to the proven serial paths, bit-exact.
"""

from repro.parallel.pool import (
    WorkerPool,
    get_pool,
    run_specs_pooled,
    shutdown_pools,
)
from repro.parallel.shard import ShardedArrayBackend
from repro.parallel.shm import (
    ShmArena,
    arena_from_arrays,
    load_population_ints,
    share_population_ints,
)

__all__ = [
    "ShmArena",
    "ShardedArrayBackend",
    "WorkerPool",
    "arena_from_arrays",
    "get_pool",
    "load_population_ints",
    "run_specs_pooled",
    "share_population_ints",
    "shutdown_pools",
]
