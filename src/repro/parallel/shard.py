"""Sharded whole-ring rounds: one large ring, several workers.

:class:`ShardedArrayBackend` extends the fused-stretch
:class:`~repro.ring.backends.ArrayBackend` so that the span columns of
a single large-n ring are computed by a pool of worker processes, each
owning a contiguous range of agent slots.  The decomposition leans on
the same rotation-offset invariant (Lemma 1) the serial path exploits:

* the doubled prefix mirror ``p2`` and the chirality mask are frozen
  for the life of a stretch run, so they are shared once per
  :meth:`_sync` through a read-only shm arena;
* every round's column is a gather against those frozen arrays at the
  round's rotation offset, and the offsets are a scalar recurrence
  over the span's rotation schedule -- so the *only* round-boundary
  state workers need is the schedule itself, a few dozen bytes.  Each
  worker replays the offsets locally and writes rows ``[lo:hi)`` of
  the span matrices; slices are disjoint, so the merge is implicit.

The parent copies the finished matrices out of shared memory onto the
heap before releasing the span arena -- stretch results are memoised
and referenced by lazy history rows indefinitely, far beyond any
sensible segment lifetime.

Sharding is a pure execution strategy: results are bit-identical to
the serial backend (the worker slice runs the very same int64
expressions), and every degraded environment -- no numpy, one shard,
a span below the shard threshold, shared memory unavailable -- falls
back to the proven serial code path.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.parallel import pool as _pool
from repro.parallel.shm import Layout, ShmArena
from repro.ring.backends import ArrayBackend, ArrayStretchResult

#: Spans smaller than this many cells (rounds x agents) are not worth
#: a pool round-trip; the serial path runs them.
MIN_SHARD_CELLS = 1 << 15

#: Rings smaller than this never shard, whatever the span size.
MIN_SHARD_N = 1 << 10

#: One schedule entry: (rotation index, repeat count, index of the
#: row's rel/hops block in the span arena, or -1 when the row has no
#: closed-form collisions).
ScheduleEntry = Tuple[int, int, int]


def _shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` agent-slot ranges."""
    size, extra = divmod(n, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + size + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _shard_job(
    share_name: str,
    share_layout: Layout,
    span_name: str,
    span_layout: Layout,
    params: Tuple[int, int, int, int, int, int, bool,
                  Tuple[ScheduleEntry, ...]],
) -> int:
    """Compute rows ``[lo:hi)`` of one span's columns in this worker.

    The share arena holds the frozen doubled-prefix mirror and the
    chirality mask; the span arena holds the output matrices plus the
    rel/hops blocks for mixed rows.  The rotation schedule is replayed
    locally -- the only cross-shard state is this tuple of small ints.
    """
    from repro.ring.arrayops import get_numpy

    np = get_numpy()
    n, scale, off, total, lo, hi, need_coll, schedule = params
    share = _pool._attached_arena(share_name, share_layout)
    span = ShmArena.attach(span_name, span_layout)
    try:
        p2 = share.ints("p2")
        chir = share.ints("chir")[lo:hi].astype(bool)  # copies off shm
        base = np.arange(lo, hi, dtype=np.int64)
        dist = span.ints("dist").reshape(total, n)
        coll = span.ints("coll").reshape(total, n) if need_coll else None
        rel_all = hops_all = None
        if any(entry[2] >= 0 for entry in schedule):
            rel_all = span.ints("rel").reshape(-1, n)
            hops_all = span.ints("hops").reshape(-1, n)
        j = 0
        for r, count, mixed_idx in schedule:
            rel = hops = None
            if mixed_idx >= 0:
                rel = rel_all[mixed_idx, lo:hi]
                hops = hops_all[mixed_idx, lo:hi]
            for _ in range(count):
                s = base + off
                s = np.where(s >= n, s - n, s)
                cw = p2[s + r] - p2[s]
                dist[j, lo:hi] = np.where(
                    chir, cw, (scale - cw) % scale
                )
                if coll is not None:
                    if rel is not None:
                        s0 = s + rel
                        s0 = np.where(s0 < 0, s0 + n, s0)
                        s0 = np.where(s0 >= n, s0 - n, s0)
                        coll[j, lo:hi] = p2[s0 + hops] - p2[s0]
                    else:
                        coll[j, lo:hi] = -1
                off += r
                if off >= n:
                    off -= n
                j += 1
        # Drop every view into the span segment before closing it.
        del p2, dist, coll, rel_all, hops_all, rel, hops
    finally:
        try:
            span.close()
        except BufferError:
            # Exceptional exit with views still in frame scope: the
            # mapping dies with this worker process, and only the
            # owner's unlink decides the segment's fate -- a noisy
            # close here would mask the real error.
            pass
    return lo


class ShardedArrayBackend(ArrayBackend):
    """An :class:`~repro.ring.backends.ArrayBackend` whose fused spans
    are computed by ``shards`` worker processes over shared memory.

    Bit-identical to the serial array backend by construction; see the
    module docstring for the decomposition.  Serial fallbacks: numpy
    absent, one shard, sub-threshold spans, shm unavailable.
    """

    def __init__(
        self,
        shards: int = 2,
        min_n: int = MIN_SHARD_N,
        min_cells: int = MIN_SHARD_CELLS,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        self.shards = shards
        self.min_n = min_n
        self.min_cells = min_cells
        self.sharded_spans = 0
        self._share_arena: Optional[ShmArena] = None
        self._shm_broken = False

    # -- shared mirrors ---------------------------------------------------

    def _sync(self) -> None:
        self.release_shared()
        super()._sync()

    def release_shared(self) -> None:
        """Release the frozen-mirror share arena (rebuilt on demand)."""
        arena, self._share_arena = self._share_arena, None
        if arena is not None:
            arena.release()

    def _share_layout(self) -> Layout:
        n = self.n
        return (("p2", "i64", 2 * n + 1), ("chir", "i64", n))

    def _shared_mirrors(self) -> Optional[ShmArena]:
        """The share arena for the current frozen mirrors (lazy)."""
        if self._share_arena is not None:
            return self._share_arena
        if self._shm_broken or self._p2 is None:
            return None
        np = self.np
        try:
            arena = ShmArena.create(self._share_layout())
            view = arena.ints("p2")
            view[:] = self._p2
            del view
            view = arena.ints("chir")
            view[:] = self._chir_np.astype(np.int64)
            del view
        except (OSError, ValueError):
            # No usable shared memory on this box; never retry, the
            # serial path is always correct.
            self._shm_broken = True
            return None
        # A dropped backend must not pin its mirror segment until the
        # atexit sweep; release() is idempotent, so an explicit
        # release_shared() and this finalizer compose.
        weakref.finalize(self, arena.release)
        self._share_arena = arena
        return arena

    # -- sharded span computation -----------------------------------------

    def _compute_stretch_np(self, derived, need_coll, total):
        n = self.n
        if (
            self.shards <= 1
            or n < self.min_n
            or total * n < self.min_cells
        ):
            return super()._compute_stretch_np(derived, need_coll, total)
        share = self._shared_mirrors()
        if share is None:
            return super()._compute_stretch_np(derived, need_coll, total)
        np, scale = self.np, self.scale

        # Rotation schedule plus rel/hops blocks for mixed rows: the
        # entire cross-shard protocol for this span.
        rotations, r_total = self._span_rotations(derived)
        schedule: List[ScheduleEntry] = []
        mixed_blocks: List[Tuple[object, object]] = []
        for (r, _idle, _mixed, rel, hops), count in derived:
            mixed_idx = -1
            if need_coll and rel is not None:
                mixed_idx = len(mixed_blocks)
                mixed_blocks.append((rel, hops))
            schedule.append((r, count, mixed_idx))

        span_layout: Layout = (
            ("dist", "i64", total * n),
            ("coll", "i64", total * n if need_coll else 0),
            ("rel", "i64", len(mixed_blocks) * n),
            ("hops", "i64", len(mixed_blocks) * n),
        )
        try:
            span = ShmArena.create(span_layout)
        except (OSError, ValueError):
            self._shm_broken = True
            return super()._compute_stretch_np(derived, need_coll, total)

        try:
            if mixed_blocks:
                rel_view = span.ints("rel").reshape(-1, n)
                hops_view = span.ints("hops").reshape(-1, n)
                for i, (rel, hops) in enumerate(mixed_blocks):
                    rel_view[i] = rel
                    hops_view[i] = hops
                del rel_view, hops_view
            worker_pool = _pool.get_pool(self.shards)
            worker_pool.warm()
            futures = [
                worker_pool.submit(
                    _shard_job,
                    share.name,
                    share.layout,
                    span.name,
                    span.layout,
                    (n, scale, self.offset, total, lo, hi, need_coll,
                     tuple(schedule)),
                )
                for lo, hi in _shard_bounds(n, self.shards)
            ]
            for future in futures:
                future.result()
            # Copy out of shared memory: stretch results are memoised
            # and referenced by lazy history rows far beyond any
            # segment lifetime, so the heap owns the final columns.
            view = span.ints("dist")
            dist = np.array(view, dtype=np.int64).reshape(total, n)
            del view
            coll = None
            if need_coll:
                view = span.ints("coll")
                coll = np.array(view, dtype=np.int64).reshape(total, n)
                del view
        finally:
            try:
                span.close()
            except BufferError:
                # Exceptional exit with a live copy-out view; unlink
                # below still destroys the segment once every mapping
                # (including this one, at worst at process exit) goes.
                pass
            span.unlink()
        self.sharded_spans += 1
        return (
            ArrayStretchResult(self, rotations, dist, coll, True),
            r_total,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShardedArrayBackend shards={self.shards} n={self.n} "
            f"sharded_spans={self.sharded_spans}>"
        )
