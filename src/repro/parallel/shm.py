"""Shared-memory arenas: named int64/byte columns in one segment.

An :class:`ShmArena` packs a fixed set of named columns -- 64-bit int
columns and raw byte columns -- into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment, so that a
pool of worker processes can read and write whole columns without a
single pickle round-trip.  The layout (an ordered tuple of
``(key, kind, count)`` triples) travels out-of-band: the owner computes
it, workers receive it in their job arguments and attach by name.

Lifecycle is explicit and leak-proof:

* :meth:`ShmArena.create` builds and owns a segment; the owner is a
  context manager whose exit closes *and unlinks* it.
* :meth:`ShmArena.attach` maps an existing segment read-write; closing
  an attachment never unlinks.  Pool workers share the owner's
  :mod:`multiprocessing.resource_tracker` (both fork and spawn hand
  the tracker fd down), so their attach-time registrations are set
  no-ops against the owner's entry and a worker's exit can never tear
  down a segment it does not own.  Attaching from an *unrelated*
  process tree is not part of the design -- an independent tracker
  would unlink the segment when that tree exits.
* Every owned segment is tracked in a module registry swept at
  interpreter exit, so even an abandoned arena (test failure, worker
  crash mid-run) is unlinked before the process dies.

Column views are numpy int64 ``frombuffer`` arrays when numpy is
importable and stdlib ``memoryview(...).cast("q")`` buffers when it is
not; byte columns are plain memoryview slices either way.
"""

from __future__ import annotations

import atexit
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, SimulationError
from repro.ring.arrayops import get_numpy

#: One column: (key, kind, count) with kind "i64" (count int64 cells)
#: or "bytes" (count raw bytes).  Column starts are 8-byte aligned.
ColumnSpec = Tuple[str, str, int]
Layout = Tuple[ColumnSpec, ...]

_KINDS = ("i64", "bytes")

#: Owned-but-not-yet-unlinked segments, swept at interpreter exit so a
#: failed run can never leak a segment past the process lifetime.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}
_SWEEP_REGISTERED = False


def _register_owned(segment: shared_memory.SharedMemory) -> None:
    global _SWEEP_REGISTERED
    _OWNED[segment.name] = segment
    if not _SWEEP_REGISTERED:
        _SWEEP_REGISTERED = True
        atexit.register(_sweep_owned)


def _sweep_owned() -> None:
    """Unlink every still-owned segment (atexit safety net)."""
    for name in list(_OWNED):
        segment = _OWNED.pop(name, None)
        if segment is None:
            continue
        try:
            segment.close()
        except (OSError, BufferError):
            pass
        try:
            segment.unlink()
        except (OSError, FileNotFoundError):
            pass


def _layout_offsets(layout: Layout) -> Tuple[Dict[str, Tuple[str, int, int]], int]:
    """Validate a layout; returns ``{key: (kind, offset, count)}`` and
    the total segment size in bytes (columns are 8-byte aligned)."""
    offsets: Dict[str, Tuple[str, int, int]] = {}
    cursor = 0
    for key, kind, count in layout:
        if kind not in _KINDS:
            raise ConfigurationError(
                f"unknown column kind {kind!r} for {key!r}; "
                f"expected one of {', '.join(_KINDS)}"
            )
        if count < 0:
            raise ConfigurationError(
                f"column {key!r} has negative count {count}"
            )
        if key in offsets:
            raise ConfigurationError(f"duplicate column key {key!r}")
        cursor = (cursor + 7) & ~7  # 8-byte alignment
        offsets[key] = (kind, cursor, count)
        cursor += 8 * count if kind == "i64" else count
    return offsets, max(cursor, 1)


class ShmArena:
    """A set of named columns in one shared-memory segment.

    Build with :meth:`create` (owner) or :meth:`attach` (worker); read
    and write columns through :meth:`ints` / :meth:`raw`.  The owner is
    a context manager whose exit closes and unlinks the segment.
    """

    __slots__ = ("name", "layout", "owner", "_segment", "_offsets",
                 "_closed")

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: Layout,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.name = segment.name
        self.layout = tuple(layout)
        self.owner = owner
        self._offsets, _size = _layout_offsets(self.layout)
        self._closed = False

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, layout: Iterable[ColumnSpec]) -> "ShmArena":
        """Allocate a fresh zero-filled segment for ``layout`` (owner)."""
        layout = tuple(layout)
        _offsets, size = _layout_offsets(layout)
        segment = shared_memory.SharedMemory(create=True, size=size)
        _register_owned(segment)
        return cls(segment, layout, owner=True)

    @classmethod
    def attach(cls, name: str, layout: Iterable[ColumnSpec]) -> "ShmArena":
        """Map an existing segment by name (attachment, never unlinks)."""
        layout = tuple(layout)
        _offsets, size = _layout_offsets(layout)
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise SimulationError(
                f"shared-memory segment {name!r} does not exist "
                "(owner already unlinked it?)"
            ) from None
        if segment.size < size:
            segment.close()
            raise SimulationError(
                f"segment {name!r} holds {segment.size} bytes but the "
                f"declared layout needs {size}"
            )
        return cls(segment, layout, owner=False)

    # -- column views ----------------------------------------------------

    def _column(self, key: str, kind: str) -> Tuple[int, int]:
        if self._closed:
            raise SimulationError(
                f"arena {self.name!r} is closed; no column views remain"
            )
        entry = self._offsets.get(key)
        if entry is None:
            raise KeyError(key)
        got, offset, count = entry
        if got != kind:
            raise SimulationError(
                f"column {key!r} is kind {got!r}, not {kind!r}"
            )
        return offset, count

    def ints(self, key: str):
        """The int64 column ``key``: a numpy view when numpy is
        available, else a ``memoryview(...).cast('q')`` buffer.  Both
        support indexed read/write; only the numpy view vectorises."""
        offset, count = self._column(key, "i64")
        np = get_numpy()
        if np is not None:
            return np.frombuffer(
                self._segment.buf, dtype=np.int64, count=count,
                offset=offset,
            )
        return memoryview(self._segment.buf)[
            offset:offset + 8 * count
        ].cast("q")

    def raw(self, key: str) -> memoryview:
        """The byte column ``key`` as a writable memoryview slice."""
        offset, count = self._column(key, "bytes")
        return memoryview(self._segment.buf)[offset:offset + count]

    def write_ints(self, key: str, values: Sequence[int]) -> None:
        """Fill the int64 column ``key`` from ``values`` (same length)."""
        view = self.ints(key)
        try:
            if len(values) != len(view):
                raise SimulationError(
                    f"column {key!r}: {len(values)} values for "
                    f"{len(view)} cells"
                )
            np = get_numpy()
            if np is not None:
                view[:] = np.asarray(values, dtype=np.int64)
            else:
                for i, v in enumerate(values):
                    view[i] = v
        finally:
            # Drop the local even on the exception path -- a traceback
            # frame pinning this view would make the caller's cleanup
            # close() raise BufferError and leak the segment.
            del view

    def read_ints(self, key: str) -> List[int]:
        """The int64 column ``key`` copied out as a plain list."""
        view = self.ints(key)
        np = get_numpy()
        if np is not None:
            return view.tolist()
        return list(view)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release this process's mapping (idempotent).  Column views
        taken earlier must already be dropped; closing with live numpy
        views raises ``BufferError`` by design -- a dangling view over
        an unmapped segment would be a use-after-free."""
        if self._closed:
            return
        self._segment.close()  # BufferError leaves the arena open
        self._closed = True

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent).  Existing
        mappings stay valid until their processes close them."""
        if not self.owner:
            raise SimulationError(
                f"arena {self.name!r} is an attachment; only the owner "
                "may unlink"
            )
        _OWNED.pop(self.name, None)
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    def release(self) -> None:
        """Close, and unlink too when this arena owns the segment."""
        self.close()
        if self.owner:
            self.unlink()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "owner" if self.owner else "attachment"
        return (
            f"<ShmArena {self.name} {role} "
            f"cols={[k for k, _, _ in self.layout]}>"
        )


def arena_from_arrays(columns: Dict[str, Sequence[int]]) -> ShmArena:
    """Create an owned arena holding one int64 column per mapping entry,
    filled from the given sequences (insertion order fixes the layout)."""
    layout = tuple(
        (key, "i64", len(values)) for key, values in columns.items()
    )
    arena = ShmArena.create(layout)
    try:
        for key, values in columns.items():
            arena.write_ints(key, values)
    except Exception:
        try:
            arena.close()
        except BufferError:
            pass
        arena.unlink()  # the segment must not outlive a failed fill
        raise
    return arena


def share_population_ints(population, keys: Sequence[str]) -> ShmArena:
    """Snapshot integer-valued :class:`~repro.core.population.Population`
    columns into a fresh owned arena (one int64 column per key, length
    ``population.n``).  Cells must be plain ints (validated by
    ``Population.column_ints``) -- the zero-copy seam only exists for
    integer columns; object columns keep pickling."""
    return arena_from_arrays(
        {key: population.column_ints(key) for key in keys}
    )


def load_population_ints(
    arena: ShmArena, population, keys: Optional[Sequence[str]] = None
) -> None:
    """Replace ``population`` columns from an arena written by
    :func:`share_population_ints` (all arena columns by default)."""
    if keys is None:
        keys = [key for key, _kind, _count in arena.layout]
    for key in keys:
        population.set_column(key, arena.read_ints(key))


def pack_blobs(parts: Sequence[bytes]) -> Tuple[bytes, List[int]]:
    """Concatenate byte strings; ``bounds[i]:bounds[i+1]`` frames part
    ``i`` of the packed payload (the out-of-band framing fleet arenas
    use for their spec blobs)."""
    bounds = [0]
    for part in parts:
        bounds.append(bounds[-1] + len(part))
    return b"".join(parts), bounds
