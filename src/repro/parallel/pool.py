"""Persistent warm worker pools and the zero-copy fleet executor.

The original :class:`~repro.api.fleet.Fleet` spun up a fresh
``ProcessPoolExecutor`` inside every ``run()`` and pickled every
:class:`~repro.api.fleet.SessionSpec` and result row through it -- on
the committed benchmark the spin-up alone ate the parallel win.  This
module replaces that with:

* :class:`WorkerPool` -- a process pool created once per worker count
  and reused for every subsequent run (module registry via
  :func:`get_pool`; :meth:`WorkerPool.warm` pre-spawns the workers and
  pre-imports the session stack so none of that cost lands inside a
  timed region).

* a per-run :class:`~repro.parallel.shm.ShmArena` holding the spec
  payloads (packed JSON blobs) and one fixed-size result slot per spec.
  Jobs pass only ``(arena name, layout, index)``-sized tuples; workers
  attach to the arena once (cached across jobs by name, LRU-evicted)
  and land their result JSON in their spec's slot.  Only results too
  large for their slot fall back to the pickle channel -- correctness
  never depends on the slot size.

Worker-side state lives in module globals: the attachment cache and
nothing else.  Fork and spawn start methods both work (all job
functions are module level; workers share the parent's resource
tracker, so attach-time registrations can never tear down an owner's
segment -- see :mod:`repro.parallel.shm`).
"""

from __future__ import annotations

import atexit
import json
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.parallel.shm import Layout, ShmArena, pack_blobs

#: Default per-spec result-slot size.  Generous for every registry
#: protocol at bench sizes; oversized results transparently fall back
#: to the pickle channel.
DEFAULT_SLOT_BYTES = 1 << 16

#: How many arena attachments a worker keeps mapped (older runs'
#: arenas are unlinked by their owners; closing the mapping frees the
#: pages).
_ATTACH_CACHE_SLOTS = 4

# -- worker-side attachment cache ---------------------------------------

_ATTACHED: Dict[str, ShmArena] = {}


def _attached_arena(name: str, layout: Layout) -> ShmArena:
    """This worker's mapping of arena ``name`` (attach once, cache)."""
    arena = _ATTACHED.get(name)
    if arena is None:
        while len(_ATTACHED) >= _ATTACH_CACHE_SLOTS:
            _evict, stale = next(iter(_ATTACHED.items()))
            del _ATTACHED[_evict]
            try:
                stale.close()
            except BufferError:
                # A leaked view keeps the mapping alive until process
                # exit; the owner's unlink still controls the segment.
                pass
        arena = ShmArena.attach(name, layout)
        _ATTACHED[name] = arena
    return arena


def _warm_job(_index: int) -> bool:
    """Pre-import the session stack so the first real job pays nothing."""
    import repro.api.session  # noqa: F401  (import for side effect)
    import repro.protocols.policies  # noqa: F401

    return True


def _fleet_job(
    name: str, layout: Layout, index: int, slot_bytes: int
) -> Tuple[int, float, Optional[str]]:
    """Run spec ``index`` of the fleet arena ``name`` in this worker.

    Reads the spec JSON out of the arena's packed blob column, runs the
    session, and lands the result JSON in the spec's result slot.
    Returns ``(index, seconds, None)`` on the shm path, or
    ``(index, seconds, result_json)`` when the row is too large for its
    slot and must ride the pickle channel instead.
    """
    from repro.api.fleet import SessionSpec, run_session_spec

    arena = _attached_arena(name, layout)
    bounds = arena.ints("spec_bounds")
    start, end = int(bounds[index]), int(bounds[index + 1])
    spec_doc = json.loads(bytes(arena.raw("specs")[start:end]))
    row = run_session_spec(SessionSpec.from_dict(spec_doc))
    # The wire document is an envelope, not the bare result: faulted
    # specs carry a "faults" block (outcome/error/plan) that must reach
    # the parent alongside the (possibly null) result payload.
    envelope: Dict[str, object] = {"result": row["result"]}
    if "faults" in row:
        envelope["faults"] = row["faults"]
    payload = json.dumps(
        envelope, separators=(",", ":")
    ).encode("utf-8")
    seconds = float(row["seconds"])
    if len(payload) > slot_bytes:
        return index, seconds, payload.decode("utf-8")
    slot = arena.raw("results")[
        index * slot_bytes:index * slot_bytes + len(payload)
    ]
    slot[:] = payload
    arena.ints("result_len")[index] = len(payload)
    return index, seconds, None


# -- the persistent pool -------------------------------------------------


class WorkerPool:
    """A process pool created once and kept warm across runs.

    The underlying executor is built lazily on first use and reused for
    every subsequent submission; :meth:`warm` spawns all workers and
    pre-imports the session stack, so benchmarks can keep pool spin-up
    out of their timed regions.  :meth:`shutdown` tears the pool down
    (the module registry does this for every pool at interpreter exit).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._warm = False

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Start the parent's resource tracker BEFORE any worker
            # exists: forked workers then inherit it, so their
            # attach-time registrations are set no-ops against the
            # owner's entry.  A worker that forked trackerless would
            # spawn a private tracker whose exit-time cleanup unlinks
            # every segment the worker ever attached -- under the
            # owner, while it is still using them.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            self._warm = False
        return self._executor

    @property
    def alive(self) -> bool:
        return self._executor is not None

    def warm(self) -> None:
        """Spawn every worker and pre-import the session stack (no-op
        when the pool is already warm)."""
        if self._warm:
            return
        futures = [
            self.executor.submit(_warm_job, i) for i in range(self.workers)
        ]
        for future in futures:
            future.result()
        self._warm = True

    def submit(self, fn, *args):
        return self.executor.submit(fn, *args)

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        self._warm = False
        if executor is not None:
            executor.shutdown(wait=True)


_POOLS: Dict[int, WorkerPool] = {}
_SHUTDOWN_REGISTERED = False


def get_pool(workers: int) -> WorkerPool:
    """The persistent pool for ``workers`` workers (one per count)."""
    global _SHUTDOWN_REGISTERED
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
        if not _SHUTDOWN_REGISTERED:
            _SHUTDOWN_REGISTERED = True
            atexit.register(shutdown_pools)
    return pool


def shutdown_pools() -> None:
    """Shut down every registry pool (tests and interpreter exit)."""
    for workers in list(_POOLS):
        pool = _POOLS.pop(workers, None)
        if pool is not None:
            pool.shutdown()


# -- the fleet executor --------------------------------------------------


def run_specs_pooled(
    specs: Sequence[object],
    workers: int,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
    pool: Optional[WorkerPool] = None,
) -> List[Dict[str, object]]:
    """Execute fleet specs across the persistent warm pool.

    Returns the same ``{"spec", "result", "seconds"}`` rows (plus the
    ``"faults"`` block for faulted specs), in spec order, that the
    serial executor produces -- payloads are JSON round-trips of the
    worker's rows, which is lossless for the all-int/string RunReport
    schema, so reports stay bit-identical across executors and worker
    counts.
    """
    if pool is None:
        pool = get_pool(workers)
    pool.warm()
    spec_docs = [spec.to_dict() for spec in specs]
    payload, bounds = pack_blobs([
        json.dumps(doc, separators=(",", ":")).encode("utf-8")
        for doc in spec_docs
    ])
    count = len(spec_docs)
    layout: Layout = (
        ("specs", "bytes", len(payload)),
        ("spec_bounds", "i64", len(bounds)),
        ("results", "bytes", count * slot_bytes),
        ("result_len", "i64", count),
    )
    rows: List[Dict[str, object]] = [None] * count  # type: ignore[list-item]
    with ShmArena.create(layout) as arena:
        arena.raw("specs")[:len(payload)] = payload
        arena.write_ints("spec_bounds", bounds)
        futures = [
            pool.submit(_fleet_job, arena.name, layout, i, slot_bytes)
            for i in range(count)
        ]
        inline: Dict[int, str] = {}
        seconds: Dict[int, float] = {}
        for future in futures:
            index, elapsed, overflow = future.result()
            seconds[index] = elapsed
            if overflow is not None:
                inline[index] = overflow
        lengths = arena.read_ints("result_len")
        results_view = arena.raw("results")
        try:
            for i in range(count):
                text = inline.get(i)
                if text is None:
                    lo = i * slot_bytes
                    text = bytes(
                        results_view[lo:lo + lengths[i]]
                    ).decode("utf-8")
                envelope = json.loads(text)
                row: Dict[str, object] = {
                    "spec": spec_docs[i],
                    "result": envelope["result"],
                }
                if "faults" in envelope:
                    row["faults"] = envelope["faults"]
                row["seconds"] = round(seconds[i], 6)
                rows[i] = row
        finally:
            # The arena closes at with-exit; every view must be gone.
            results_view.release()
    return rows


def elapsed_run(fn) -> Tuple[object, float]:
    """``(fn(), wall seconds)`` -- tiny helper for warm-pool timing."""
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start
