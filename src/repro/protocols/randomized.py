"""Randomized variant: anonymous agents with self-assigned random IDs.

Section I of the paper notes that the deterministic results "can be
applied to randomly chosen IDs from an appropriately chosen range to
improve upon the complexity of previous randomized results".  This
module realises that remark: fully anonymous agents each draw a private
ID uniformly from [1, R] and then run the deterministic suite verbatim.

Guarantees are "with high probability": by the birthday bound the draw
is collision-free with probability at least 1 - n²/(2R), so R = n³
gives failure probability below 1/(2n).  A collision makes the two
twins behave identically in every ID-keyed round; the deterministic
protocols may then silently elect two leaders -- exactly the failure
mode randomized symmetry breaking accepts.  :func:`collision_probability`
quantifies it; tests construct the failure deliberately.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.protocols.base import LocationDiscoveryResult
from repro.ring.state import RingState
from repro.types import Chirality, Model


def collision_probability(n: int, id_space: int) -> float:
    """Exact probability that n uniform draws from [id_space] collide."""
    if n > id_space:
        return 1.0
    p_distinct = 1.0
    for k in range(n):
        p_distinct *= (id_space - k) / id_space
    return 1.0 - p_distinct


def draw_random_ids(
    n: int, id_space: int, seed: int
) -> List[int]:
    """Each agent's private uniform draw (independent per agent).

    Unlike the unique-by-construction generators in
    :mod:`repro.ring.configs`, these draws are *with replacement* --
    the honest model of anonymous agents flipping private coins.
    """
    rng = random.Random(seed)
    return [rng.randint(1, id_space) for _ in range(n)]


def anonymous_configuration(
    positions: Sequence[Fraction],
    chiralities: Sequence[Chirality],
    seed: int = 0,
    id_space: Optional[int] = None,
) -> RingState:
    """Build a ring whose IDs are private random draws.

    Args:
        id_space: The range R; defaults to n³ (failure < 1/(2n)).

    Raises:
        ConfigurationError: If the draw collided (callers treating this
            as a Las Vegas failure may simply retry with a new seed --
            real anonymous agents cannot detect it, which is exactly
            the w.h.p. caveat).
    """
    n = len(positions)
    space = id_space if id_space is not None else n ** 3
    ids = draw_random_ids(n, space, seed)
    if len(set(ids)) != n:
        raise ConfigurationError(
            f"random ID collision (n={n}, R={space}, seed={seed}); "
            f"probability of this event was "
            f"{collision_probability(n, space):.4f}"
        )
    return RingState(
        positions=list(positions),
        ids=ids,
        chiralities=list(chiralities),
        id_bound=space,
    )


def randomized_location_discovery(
    positions: Sequence[Fraction],
    chiralities: Sequence[Chirality],
    model: Model = Model.LAZY,
    seed: int = 0,
    id_space: Optional[int] = None,
) -> LocationDiscoveryResult:
    """Location discovery for anonymous agents, w.h.p. correct.

    Draws random IDs and runs the deterministic pipeline.  With the
    default R = n³ the draw collides with probability < 1/(2n); a
    collision surfaces as :class:`ConfigurationError` here (the
    omniscient harness can see it), whereas physical anonymous agents
    would run on and possibly mis-coordinate -- the standard Monte
    Carlo trade.
    """
    from repro.api.session import RingSession

    state = anonymous_configuration(
        positions, chiralities, seed=seed, id_space=id_space
    )
    return RingSession.from_state(state, model=model).run("location-discovery")
