"""NMoveS (Algorithm 4): nontrivial move in O(√n log N), perceptive model.

The distinguisher lower bound Ω(n log(N/n)/log n) binds the basic and
lazy models; collision information breaks it.  The algorithm:

1. Probe the all-own-RIGHT round.  If it is nontrivial, done.
   Otherwise its rotation index r_base is 0 or n/2 -- the pivot fact
   the rest of the algorithm exploits.
2. Discover neighbors, establishing the 1-bit relay channel.
3. Everyone starts as a *local leader*.  For k = 0, 1, 2, ...
   (d = 2^k): flood current leaders' IDs d hops (Cor 34); a leader
   survives iff no received leader ID beats its own.  Surviving leaders
   are pairwise more than d apart, so at most n/d remain.
4. Execute a (N, 2^k)-selective family on the leaders: for each set F,
   leaders with ID in F play own-LEFT while everyone else plays
   own-RIGHT.  Flipping exactly one agent relative to the base round
   shifts the rotation index by exactly ±2, and for n > 4 a ±2 shift
   from {0, n/2} always lands outside {0, n/2}: when |F ∩ leaders| = 1
   the round is provably nontrivial, *whatever* the chirality
   assignment.  Each probe is classified by Lemma 2 and the first
   nontrivial round is stored.

Once 2^k reaches √n the leader count (≤ n/2^k) drops below 2^k and the
family must select a singleton, so the loop ends within O(log n)
levels.  The dissemination cost Σ O(2^k log N) = O(√n log N) dominates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.combinatorics.selective_families import scale_family
from repro.core.agent import AgentView, id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_NMOVE_DIR
from repro.protocols.bitcomm import received_messages, relay_flood
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.nontrivial_move import _classify, _store_direction
from repro.types import LocalDirection, Model

KEY_LOCAL_LEADER = "nmove.local_leader"

#: Published seed for the selective families (protocol constant).
SELECTIVE_SEED = 0xA17


def _family_probe(sched: Scheduler, member_ids) -> bool:
    """Probe the round: leaders with ID in ``member_ids`` play own-LEFT,
    everyone else own-RIGHT.  True iff nontrivial (4 rounds, restored)."""

    def choose(view: AgentView) -> LocalDirection:
        if view.memory.get(KEY_LOCAL_LEADER) and view.agent_id in member_ids:
            return LocalDirection.LEFT
        return LocalDirection.RIGHT

    if _classify(sched, choose, weak=False):
        _store_direction(sched, choose)
        return True
    return False


def nmove_perceptive(sched: Scheduler) -> dict:
    """Algorithm 4.  Postcondition: ``nmove.dir`` set for every agent.

    Returns a small stats dict (levels used, family probes, rounds) for
    benchmarks.
    """
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("NMoveS requires the perceptive model")

    stats = {"levels": 0, "family_probes": 0, "rounds_start": sched.rounds}

    def all_right(view: AgentView) -> LocalDirection:
        return LocalDirection.RIGHT

    if _classify(sched, all_right, weak=False):
        _store_direction(sched, all_right)
        stats["rounds"] = sched.rounds - stats.pop("rounds_start")
        return stats

    discover_neighbors(sched)
    sched.for_each_agent(
        lambda view: view.memory.__setitem__(KEY_LOCAL_LEADER, True)
    )

    n_bound = sched.views[0].id_bound
    width = id_bits(n_bound)
    max_level = width + 1
    for level in range(max_level + 1):
        distance = 1 << level
        stats["levels"] = level + 1

        relay_flood(
            sched,
            lambda view: (
                view.agent_id if view.memory[KEY_LOCAL_LEADER] else None
            ),
            distance=distance,
            width=width,
        )

        def update_leader(view: AgentView) -> None:
            if not view.memory[KEY_LOCAL_LEADER]:
                return
            rivals = [value for _s, _h, value in received_messages(view)]
            if any(rival > view.agent_id for rival in rivals):
                view.memory[KEY_LOCAL_LEADER] = False

        sched.for_each_agent(update_leader)

        family = scale_family(n_bound, distance, seed=SELECTIVE_SEED + level)
        for f in family:
            stats["family_probes"] += 1
            if _family_probe(sched, f):
                stats["rounds"] = sched.rounds - stats.pop("rounds_start")
                return stats

    raise ProtocolError(
        "NMoveS exhausted all levels without a nontrivial move; the "
        "selective family seed failed (bug or astronomically unlucky seed)"
    )
