"""Leader election (Algorithm 2 and Lemma 13).

Two routes:

* :func:`elect_leader_with_nontrivial_move` (Algorithm 2).  Requires a
  solved nontrivial move and a common frame.  The candidate set starts
  as the agents that moved common-RIGHT in the nontrivial round (its
  RI is nonzero by construction) and is refined one ID bit at a time:
  probe RI(X0) for the bit-0 half; keep whichever half has nonzero RI
  (Lemma 3(c) guarantees one does).  After all bits the candidates share
  every bit, so exactly one agent remains.  O(log N) rounds.

* :func:`elect_leader_common_sense` (Lemma 13).  Requires only a common
  frame.  Binary-search the ID space with emptiness tests: descend to
  the smallest present ID.  log N emptiness tests, each 1 information
  round (lazy / perceptive / odd basic) or 1 + log N rounds (even
  basic), matching the O(log N) / O(log² N) bounds.
"""

from __future__ import annotations

from typing import Optional

from repro.core.agent import AgentView, id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LEADER,
    KEY_NMOVE_DIR,
    aligned_direction,
)
from repro.protocols.emptiness import emptiness_test
from repro.types import LocalDirection

_KEY_CANDIDATE = "leader._candidate"
_KEY_SAW_NONZERO = "leader._saw_nonzero"


def _candidate_probe_round(sched: Scheduler, bit: int, want: int) -> bool:
    """Probe RI(X0) where X0 = candidates whose ID bit ``bit`` equals
    ``want``: those agents move common-RIGHT, everyone else common-LEFT.
    Returns True iff the rotation index was nonzero (consensus).
    Costs 2 rounds (probe + restore)."""

    def choose(view: AgentView) -> LocalDirection:
        in_x0 = (
            view.memory[_KEY_CANDIDATE]
            and ((view.agent_id >> bit) & 1) == want
        )
        common = LocalDirection.RIGHT if in_x0 else LocalDirection.LEFT
        return aligned_direction(view, common)

    sched.run_round(choose)
    sched.for_each_agent(
        lambda view: view.memory.__setitem__(
            _KEY_SAW_NONZERO, view.last.dist != 0
        )
    )
    sched.run_round(lambda view: choose(view).opposite())
    nonzero = sched.views[0].memory[_KEY_SAW_NONZERO]
    return bool(nonzero)


def elect_leader_with_nontrivial_move(sched: Scheduler) -> int:
    """Algorithm 2: elect a leader given a nontrivial move + common frame.

    Preconditions: ``nmove.dir`` and ``frame.flip`` are set for every
    agent.  Postcondition: exactly one agent has ``leader.is_leader`` =
    True.  Returns the leader's ID (harness convenience).
    """

    def initialize(view: AgentView) -> None:
        if KEY_NMOVE_DIR not in view.memory or KEY_FRAME_FLIP not in view.memory:
            raise ProtocolError(
                "Algorithm 2 requires nontrivial move + direction agreement"
            )
        moved_common_right = (
            aligned_direction(view, LocalDirection.RIGHT)
            is view.memory[KEY_NMOVE_DIR]
        )
        view.memory[_KEY_CANDIDATE] = moved_common_right

    sched.for_each_agent(initialize)

    bits = id_bits(sched.views[0].id_bound)
    for bit in range(bits):
        keep_zero_half = _candidate_probe_round(sched, bit, want=0)

        def refine(view: AgentView) -> None:
            if not view.memory[_KEY_CANDIDATE]:
                return
            my_bit = (view.agent_id >> bit) & 1
            view.memory[_KEY_CANDIDATE] = (
                my_bit == 0 if keep_zero_half else my_bit == 1
            )

        sched.for_each_agent(refine)

    sched.for_each_agent(
        lambda view: view.memory.__setitem__(
            KEY_LEADER, bool(view.memory.pop(_KEY_CANDIDATE))
        )
    )
    return _unique_leader_id(sched)


def elect_leader_common_sense(sched: Scheduler) -> int:
    """Lemma 13: elect the smallest present ID by emptiness bisection.

    Preconditions: a common frame (``frame.flip``).  Postcondition: the
    agent with the minimum ID is the unique leader.
    """
    n_bound = sched.views[0].id_bound
    lo, hi = 1, n_bound
    while lo < hi:
        mid = (lo + hi) // 2
        empty = emptiness_test(sched, range(lo, mid + 1))
        if empty:
            lo = mid + 1
        else:
            hi = mid

    sched.for_each_agent(
        lambda view: view.memory.__setitem__(KEY_LEADER, view.agent_id == lo)
    )
    return _unique_leader_id(sched)


def _unique_leader_id(sched: Scheduler) -> int:
    leaders = [v.agent_id for v in sched.views if v.memory.get(KEY_LEADER)]
    if len(leaders) != 1:
        raise ProtocolError(
            f"leader election produced {len(leaders)} leaders: {leaders}"
        )
    return leaders[0]


def leader_id(sched: Scheduler) -> Optional[int]:
    """The current leader's ID, or None (harness-side helper)."""
    leaders = [v.agent_id for v in sched.views if v.memory.get(KEY_LEADER)]
    return leaders[0] if len(leaders) == 1 else None
