"""Native RingDist (vectorised twin of
:mod:`repro.protocols.ring_distance`).

Same Algorithm 5 phases -- seed flood, y-phase Shift(-k/2) blocks,
z-phase Shift(k), match, label flood, CheckCompleteness -- with every
Shift vector built in one pass from the label column and every flood
running through :class:`~repro.protocols.policies.bitcomm.RelayFloodPolicy`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.core.agent import id_bits
from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LABEL,
    KEY_LEADER,
    KEY_RING_SIZE,
)
from repro.protocols.bitcomm import KEY_RECEIVED
from repro.protocols.neighbor_discovery import KEY_GAP_RIGHT
from repro.protocols.policies.base import (
    LEFT,
    RIGHT,
    Vector,
    aligned_vector,
    common_dists,
    opposite_vector,
    require_column,
    run_vector,
)
from repro.protocols.policies.bitcomm import RelayFloodPolicy
from repro.protocols.policies.global_broadcast import broadcast_value
from repro.protocols.ring_distance import (
    KEY_IS_LAST,
    _LEADER_MARKER_DISTANCE,
)
from repro.types import Model


def _common_side(flip: bool, own_side: str) -> str:
    if not flip:
        return own_side
    return "left" if own_side == "right" else "right"


def _shift_vector(
    labels: List[Optional[int]],
    flips: List[bool],
    threshold: int,
    low_right: bool,
) -> Vector:
    """Shift rounds: labels <= ``threshold`` move common-RIGHT iff
    ``low_right``; everyone else moves the opposite way."""
    commons = []
    for label in labels:
        low = label is not None and label <= threshold
        commons.append(RIGHT if low == low_right else LEFT)
    return aligned_vector(flips, commons)


def _seed_labels_from_leader(sched: Scheduler) -> None:
    """Leader marker flood: labels 2..5 learned; a_n identified."""
    population = sched.population
    leaders = population.get_column(KEY_LEADER)
    is_leader = [
        cell is not MISSING and bool(cell) for cell in (leaders or [])
    ] or [False] * population.n
    labels = population.set_column(
        KEY_LABEL, [1 if lead else None for lead in is_leader]
    )
    is_last = population.fill(KEY_IS_LAST, False)
    flips = population.column(KEY_FRAME_FLIP)

    RelayFloodPolicy(
        sched,
        [1 if lead else None for lead in is_leader],
        distance=_LEADER_MARKER_DISTANCE,
        width=1,
    ).run()

    received = population.column(KEY_RECEIVED)
    for i in range(population.n):
        for own_side, hop, _value in received[i]:
            side = _common_side(flips[i], own_side)
            if side == "left":
                # The leader is hop places common-anticlockwise of me.
                if labels[i] is None:
                    labels[i] = 1 + hop
            else:
                if hop == 1:
                    is_last[i] = True


def _check_completeness(sched: Scheduler) -> bool:
    """One probe + restore; True iff a_n (hence everyone) is labelled."""
    population = sched.population
    labels = population.column(KEY_LABEL)
    is_last = population.column(KEY_IS_LAST)
    flips = population.column(KEY_FRAME_FLIP)
    commons = [
        RIGHT if is_last[i] and labels[i] else LEFT
        for i in range(population.n)
    ]
    vector = aligned_vector(flips, commons)
    obs = run_vector(sched, vector)
    done = obs[0].dist != 0
    run_vector(sched, opposite_vector(vector))
    return done


def ring_distances(sched: Scheduler, on_iteration=None) -> None:
    """Native twin of Algorithm 5: assign every agent its 1-based ring
    label under ``ringdist.label``."""
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("RingDist requires the perceptive model")
    population = sched.population
    if not population.all_set(KEY_GAP_RIGHT):
        raise ProtocolError("RingDist requires neighbor discovery")
    flips = require_column(
        population, KEY_FRAME_FLIP, "RingDist requires a common frame"
    )

    n = population.n
    label_width = id_bits(population.id_bound)
    _seed_labels_from_leader(sched)
    if on_iteration is not None:
        on_iteration(1)
    if _check_completeness(sched):
        return

    labels = population.column(KEY_LABEL)
    max_iterations = id_bits(population.id_bound) + 2
    for i in range(1, max_iterations + 1):
        k = 1 << i

        # --- y-phase -------------------------------------------------
        ys: List[List[Fraction]] = [[] for _ in range(n)]
        for _j in range(k):
            obs = run_vector(
                sched, _shift_vector(labels, flips, k // 2, low_right=False)
            )
            for slot, d in enumerate(common_dists(flips, obs)):
                if d == 0:
                    raise ProtocolError(
                        "Shift(-k/2) had rotation 0: k reached n; "
                        "the completeness check should have fired earlier"
                    )
                ys[slot].append(Fraction(1) - d)  # lint: allow[fraction-hot-path] -- y-phase harvest off common_dists, the documented Fraction boundary of this protocol
        for _j in range(k):
            run_vector(
                sched, _shift_vector(labels, flips, k // 2, low_right=True)
            )

        # --- z-phase -------------------------------------------------
        obs = run_vector(
            sched, _shift_vector(labels, flips, k, low_right=True)
        )
        zs = [o.coll for o in obs]
        run_vector(sched, _shift_vector(labels, flips, k, low_right=False))

        # --- match ----------------------------------------------------
        fresh = [False] * n
        for slot in range(n):
            label = labels[slot]
            if label is not None:
                # The paper's marking excludes only a_1..a_k; an agent
                # that already knows a label of the form k + jk must
                # still flood it (it may be the only source reaching
                # the not-yet-labelled tail of the ring).
                j, rem = divmod(label - k, k)
                fresh[slot] = rem == 0 and 1 <= j <= k
                continue
            z = zs[slot]
            if z is None:
                continue
            prefix = Fraction(0)  # lint: allow[fraction-hot-path] -- bounded match-phase accumulator (at most k terms per doubling step), off the per-round path
            for j, y in enumerate(ys[slot], start=1):
                prefix += y
                if 2 * z == prefix:
                    labels[slot] = k + j * k
                    fresh[slot] = True
                    break

        # --- label flood ----------------------------------------------
        RelayFloodPolicy(
            sched,
            [labels[slot] if fresh[slot] else None for slot in range(n)],
            distance=k,
            width=label_width,
        ).run()

        received = population.column(KEY_RECEIVED)
        for slot in range(n):
            if labels[slot] is not None:
                continue
            for own_side, hop, sender_label in received[slot]:
                side = _common_side(flips[slot], own_side)
                label = (
                    sender_label + hop
                    if side == "left"
                    else sender_label - hop
                )
                if label >= 1:
                    labels[slot] = label
                    break

        if on_iteration is not None:
            on_iteration(k)
        if _check_completeness(sched):
            return

    raise ProtocolError("RingDist did not converge: bug")


def publish_ring_size(sched: Scheduler) -> int:
    """Native twin of
    :func:`repro.protocols.ring_distance.publish_ring_size`."""
    population = sched.population
    is_last_column = population.get_column(KEY_IS_LAST)
    is_last = [
        cell is not MISSING and bool(cell)
        for cell in (is_last_column or [MISSING] * population.n)
    ]
    labels = population.get_column(KEY_LABEL)
    values = (
        [None] * population.n
        if labels is None
        else [None if cell is MISSING else cell for cell in labels]
    )
    return broadcast_value(
        sched,
        announcers=is_last,
        values=values,
        result_key=KEY_RING_SIZE,
    )
