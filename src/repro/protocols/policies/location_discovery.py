"""Native walk-based location-discovery sweeps (vectorised twin of
:mod:`repro.protocols.location_discovery`).

The sweeps are the paper's canonical *data-dependent* phases: agents do
not know n, so the loop closes only when the collected gaps first sum
to a full turn (rotation 1) or to two full turns (rotation 2, odd n).
Each sweep therefore plans a :class:`~repro.ring.stretch.
SpeculativeStretch` -- an optimistic span of identical rounds plus a
stop predicate that accumulates slot 0's common-frame ``dist()`` values
and fires on the closing round.  A stretch-capable backend advances the
whole span vectorised and cuts the commit back to the firing round (a
rotation-offset rewind); scalar backends interleave execute and
evaluate, reproducing the legacy loop exactly.  The span length is a
*harness* hint (``state.n``-sized chunks, same access the legacy bug
bound uses) -- correctness rests only on the predicate.

Harvesting is columnar *and lazy*: on the integer path the whole
span's dist numerators arrive as one ``(k, n)`` int64 matrix, the
common-frame conversion is one ``where`` select, and that is where the
work stops -- the harvest just files the matrix (plus the shared
``scale``) in a :class:`_GapHarvest`, and ``ld.gaps`` is set to
:class:`LazyGapColumn` views that materialise interned Fractions only
when some consumer actually reads them (mirroring the
:class:`~repro.core.population.LazyObsRow` pattern for observation
rows).  The rotation-2 circulant inversion likewise runs on raw
numerators (:func:`~repro.analysis.linear_system.
solve_cyclic_pair_sums_ints`).  ``engine="fraction"`` forces the
previous eager Fraction-list harvest -- the executable spec and the
benchmark's baseline side.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from fractions import Fraction
from typing import Dict, List, Optional

from repro.analysis.linear_system import (
    solve_cyclic_pair_sums,
    solve_cyclic_pair_sums_ints,
)
from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LD_GAPS, KEY_LEADER
from repro.protocols.policies.base import (
    IDLE,
    LEFT,
    RIGHT,
    aligned_vector,
    common_dists,
    require_column,
)
from repro.ring.stretch import SpeculativeStretch
from repro.types import Model

#: Upper bound on one speculative chunk (bounds the optimistic column
#: matrix to ``_MAX_CHUNK * n`` int64 cells; tests shrink it to force
#: multi-chunk sweeps).
_MAX_CHUNK = 2048


def _leader_and_flips(sched: Scheduler):
    population = sched.population
    leaders = population.get_column(KEY_LEADER)
    is_leader = (
        [False] * population.n
        if leaders is None
        else [cell is not MISSING and bool(cell) for cell in leaders]
    )
    if not any(is_leader):
        raise ProtocolError("location discovery sweep requires a leader")
    flips = require_column(
        population,
        KEY_FRAME_FLIP,
        "location discovery sweep requires a common frame",
    )
    return is_leader, flips


def _slot0_common(result, j: int, flip0: bool, cache: Dict[int, Fraction]):
    """Round ``j``'s common-frame ``dist()`` of slot 0."""
    ints = result.dist_ints(j)
    if ints is not None:
        scale = result.scale
        v = int(ints[0])
        if flip0 and v:
            v = scale - v
        value = cache.get(v)
        if value is None:
            value = cache[v] = Fraction(v, scale)
        return value
    d = result.observations(j)[0].dist
    if flip0 and d != 0:
        d = Fraction(1) - d
    return d


class _GapHarvest:
    """The integer-mode gap store of one sweep: common-frame dist
    numerator blocks over one shared ``scale``.

    A vectorised stretch outcome contributes its whole ``(k, n)``
    matrix (one ``where`` select, no per-cell Python); stdlib-array or
    materialised rounds contribute per-round int lists.  Totals come
    from column sums (vectorised when the magnitudes provably fit
    int64, Python ints otherwise), and per-slot Fractions only exist
    once a :class:`LazyGapColumn` is read.
    """

    __slots__ = ("n", "scale", "flips", "cache", "blocks", "rounds",
                 "_flip_mask")

    def __init__(self, n: int, scale: int, flips, cache: Dict) -> None:
        self.n = n
        self.scale = scale
        self.flips = flips
        self.cache = cache
        self.blocks: List[object] = []
        self.rounds = 0
        self._flip_mask = None

    def add_result(self, result, want_totals: bool):
        """File every committed round of ``result``; returns the
        block's per-slot totals as ints over ``scale`` (or None)."""
        scale = self.scale
        matrix = result.dist_ints_all()
        xp = result.np
        if matrix is not None and xp is not None:
            if self._flip_mask is None:
                self._flip_mask = xp.asarray(
                    [bool(f) for f in self.flips]
                )
            common = xp.where(
                self._flip_mask[None, :] & (matrix != 0),
                scale - matrix, matrix,
            )
            self.blocks.append(common)
            self.rounds += result.k
            if not want_totals:
                return None
            if scale.bit_length() + result.k.bit_length() <= 61:
                return common.sum(axis=0).tolist()
            return [sum(col) for col in zip(*common.tolist())]
        flips = self.flips
        rows: List[List[int]] = []
        for j in range(result.k):
            ints = result.dist_ints(j)
            if ints is not None:
                row = [
                    scale - v if flip and v else v
                    for flip, v in zip(flips, ints)
                ]
            else:
                # Materialised round: recover the numerators from the
                # interned Fractions' attributes (exact -- every
                # observation's denominator divides the shared scale).
                row = []
                for flip, o in zip(flips, result.observations(j)):
                    d = o.dist
                    v = d.numerator * (scale // d.denominator)
                    if flip and v:
                        v = scale - v
                    row.append(v)
            rows.append(row)
        self.blocks.append(rows)
        self.rounds += result.k
        if not want_totals:
            return None
        return [sum(col) for col in zip(*rows)]

    def column_ints(self, slot: int) -> List[int]:
        """Slot's collected numerators over ``scale``, in round order."""
        out: List[int] = []
        for block in self.blocks:
            if isinstance(block, list):
                out.extend(row[slot] for row in block)
            else:
                out.extend(block[:, slot].tolist())
        return out

    def column(self, slot: int) -> List[Fraction]:
        """Slot's collected gaps as interned Fractions."""
        cache = self.cache
        scale = self.scale
        cells: List[Fraction] = []
        for v in self.column_ints(slot):
            value = cache.get(v)
            if value is None:
                value = cache[v] = Fraction(v, scale)
            cells.append(value)
        return cells


class LazyGapColumn(SequenceABC):
    """One slot's ``ld.gaps`` value, materialised only when read.

    Wraps a :class:`_GapHarvest` and a slot index; the interned
    Fraction list is built on first access and cached.  Compares (and
    hashes) like the equivalent plain list, so cross-backend
    fingerprints and legacy consumers keep working unchanged --
    the same contract as :class:`~repro.core.population.LazyObsRow`.
    """

    __slots__ = ("_harvest", "_slot", "_cells")

    def __init__(self, harvest: _GapHarvest, slot: int) -> None:
        self._harvest = harvest
        self._slot = slot
        self._cells: Optional[List[Fraction]] = None

    def _materialise(self) -> List[Fraction]:
        cells = self._cells
        if cells is None:
            cells = self._cells = self._harvest.column(self._slot)
        return cells

    def ints(self) -> List[int]:
        """The raw numerators over the harvest's ``scale`` (no
        Fractions materialise)."""
        return self._harvest.column_ints(self._slot)

    def __getitem__(self, index):
        return self._materialise()[index]

    def __len__(self) -> int:
        return self._harvest.rounds

    def __iter__(self):
        return iter(self._materialise())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (LazyGapColumn, tuple, list)):
            return list(self._materialise()) == list(other)
        return NotImplemented

    def __hash__(self):
        return hash(tuple(self._materialise()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(self._materialise())


def _harvest_block(result, flips, collected, cache, want_totals: bool):
    """Append every committed round's common-frame dists per slot.

    With ``want_totals`` returns ``(block_totals, scale)``: the block's
    per-slot sums as raw numerators over ``scale`` on the
    integer-column path, or as Fractions with ``scale=None`` on the
    materialised-round fallback (the full-turn validation runs on
    whichever arrived, exactly); else ``(None, scale)``.
    """
    matrix = result.dist_ints_all()
    xp = result.np
    if matrix is not None and xp is not None:
        scale = result.scale
        flip_row = xp.asarray([bool(f) for f in flips])
        common = xp.where(flip_row[None, :] & (matrix != 0),
                          scale - matrix, matrix)
        totals = [] if want_totals else None
        for slot, column in enumerate(common.T.tolist()):
            gaps = collected[slot]
            if want_totals:
                total = 0
                for v in column:
                    value = cache.get(v)
                    if value is None:
                        value = cache[v] = Fraction(v, scale)
                    gaps.append(value)
                    total += v
                totals.append(total)
            else:
                for v in column:
                    value = cache.get(v)
                    if value is None:
                        value = cache[v] = Fraction(v, scale)
                    gaps.append(value)
        return totals, scale
    totals = [Fraction(0)] * len(collected) if want_totals else None
    for j in range(result.k):
        obs = result.observations(j)
        if want_totals:
            for slot, d in enumerate(common_dists(flips, obs)):
                collected[slot].append(d)
                totals[slot] += d
        else:
            for slot, d in enumerate(common_dists(flips, obs)):
                collected[slot].append(d)
    return totals, None


def _sweep_gaps(sched: Scheduler, vector, flips, target: Fraction,
                label: str, want_totals: bool = True,
                engine: Optional[str] = None):
    """Run one sweep speculatively until slot 0's collected gaps sum to
    ``target``; returns ``(collected, rounds, totals, scale)`` where
    ``totals`` holds every slot's running sum (numerators over
    ``scale``, or Fractions with ``scale=None``).

    The first executed round decides the harvest representation: a
    stretch outcome carrying the shared denominator switches the whole
    sweep to integer mode (``collected`` then holds
    :class:`LazyGapColumn` views over one :class:`_GapHarvest`), else
    -- or under ``engine="fraction"`` -- the sweep runs the eager
    Fraction-list harvest exactly as before.
    """
    if engine not in (None, "int", "fraction"):
        raise ProtocolError(f"unknown harvest engine {engine!r}")
    population = sched.population
    n = population.n
    collected: List[List[Fraction]] = [[] for _ in range(n)]
    # Same harness access the legacy bug bound uses; correctness never
    # depends on it -- the predicate alone decides the span's length.
    bound = 4 * sched.state.n + 8
    hint = min(sched.state.n, _MAX_CHUNK)
    flip0 = bool(flips[0])
    cache: Dict[int, Fraction] = {}
    harvest: List[Optional[_GapHarvest]] = [None]
    decided = [False]
    total_frac = [Fraction(0)]  # lint: allow[fraction-hot-path] -- one accumulator cell for the Fraction-spec fallback engine, built once per sweep
    total_int = [0]
    target_int = [0]
    fired = [False]
    executed = 0
    totals = None
    scale = None

    def stop(result, j: int) -> bool:
        if not decided[0]:
            decided[0] = True
            if engine != "fraction" and result.scale is not None:
                h = _GapHarvest(n, result.scale, flips, cache)
                harvest[0] = h
                # Exact: the targets are whole/half turns on the
                # shared-denominator grid.
                target_int[0] = (
                    target.numerator * h.scale
                ) // target.denominator
        h = harvest[0]
        if h is not None:
            ints = result.dist_ints(j)
            if ints is not None:
                v = int(ints[0])
            else:
                d = result.observations(j)[0].dist
                v = d.numerator * (h.scale // d.denominator)
            if flip0 and v:
                v = h.scale - v
            total_int[0] += v
            if total_int[0] == target_int[0]:
                fired[0] = True
                return True
            return False
        total_frac[0] += _slot0_common(result, j, flip0, cache)
        if total_frac[0] == target:
            fired[0] = True
            return True
        return False

    while True:
        chunk = min(hint, bound + 1 - executed)
        result = sched.run_stretch(
            SpeculativeStretch(vector, chunk, stop=stop)
        )
        if harvest[0] is not None:
            block_totals = harvest[0].add_result(result, want_totals)
            scale = harvest[0].scale
        else:
            block_totals, scale = _harvest_block(
                result, flips, collected, cache, want_totals
            )
        if totals is None:
            totals = block_totals
        elif block_totals is not None:
            totals = [a + b for a, b in zip(totals, block_totals)]
        executed += result.k
        if fired[0]:
            if harvest[0] is not None:
                collected = [
                    LazyGapColumn(harvest[0], slot) for slot in range(n)
                ]
            return collected, executed, totals, scale
        if executed > bound:
            raise ProtocolError(f"{label} sweep failed to close: bug")


def sweep_rotation_one(
    sched: Scheduler, engine: Optional[str] = None
) -> int:
    """Native twin of the lazy-model rotation-1 sweep (Lemma 16)."""
    if sched.model is not Model.LAZY:
        raise ProtocolError("rotation-1 sweep requires the lazy model")
    is_leader, flips = _leader_and_flips(sched)
    population = sched.population
    vector = aligned_vector(
        flips, [RIGHT if lead else IDLE for lead in is_leader]
    )
    collected, rounds, totals, scale = _sweep_gaps(
        sched, vector, flips, Fraction(1), "rotation-1", engine=engine  # lint: allow[fraction-hot-path] -- the one-full-turn target constant, built once per sweep at the call boundary
    )
    full_turn = Fraction(1) if scale is None else scale  # lint: allow[fraction-hot-path] -- closing-check constant, compared once after the sweep fires
    for total in totals:
        if total != full_turn:
            raise ProtocolError("agent's sweep did not cover a full turn")
    population.set_column(KEY_LD_GAPS, collected)
    return rounds


def sweep_rotation_two(
    sched: Scheduler, engine: Optional[str] = None
) -> int:
    """Native twin of the basic-model rotation-2 sweep (odd n)."""
    population = sched.population
    if population.parity_even:
        raise InfeasibleProblemError(
            "location discovery in the basic model is unsolvable for even n"
        )
    is_leader, flips = _leader_and_flips(sched)
    vector = aligned_vector(
        flips, [RIGHT if lead else LEFT for lead in is_leader]
    )
    # n pair sums cover every gap exactly twice (odd n): total 2.
    collected, rounds, _totals, scale = _sweep_gaps(
        sched, vector, flips, Fraction(2), "rotation-2",  # lint: allow[fraction-hot-path] -- the two-full-turns target constant, built once per sweep at the call boundary
        want_totals=False, engine=engine,
    )

    gaps_column: List[List[Fraction]] = []
    if collected and isinstance(collected[0], LazyGapColumn):
        # Integer mode: reorder and invert the circulant on raw
        # numerators; the gap Fractions materialise once, shared
        # across slots (every slot recovers the same n gap values).
        solve_cache: Dict[int, Fraction] = {}
        for column in collected:
            nums = column.ints()
            count = len(nums)
            ordered_ints: List[int] = [0] * count
            for t, value in enumerate(nums):
                ordered_ints[(2 * t) % count] = value
            gaps_column.append(
                solve_cyclic_pair_sums_ints(
                    ordered_ints, scale, cache=solve_cache
                )
            )
    else:
        for pair_sums in collected:
            count = len(pair_sums)
            # Round t was observed from slot (own + 2t): reorder the
            # pair sums into consecutive-j form before inverting the
            # circulant.
            ordered: List[Fraction] = [Fraction(0)] * count  # lint: allow[fraction-hot-path] -- Fraction-spec fallback branch (scalar materialised rounds); the integer engine takes the branch above
            for t, value in enumerate(pair_sums):
                ordered[(2 * t) % count] = value
            gaps_column.append(solve_cyclic_pair_sums(ordered))
    population.set_column(KEY_LD_GAPS, gaps_column)
    return rounds
