"""Native walk-based location-discovery sweeps (vectorised twin of
:mod:`repro.protocols.location_discovery`)."""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.analysis.linear_system import solve_cyclic_pair_sums
from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LD_GAPS, KEY_LEADER
from repro.protocols.policies.base import (
    IDLE,
    LEFT,
    RIGHT,
    aligned_vector,
    common_dists,
    require_column,
    run_vector,
)
from repro.types import Model


def _leader_and_flips(sched: Scheduler):
    population = sched.population
    leaders = population.get_column(KEY_LEADER)
    is_leader = (
        [False] * population.n
        if leaders is None
        else [cell is not MISSING and bool(cell) for cell in leaders]
    )
    if not any(is_leader):
        raise ProtocolError("location discovery sweep requires a leader")
    flips = require_column(
        population,
        KEY_FRAME_FLIP,
        "location discovery sweep requires a common frame",
    )
    return is_leader, flips


def sweep_rotation_one(sched: Scheduler) -> int:
    """Native twin of the lazy-model rotation-1 sweep (Lemma 16)."""
    if sched.model is not Model.LAZY:
        raise ProtocolError("rotation-1 sweep requires the lazy model")
    is_leader, flips = _leader_and_flips(sched)
    population = sched.population
    n = population.n
    vector = aligned_vector(
        flips, [RIGHT if lead else IDLE for lead in is_leader]
    )
    collected: List[List[Fraction]] = [[] for _ in range(n)]

    rounds = 0
    while True:
        obs = run_vector(sched, vector)
        rounds += 1
        for slot, d in enumerate(common_dists(flips, obs)):
            collected[slot].append(d)
        # Completion is a local test: a full turn of gaps has been seen.
        if sum(collected[0], Fraction(0)) == 1:
            break
        if rounds > 4 * sched.state.n + 8:
            raise ProtocolError("rotation-1 sweep failed to close: bug")

    for gaps in collected:
        if sum(gaps, Fraction(0)) != 1:
            raise ProtocolError("agent's sweep did not cover a full turn")
    population.set_column(KEY_LD_GAPS, collected)
    return rounds


def sweep_rotation_two(sched: Scheduler) -> int:
    """Native twin of the basic-model rotation-2 sweep (odd n)."""
    population = sched.population
    if population.parity_even:
        raise InfeasibleProblemError(
            "location discovery in the basic model is unsolvable for even n"
        )
    is_leader, flips = _leader_and_flips(sched)
    n = population.n
    vector = aligned_vector(
        flips, [RIGHT if lead else LEFT for lead in is_leader]
    )
    collected: List[List[Fraction]] = [[] for _ in range(n)]

    rounds = 0
    while True:
        obs = run_vector(sched, vector)
        rounds += 1
        for slot, d in enumerate(common_dists(flips, obs)):
            collected[slot].append(d)
        # n pair sums cover every gap exactly twice (odd n): total 2.
        if sum(collected[0], Fraction(0)) == 2:
            break
        if rounds > 4 * sched.state.n + 8:
            raise ProtocolError("rotation-2 sweep failed to close: bug")

    gaps_column: List[List[Fraction]] = []
    for pair_sums in collected:
        count = len(pair_sums)
        # Round t was observed from slot (own + 2t): reorder the pair
        # sums into consecutive-j form before inverting the circulant.
        ordered: List[Fraction] = [Fraction(0)] * count
        for t, value in enumerate(pair_sums):
            ordered[(2 * t) % count] = value
        gaps_column.append(solve_cyclic_pair_sums(ordered))
    population.set_column(KEY_LD_GAPS, gaps_column)
    return rounds
