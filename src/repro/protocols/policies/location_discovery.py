"""Native walk-based location-discovery sweeps (vectorised twin of
:mod:`repro.protocols.location_discovery`).

The sweeps are the paper's canonical *data-dependent* phases: agents do
not know n, so the loop closes only when the collected gaps first sum
to a full turn (rotation 1) or to two full turns (rotation 2, odd n).
Each sweep therefore plans a :class:`~repro.ring.stretch.
SpeculativeStretch` -- an optimistic span of identical rounds plus a
stop predicate that accumulates slot 0's common-frame ``dist()`` values
and fires on the closing round.  A stretch-capable backend advances the
whole span vectorised and cuts the commit back to the firing round (a
rotation-offset rewind); scalar backends interleave execute and
evaluate, reproducing the legacy loop exactly.  The span length is a
*harness* hint (``state.n``-sized chunks, same access the legacy bug
bound uses) -- correctness rests only on the predicate.

Harvesting is columnar: on the vectorised path the whole span's dist
numerators arrive as one ``(k, n)`` int64 matrix, the common-frame
conversion is one ``where`` select, and the per-slot Fraction lists are
built through one interning cache -- no per-round Fraction arithmetic.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from repro.analysis.linear_system import solve_cyclic_pair_sums
from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LD_GAPS, KEY_LEADER
from repro.protocols.policies.base import (
    IDLE,
    LEFT,
    RIGHT,
    aligned_vector,
    common_dists,
    require_column,
)
from repro.ring.stretch import SpeculativeStretch
from repro.types import Model

#: Upper bound on one speculative chunk (bounds the optimistic column
#: matrix to ``_MAX_CHUNK * n`` int64 cells; tests shrink it to force
#: multi-chunk sweeps).
_MAX_CHUNK = 2048


def _leader_and_flips(sched: Scheduler):
    population = sched.population
    leaders = population.get_column(KEY_LEADER)
    is_leader = (
        [False] * population.n
        if leaders is None
        else [cell is not MISSING and bool(cell) for cell in leaders]
    )
    if not any(is_leader):
        raise ProtocolError("location discovery sweep requires a leader")
    flips = require_column(
        population,
        KEY_FRAME_FLIP,
        "location discovery sweep requires a common frame",
    )
    return is_leader, flips


def _slot0_common(result, j: int, flip0: bool, cache: Dict[int, Fraction]):
    """Round ``j``'s common-frame ``dist()`` of slot 0."""
    ints = result.dist_ints(j)
    if ints is not None:
        scale = result.scale
        v = int(ints[0])
        if flip0 and v:
            v = scale - v
        value = cache.get(v)
        if value is None:
            value = cache[v] = Fraction(v, scale)
        return value
    d = result.observations(j)[0].dist
    if flip0 and d != 0:
        d = Fraction(1) - d
    return d


def _harvest_block(result, flips, collected, cache, want_totals: bool):
    """Append every committed round's common-frame dists per slot.

    With ``want_totals`` returns ``(block_totals, scale)``: the block's
    per-slot sums as raw numerators over ``scale`` on the
    integer-column path, or as Fractions with ``scale=None`` on the
    materialised-round fallback (the full-turn validation runs on
    whichever arrived, exactly); else ``(None, scale)``.
    """
    matrix = result.dist_ints_all()
    xp = result.np
    if matrix is not None and xp is not None:
        scale = result.scale
        flip_row = xp.asarray([bool(f) for f in flips])
        common = xp.where(flip_row[None, :] & (matrix != 0),
                          scale - matrix, matrix)
        totals = [] if want_totals else None
        for slot, column in enumerate(common.T.tolist()):
            gaps = collected[slot]
            if want_totals:
                total = 0
                for v in column:
                    value = cache.get(v)
                    if value is None:
                        value = cache[v] = Fraction(v, scale)
                    gaps.append(value)
                    total += v
                totals.append(total)
            else:
                for v in column:
                    value = cache.get(v)
                    if value is None:
                        value = cache[v] = Fraction(v, scale)
                    gaps.append(value)
        return totals, scale
    totals = [Fraction(0)] * len(collected) if want_totals else None
    for j in range(result.k):
        obs = result.observations(j)
        if want_totals:
            for slot, d in enumerate(common_dists(flips, obs)):
                collected[slot].append(d)
                totals[slot] += d
        else:
            for slot, d in enumerate(common_dists(flips, obs)):
                collected[slot].append(d)
    return totals, None


def _sweep_gaps(sched: Scheduler, vector, flips, target: Fraction,
                label: str, want_totals: bool = True):
    """Run one sweep speculatively until slot 0's collected gaps sum to
    ``target``; returns ``(collected, rounds, totals, scale)`` where
    ``totals`` holds every slot's running sum (numerators over
    ``scale``, or Fractions with ``scale=None``)."""
    population = sched.population
    n = population.n
    collected: List[List[Fraction]] = [[] for _ in range(n)]
    # Same harness access the legacy bug bound uses; correctness never
    # depends on it -- the predicate alone decides the span's length.
    bound = 4 * sched.state.n + 8
    hint = min(sched.state.n, _MAX_CHUNK)
    flip0 = bool(flips[0])
    cache: Dict[int, Fraction] = {}
    total = [Fraction(0)]
    fired = [False]
    executed = 0
    totals = None
    scale = None

    def stop(result, j: int) -> bool:
        total[0] += _slot0_common(result, j, flip0, cache)
        if total[0] == target:
            fired[0] = True
            return True
        return False

    while True:
        chunk = min(hint, bound + 1 - executed)
        result = sched.run_stretch(
            SpeculativeStretch(vector, chunk, stop=stop)
        )
        block_totals, scale = _harvest_block(
            result, flips, collected, cache, want_totals
        )
        if totals is None:
            totals = block_totals
        elif block_totals is not None:
            totals = [a + b for a, b in zip(totals, block_totals)]
        executed += result.k
        if fired[0]:
            return collected, executed, totals, scale
        if executed > bound:
            raise ProtocolError(f"{label} sweep failed to close: bug")


def sweep_rotation_one(sched: Scheduler) -> int:
    """Native twin of the lazy-model rotation-1 sweep (Lemma 16)."""
    if sched.model is not Model.LAZY:
        raise ProtocolError("rotation-1 sweep requires the lazy model")
    is_leader, flips = _leader_and_flips(sched)
    population = sched.population
    vector = aligned_vector(
        flips, [RIGHT if lead else IDLE for lead in is_leader]
    )
    collected, rounds, totals, scale = _sweep_gaps(
        sched, vector, flips, Fraction(1), "rotation-1"
    )
    full_turn = Fraction(1) if scale is None else scale
    for total in totals:
        if total != full_turn:
            raise ProtocolError("agent's sweep did not cover a full turn")
    population.set_column(KEY_LD_GAPS, collected)
    return rounds


def sweep_rotation_two(sched: Scheduler) -> int:
    """Native twin of the basic-model rotation-2 sweep (odd n)."""
    population = sched.population
    if population.parity_even:
        raise InfeasibleProblemError(
            "location discovery in the basic model is unsolvable for even n"
        )
    is_leader, flips = _leader_and_flips(sched)
    vector = aligned_vector(
        flips, [RIGHT if lead else LEFT for lead in is_leader]
    )
    # n pair sums cover every gap exactly twice (odd n): total 2.
    collected, rounds, _totals, _scale = _sweep_gaps(
        sched, vector, flips, Fraction(2), "rotation-2",
        want_totals=False,
    )

    gaps_column: List[List[Fraction]] = []
    for pair_sums in collected:
        count = len(pair_sums)
        # Round t was observed from slot (own + 2t): reorder the pair
        # sums into consecutive-j form before inverting the circulant.
        ordered: List[Fraction] = [Fraction(0)] * count
        for t, value in enumerate(pair_sums):
            ordered[(2 * t) % count] = value
        gaps_column.append(solve_cyclic_pair_sums(ordered))
    population.set_column(KEY_LD_GAPS, gaps_column)
    return rounds
