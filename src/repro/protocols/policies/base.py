"""Shared machinery for the native phase drivers.

A native driver is a :class:`PhasePolicy`: a queue of *steps*, one per
round.  Each step carries the round's direction vector (a precomputed
list, a callable evaluated at decide time for data-dependent rounds, or
one of the :data:`REPEAT` / :data:`RESTORE` markers for the paper's
ubiquitous probe/REVERSEDROUND pairs) and an optional *harvest* hook run
after the round with the whole population's observations.  The
scheduler calls :meth:`PhasePolicy.decide` exactly once per round, so a
whole phase executes with zero per-agent Python dispatch on the
decision path; harvests write round results straight into the
population's columns.

Data-dependent drivers (rotation classification, bisection, selective
family search) extend their own queue from inside a harvest -- the
queue is empty beyond the current step at that point, so continuation
steps land in order.

Fused stretches: a step pushed with :meth:`PhasePolicy.push_stretch`
carries a whole :class:`~repro.ring.stretch.Stretch` plan (several
rounds whose vectors are known up front -- probe/restore pairs, bit
exchange frames).  ``decide`` returns the plan itself; the scheduler
executes the span in one backend call on stretch-capable backends and
the step's harvest receives the columnar *stretch outcome* instead of
one round's observations.  :meth:`PhasePolicy.push_probe` plans the
paper's probe/REVERSEDROUND pair as one such span, so every
``push_probe``-based driver fuses automatically.

Unchecked execution: when the scheduler runs with ``unchecked=True``,
:meth:`PhasePolicy.push_restore` (and the restore halves of
:meth:`PhasePolicy.push_probe_span` / :meth:`PhasePolicy.push_probe`)
enqueue *skip steps* instead of rounds -- the span's provable net
effect, a rotation (Lemma 1), is committed directly by
:meth:`~repro.core.scheduler.Scheduler.skip_restoring` without
simulating anything.  Protocol results and final positions are
unchanged; the skipped rounds appear in neither the round count nor
the agent logs.

Vector helpers mirror the legacy per-agent vocabulary:
:func:`aligned_vector` is the column form of
:func:`repro.protocols.base.aligned_direction`, :func:`common_dists` of
:func:`repro.protocols.base.common_dist`.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.api.policy import Policy
from repro.core.agent import AgentView
from repro.core.population import MISSING, Population
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.ring.stretch import (
    Stretch,
    opposite_row,
    row_directions,
    row_is_signs,
)
from repro.types import LocalDirection, Observation, RoundOutcome

RIGHT = LocalDirection.RIGHT
LEFT = LocalDirection.LEFT
IDLE = LocalDirection.IDLE

#: Step marker: play the previous round's vector again.
REPEAT = type("_Repeat", (), {"__repr__": lambda self: "<repeat>"})()
#: Step marker: play the opposite of the previous round's vector (the
#: paper's REVERSEDROUND).
RESTORE = type("_Restore", (), {"__repr__": lambda self: "<restore>"})()

Vector = List[LocalDirection]
VectorSpec = Union[Vector, Callable[[], Vector], Any]
Harvest = Callable[[Sequence[Observation]], None]
#: Harvest signature of a fused step: receives the stretch outcome.
StretchHarvest = Callable[[Any], None]


class _StretchStep:
    """Queue marker wrapping a :class:`Stretch` (or its builder)."""

    __slots__ = ("spec",)

    def __init__(self, spec: Any) -> None:
        self.spec = spec


class _SkipStep:
    """Queue marker for a provably-restoring span skipped under
    ``unchecked`` execution.  ``build()`` returns ``(row, k)`` at
    consume time (the row usually depends on ``last_vector``)."""

    __slots__ = ("build",)

    def __init__(self, build: Callable[[], Any]) -> None:
        self.build = build


def opposite_vector(vector: Sequence[LocalDirection]) -> Vector:
    """The whole-population REVERSEDROUND of ``vector``."""
    return [d.opposite() for d in vector]


def aligned_vector(
    flips: Sequence[bool], commons: Sequence[LocalDirection]
) -> Vector:
    """Translate per-slot common-frame directions into local frames."""
    return [
        c if c is IDLE or not f else c.opposite()
        for f, c in zip(flips, commons)
    ]


def common_dists(
    flips: Sequence[bool], observations: Sequence[Observation]
) -> List[Fraction]:
    """Each slot's ``dist()`` converted into the common frame."""
    return [
        (Fraction(1) - o.dist if o.dist != 0 else Fraction(0))
        if f
        else o.dist
        for f, o in zip(flips, observations)
    ]


def require_column(
    population: Population, key: str, message: str
) -> List[Any]:
    """The fully-set column for ``key``; :class:`ProtocolError` with
    ``message`` if any slot is missing it."""
    column = population.get_column(key)
    if column is None or any(cell is MISSING for cell in column):
        raise ProtocolError(message)
    return column


class PhasePolicy(Policy):
    """A native phase driver: a self-scheduling queue of round steps.

    Subclasses (or callers, via :meth:`push`) enqueue steps; :meth:`run`
    drives the scheduler until the queue drains, then calls
    :meth:`finalize`.  ``decide`` resolves the head step's vector;
    ``observe`` pops the step and runs its harvest with the round's
    observations.
    """

    def __init__(self, sched: Scheduler) -> None:
        self.sched = sched
        self.population: Population = sched.population
        self.n: int = sched.population.n
        #: numpy when the backend exposes vectorised stretch columns
        #: (the array backend with numpy installed), else None; fused
        #: drivers key their internal representation off this.
        self.xp = sched.array_module
        #: Whether restore steps are skipped instead of simulated
        #: (``Scheduler(unchecked=True)``; never under cross-validation).
        self.unchecked: bool = bool(getattr(sched, "unchecked", False))
        self._queue: "deque" = deque()
        #: The most recent row actually played (REPEAT/RESTORE base) --
        #: a direction vector, or a local sign row under ``xp``.
        self.last_vector: Optional[Vector] = None

    # -- plan construction ----------------------------------------------

    def push(
        self, vector: VectorSpec, harvest: Optional[Harvest] = None
    ) -> None:
        """Enqueue one round: its direction vector (or marker/callable)
        and an optional post-round harvest."""
        self._queue.append((vector, harvest))

    def push_stretch(
        self, spec: Any, harvest: Optional[StretchHarvest] = None
    ) -> None:
        """Enqueue one fused span: a :class:`Stretch` (or a callable
        building one at decide time) and an optional harvest that
        receives the whole stretch outcome."""
        self._queue.append((_StretchStep(spec), harvest))

    def push_probe_span(
        self, vector: VectorSpec, harvest: Optional[StretchHarvest] = None
    ) -> None:
        """Enqueue a probe/REVERSEDROUND pair as one fused span whose
        harvest receives the *stretch outcome* (round 0 is the probe;
        the restore round's observations are never read, so on a
        stretch-capable backend they are never materialised).  Under
        ``unchecked`` execution the probe runs as a single-round span
        and the restore is skipped (:meth:`push_restore`)."""
        if self.unchecked:
            def build_probe() -> Stretch:
                row = vector() if callable(vector) else vector
                return Stretch(row, 1)

            self.push_stretch(build_probe, harvest)
            self.push_restore()
            return

        def build() -> Stretch:
            row = vector() if callable(vector) else vector
            return Stretch.probe_restore(row)

        self.push_stretch(build, harvest)

    def push_probe(
        self, vector: VectorSpec, harvest: Optional[Harvest] = None
    ) -> None:
        """As :meth:`push_probe_span`, with a legacy observation-row
        harvest: it receives the probe round's materialised
        observations instead of the stretch outcome."""
        wrapped: Optional[StretchHarvest] = None
        if harvest is not None:
            def wrapped(result, _harvest=harvest):
                _harvest(result.observations(0))

        self.push_probe_span(vector, wrapped)

    def push_restore(self, k: int = 1) -> None:
        """Enqueue ``k`` REVERSEDROUNDs of the last played row as one
        fused span (observations never materialise).  Under
        ``unchecked`` execution the span is not simulated at all: its
        provable net effect -- positions restore by rotation (Lemma 1)
        -- is committed directly, and the skipped rounds appear in
        neither the round count nor the logs."""
        if self.unchecked:
            self._queue.append((
                _SkipStep(lambda: (opposite_row(self.last_vector), k)),
                None,
            ))
            return

        def build() -> Stretch:
            return Stretch(opposite_row(self.last_vector), k)

        self.push_stretch(build)

    def push_classify(
        self,
        vector: VectorSpec,
        weak: bool,
        on_verdict: Callable[[bool], None],
    ) -> None:
        """Enqueue the Lemma 2 (weak) nontrivial-move classification of
        ``vector``, mirroring the legacy ``nontrivial_move._classify``
        round for round: 1 probe + 1 restore when the rotation index is
        zero (or the weak test passes), else 2 probes + 2 restores with
        the half-turn verdict posted to the ``nmove._half`` column.
        ``on_verdict(nontrivial)`` fires once the verdict is known (the
        trailing restore rounds still execute, as a fused span).

        The probes are single-round stretches so that on a stretch
        backend the dist columns are read as raw integers -- the
        half-turn test ``d1 + d2 == 1`` becomes one vectorised integer
        compare against the shared denominator.
        """

        def first_harvest(result) -> None:
            d1_ints = result.dist_ints(0)
            vectorised = d1_ints is not None and result.np is not None
            if vectorised:
                zero = int(d1_ints[0]) == 0
            else:
                zero = result.observations(0)[0].dist == 0
            if zero:
                self.push_restore()
                on_verdict(False)
                return
            if weak:
                self.push_restore()
                on_verdict(True)
                return

            def second_harvest(result2) -> None:
                d2_ints = result2.dist_ints(0)
                if (
                    vectorised
                    and d2_ints is not None
                    and result2.np is not None
                    and result.scale == result2.scale
                ):
                    halfs = (
                        (d1_ints + d2_ints) == result.scale
                    ).tolist()
                else:
                    halfs = [
                        d1 + d2 == 1
                        for d1, d2 in zip(result.dists(0), result2.dists(0))
                    ]
                self.population.set_column("nmove._half", halfs)
                self.push_restore(2)
                on_verdict(not halfs[0])

            self.push_stretch(
                lambda: Stretch(self.last_vector, 1), second_harvest
            )

        def build_first() -> Stretch:
            row = vector() if callable(vector) else vector
            return Stretch(row, 1)

        self.push_stretch(build_first, first_harvest)

    # -- Policy interface ------------------------------------------------

    @property
    def pending(self) -> int:
        """Rounds still queued."""
        return len(self._queue)

    def decide(self, views: Sequence[AgentView]):
        if not self._queue:
            raise ProtocolError(
                f"{type(self).__name__} has no round queued"
            )
        vector = self._queue[0][0]
        if isinstance(vector, _SkipStep):
            raise ProtocolError(
                "an unchecked skip step must be consumed by "
                f"{type(self).__name__}.run(), not decided as a round"
            )
        if isinstance(vector, _StretchStep):
            spec = vector.spec
            stretch = spec() if callable(spec) else spec
            self.last_vector = stretch.last_row
            return stretch
        if vector is REPEAT:
            vector = self.last_vector
        elif vector is RESTORE:
            vector = opposite_row(self.last_vector)
        elif callable(vector):
            vector = vector()
        self.last_vector = vector
        if row_is_signs(vector):
            # A plain step may follow a sign-row stretch (REPEAT /
            # RESTORE): single rounds always run as direction vectors.
            return row_directions(vector)
        return vector

    def observe(
        self, views: Sequence[AgentView], outcome: RoundOutcome
    ) -> None:
        _vector, harvest = self._queue.popleft()
        if harvest is not None:
            harvest(outcome.observations)

    def observe_stretch(self, views: Sequence[AgentView], result) -> None:
        """Pop the fused step and run its harvest with the stretch
        outcome (called by the scheduler instead of ``observe`` when
        ``decide`` returned a :class:`Stretch`)."""
        _spec, harvest = self._queue.popleft()
        if harvest is not None:
            harvest(result)

    # -- driving ---------------------------------------------------------

    def run(self) -> "PhasePolicy":
        """Execute every queued round (including any the harvests add),
        then :meth:`finalize`; returns self for chaining.  Skip steps
        (restores under ``unchecked`` execution) are consumed here
        without a round: the span's net rotation commits directly."""
        sched = self.sched
        queue = self._queue
        while queue:
            head = queue[0][0]
            if isinstance(head, _SkipStep):
                queue.popleft()
                row, k = head.build()
                sched.skip_restoring(row, k)
                self.last_vector = row
                continue
            sched.run_round(self)
        self.finalize()
        return self

    def finalize(self) -> None:
        """Post-run conclusion (column writes); default no-op."""


def run_vector(sched: Scheduler, vector: Vector) -> Sequence[Observation]:
    """Run one ad-hoc round from a precomputed vector; returns the
    population's observations for that round."""
    from repro.api.policy import VectorPolicy

    outcome = sched.run_round(VectorPolicy(vector))
    return outcome.observations
