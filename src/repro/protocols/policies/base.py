"""Shared machinery for the native phase drivers.

A native driver is a :class:`PhasePolicy`: a queue of *steps*, one per
round.  Each step carries the round's direction vector (a precomputed
list, a callable evaluated at decide time for data-dependent rounds, or
one of the :data:`REPEAT` / :data:`RESTORE` markers for the paper's
ubiquitous probe/REVERSEDROUND pairs) and an optional *harvest* hook run
after the round with the whole population's observations.  The
scheduler calls :meth:`PhasePolicy.decide` exactly once per round, so a
whole phase executes with zero per-agent Python dispatch on the
decision path; harvests write round results straight into the
population's columns.

Data-dependent drivers (rotation classification, bisection, selective
family search) extend their own queue from inside a harvest -- the
queue is empty beyond the current step at that point, so continuation
steps land in order.

Vector helpers mirror the legacy per-agent vocabulary:
:func:`aligned_vector` is the column form of
:func:`repro.protocols.base.aligned_direction`, :func:`common_dists` of
:func:`repro.protocols.base.common_dist`.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.api.policy import Policy
from repro.core.agent import AgentView
from repro.core.population import MISSING, Population
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.types import LocalDirection, Observation, RoundOutcome

RIGHT = LocalDirection.RIGHT
LEFT = LocalDirection.LEFT
IDLE = LocalDirection.IDLE

#: Step marker: play the previous round's vector again.
REPEAT = type("_Repeat", (), {"__repr__": lambda self: "<repeat>"})()
#: Step marker: play the opposite of the previous round's vector (the
#: paper's REVERSEDROUND).
RESTORE = type("_Restore", (), {"__repr__": lambda self: "<restore>"})()

Vector = List[LocalDirection]
VectorSpec = Union[Vector, Callable[[], Vector], Any]
Harvest = Callable[[Sequence[Observation]], None]


def opposite_vector(vector: Sequence[LocalDirection]) -> Vector:
    """The whole-population REVERSEDROUND of ``vector``."""
    return [d.opposite() for d in vector]


def aligned_vector(
    flips: Sequence[bool], commons: Sequence[LocalDirection]
) -> Vector:
    """Translate per-slot common-frame directions into local frames."""
    return [
        c if c is IDLE or not f else c.opposite()
        for f, c in zip(flips, commons)
    ]


def common_dists(
    flips: Sequence[bool], observations: Sequence[Observation]
) -> List[Fraction]:
    """Each slot's ``dist()`` converted into the common frame."""
    return [
        (Fraction(1) - o.dist if o.dist != 0 else Fraction(0))
        if f
        else o.dist
        for f, o in zip(flips, observations)
    ]


def require_column(
    population: Population, key: str, message: str
) -> List[Any]:
    """The fully-set column for ``key``; :class:`ProtocolError` with
    ``message`` if any slot is missing it."""
    column = population.get_column(key)
    if column is None or any(cell is MISSING for cell in column):
        raise ProtocolError(message)
    return column


class PhasePolicy(Policy):
    """A native phase driver: a self-scheduling queue of round steps.

    Subclasses (or callers, via :meth:`push`) enqueue steps; :meth:`run`
    drives the scheduler until the queue drains, then calls
    :meth:`finalize`.  ``decide`` resolves the head step's vector;
    ``observe`` pops the step and runs its harvest with the round's
    observations.
    """

    def __init__(self, sched: Scheduler) -> None:
        self.sched = sched
        self.population: Population = sched.population
        self.n: int = sched.population.n
        self._queue: "deque" = deque()
        #: The most recent vector actually played (REPEAT/RESTORE base).
        self.last_vector: Optional[Vector] = None

    # -- plan construction ----------------------------------------------

    def push(
        self, vector: VectorSpec, harvest: Optional[Harvest] = None
    ) -> None:
        """Enqueue one round: its direction vector (or marker/callable)
        and an optional post-round harvest."""
        self._queue.append((vector, harvest))

    def push_probe(
        self, vector: VectorSpec, harvest: Optional[Harvest] = None
    ) -> None:
        """Enqueue an information round followed by its REVERSEDROUND."""
        self.push(vector, harvest)
        self.push(RESTORE)

    def push_classify(
        self,
        vector: VectorSpec,
        weak: bool,
        on_verdict: Callable[[bool], None],
    ) -> None:
        """Enqueue the Lemma 2 (weak) nontrivial-move classification of
        ``vector``, mirroring the legacy ``nontrivial_move._classify``
        round for round: 1 probe + 1 restore when the rotation index is
        zero (or the weak test passes), else 2 probes + 2 restores with
        the half-turn verdict posted to the ``nmove._half`` column.
        ``on_verdict(nontrivial)`` fires once the verdict is known (the
        trailing restore rounds still execute)."""

        def first_harvest(obs: Sequence[Observation]) -> None:
            if obs[0].dist == 0:
                self.push(RESTORE)
                on_verdict(False)
                return
            if weak:
                self.push(RESTORE)
                on_verdict(True)
                return
            d1s = [o.dist for o in obs]

            def second_harvest(obs2: Sequence[Observation]) -> None:
                halfs = [
                    d1 + o.dist == 1 for d1, o in zip(d1s, obs2)
                ]
                self.population.set_column("nmove._half", halfs)
                self.push(RESTORE)
                self.push(REPEAT)
                on_verdict(not halfs[0])

            self.push(REPEAT, second_harvest)

        self.push(vector, first_harvest)

    # -- Policy interface ------------------------------------------------

    @property
    def pending(self) -> int:
        """Rounds still queued."""
        return len(self._queue)

    def decide(self, views: Sequence[AgentView]) -> Vector:
        if not self._queue:
            raise ProtocolError(
                f"{type(self).__name__} has no round queued"
            )
        vector = self._queue[0][0]
        if vector is REPEAT:
            vector = self.last_vector
        elif vector is RESTORE:
            vector = opposite_vector(self.last_vector)
        elif callable(vector):
            vector = vector()
        self.last_vector = vector
        return vector

    def observe(
        self, views: Sequence[AgentView], outcome: RoundOutcome
    ) -> None:
        _vector, harvest = self._queue.popleft()
        if harvest is not None:
            harvest(outcome.observations)

    # -- driving ---------------------------------------------------------

    def run(self) -> "PhasePolicy":
        """Execute every queued round (including any the harvests add),
        then :meth:`finalize`; returns self for chaining."""
        sched = self.sched
        while self._queue:
            sched.run_round(self)
        self.finalize()
        return self

    def finalize(self) -> None:
        """Post-run conclusion (column writes); default no-op."""


def run_vector(sched: Scheduler, vector: Vector) -> Sequence[Observation]:
    """Run one ad-hoc round from a precomputed vector; returns the
    population's observations for that round."""
    from repro.api.policy import VectorPolicy

    outcome = sched.run_round(VectorPolicy(vector))
    return outcome.observations
