"""Native whole-population phase drivers.

Each module here is the vectorised twin of a legacy per-agent driver in
:mod:`repro.protocols`: the same algorithm, the same round sequence, the
same memory keys -- but every round's direction vector is computed in
one :meth:`~repro.api.policy.Policy.decide` call from the scheduler's
columnar :class:`~repro.core.population.Population`, and round results
are posted back to columns in one ``observe`` pass.  The legacy
callback drivers remain the executable reference specification; the
property tests in ``tests/test_native_policies.py`` hold the two
bit-exact across models and kinematics backends.

The protocol registry plans these drivers by default
(``driver="native"``); pass ``driver="callback"`` to a
:class:`~repro.api.session.RingSession` or ``--driver callback`` on the
CLI to run the per-agent reference path instead.
"""

from repro.protocols.policies.base import PhasePolicy
from repro.protocols.policies.bitcomm import RelayFloodPolicy
from repro.protocols.policies.leader_election import LeaderElectionPolicy
from repro.protocols.policies.neighbor_discovery import (
    NeighborDiscoveryPolicy,
)
from repro.protocols.policies.nmove_perceptive import (
    SelectiveFamilyProbePolicy,
)
from repro.protocols.policies.rotation_probe import RotationProbePolicy

__all__ = [
    "PhasePolicy",
    "NeighborDiscoveryPolicy",
    "RelayFloodPolicy",
    "LeaderElectionPolicy",
    "SelectiveFamilyProbePolicy",
    "RotationProbePolicy",
]
