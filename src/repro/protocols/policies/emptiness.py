"""Native emptiness testing (vectorised twin of
:mod:`repro.protocols.emptiness`).

Same probe rounds per model (Lemma 12), same ``empty.result`` consensus
column; occupancy evidence is OR-folded over the observation column in
one pass.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP
from repro.protocols.emptiness import KEY_EMPTY_RESULT, _KEY_SAW
from repro.protocols.policies.base import (
    IDLE,
    LEFT,
    RIGHT,
    aligned_vector,
    require_column,
    run_vector,
)
from repro.core.agent import id_bits
from repro.types import LocalDirection, Model


def _member_round(
    sched: Scheduler,
    members: set,
    non_member_dir: LocalDirection,
    saw: List[bool],
) -> None:
    """One probe + its reversal; ORs occupancy evidence into ``saw``."""
    population = sched.population
    flips = require_column(
        population,
        KEY_FRAME_FLIP,
        "emptiness testing requires an established common frame",
    )
    commons = [
        RIGHT if agent_id in members else non_member_dir
        for agent_id in population.ids
    ]
    vector = aligned_vector(flips, commons)
    obs = run_vector(sched, vector)
    for i, o in enumerate(obs):
        if o.dist != 0 or o.coll is not None:
            saw[i] = True
    run_vector(sched, [d.opposite() for d in vector])


def emptiness_test(sched: Scheduler, candidate_ids: Iterable[int]) -> bool:
    """Native twin of :func:`repro.protocols.emptiness.emptiness_test`:
    every agent ends with the consensus verdict under ``empty.result``
    (True = empty)."""
    members = set(candidate_ids)
    population = sched.population
    model = sched.model
    parity_even = population.parity_even

    saw = [False] * population.n

    if model is Model.LAZY:
        _member_round(sched, members, IDLE, saw)
    elif model is Model.PERCEPTIVE or not parity_even:
        _member_round(sched, members, LEFT, saw)
    else:
        # Basic model, even n: probe B, then each bit-slice of B.
        _member_round(sched, members, LEFT, saw)
        for i in range(id_bits(population.id_bound)):
            slice_i = {x for x in members if (x >> i) & 1}
            _member_round(sched, slice_i, LEFT, saw)

    results = [
        False if agent_id in members else not saw[i]
        for i, agent_id in enumerate(population.ids)
    ]
    # Mirror the legacy driver exactly: it pops its occupancy scratch
    # key only for non-members, so member agents keep theirs.
    population.set_column(
        _KEY_SAW,
        [
            saw[i] if agent_id in members else MISSING
            for i, agent_id in enumerate(population.ids)
        ],
    )
    population.set_column(KEY_EMPTY_RESULT, results)
    if any(r != results[0] for r in results):
        raise ProtocolError("emptiness test reached no consensus: bug")
    return bool(results[0])
