"""Native collision-channel communication (vectorised twin of
:mod:`repro.protocols.bitcomm`).

The 1-bit neighbor channel (Prop 31) is four rounds -- probe, restore,
inverse probe, restore -- whose vectors derive from the transmitted bit
column; frames (Cor 32) stack ``width + 1`` bit exchanges; the sparsed
relay flood (Cor 34) stacks two frames per hop with the
chirality-corrected register shuffle between them.
:class:`RelayFloodPolicy` plans the *entire* flood as one policy --
``8 * (width + 1) * distance`` rounds -- whose vectors are evaluated
lazily from the relay registers, so the whole dissemination runs with
one ``decide`` per round and zero per-agent dispatch.

Fused execution: each bit exchange is planned as ONE four-round
:class:`~repro.ring.stretch.Stretch` -- probe, double restore, closing
restore -- decided in a single call.  On a stretch-capable backend
(``--backend array`` with numpy) the entire exchange runs vectorised:
the probe vectors are int8 sign rows built from the bit column, the
two restore rounds never materialise observations, and decoding
compares raw integer ``coll()`` numerators against precomputed gap
numerators -- one numpy compare per side instead of 2n Fraction
comparisons.  Frame folding and the relay register shuffle follow the
same integer columns (``-1`` encodes "no value").  Without a stretch
backend the policies keep the legacy per-round plan and per-agent
decode, bit-exact with the callback driver.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.bitcomm import (
    KEY_FROM_LEFT,
    KEY_FROM_RIGHT,
    KEY_RECEIVED,
)
from repro.protocols.neighbor_discovery import (
    KEY_GAP_LEFT,
    KEY_GAP_RIGHT,
    KEY_SAME_LEFT,
    KEY_SAME_RIGHT,
)
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    REPEAT,
    RESTORE,
    RIGHT,
)
from repro.ring.stretch import Stretch
from repro.types import Model, Observation

KEY_FRAME_FROM_RIGHT = "comm.frame_from_right"
KEY_FRAME_FROM_LEFT = "comm.frame_from_left"


def _bit_slice(value: Optional[int], slot: int) -> int:
    """(present, value) frame encoding: slot 0 is the present flag."""
    if slot == 0:
        return 1 if value is not None else 0
    if value is None:
        return 0
    return (value >> (slot - 1)) & 1


class BitExchangePolicy(PhasePolicy):
    """Plumbing shared by all collision-channel policies: plans bit
    exchanges and (present, value) frames over the neighbor channel."""

    def __init__(self, sched: Scheduler) -> None:
        if sched.model is not Model.PERCEPTIVE:
            raise ProtocolError("bit exchange requires the perceptive model")
        super().__init__(sched)
        population = self.population
        if not population.all_set(KEY_GAP_RIGHT):
            raise ProtocolError(
                "bit communication requires neighbor discovery results"
            )
        self._gap_right = population.column(KEY_GAP_RIGHT)
        self._gap_left = population.column(KEY_GAP_LEFT)
        self._same_right = population.column(KEY_SAME_RIGHT)
        self._same_left = population.column(KEY_SAME_LEFT)
        xp = self.xp
        if xp is not None:
            # Integer mirrors for the vectorised decode: coll()
            # numerators are over 2 * scale, so "first collision at
            # half the gap" becomes an int64 equality against
            # gap * scale.
            scale = sched.simulator.backend.scale
            self._scale = scale
            self._grn = xp.asarray(
                [
                    g.numerator * (scale // g.denominator)
                    for g in self._gap_right
                ],
                dtype=xp.int64,
            )
            self._gln = xp.asarray(
                [
                    g.numerator * (scale // g.denominator)
                    for g in self._gap_left
                ],
                dtype=xp.int64,
            )
            self._same_r_arr = xp.asarray(
                [bool(b) for b in self._same_right], dtype=bool
            )
            self._same_l_arr = xp.asarray(
                [bool(b) for b in self._same_left], dtype=bool
            )
            self._frame_right_arr = None
            self._frame_left_arr = None

    # -- one bit, both neighbors, 4 rounds ------------------------------

    def push_bit_exchange(
        self,
        bits_provider: Callable[[], Sequence[int]],
        on_decoded: Optional[Callable] = None,
    ) -> None:
        """Plan one bit exchange: every slot transmits
        ``bits_provider()[slot]`` to both neighbors.  Decoded bits land
        in the ``comm.bit_from_right`` / ``comm.bit_from_left`` columns
        and are passed to ``on_decoded(from_right, from_left)`` (lists
        on the scalar plan, int64 arrays on the vectorised plan)."""
        if self.xp is not None:
            self._push_bit_exchange_fused(bits_provider, on_decoded)
        else:
            self._push_bit_exchange_scalar(bits_provider, on_decoded)

    def _push_bit_exchange_scalar(
        self,
        bits_provider: Callable[[], Sequence[int]],
        on_decoded: Optional[Callable[[List[int], List[int]], None]],
    ) -> None:
        """The legacy four-step plan (per-round decide, per-agent
        decode); the bit-exact reference for the fused plan."""
        ctx: dict = {}

        def probe_vector():
            bits = list(bits_provider())
            for b in bits:
                if b not in (0, 1):
                    raise ProtocolError(f"bit_of returned non-bit {b!r}")
            ctx["bits"] = bits
            return [RIGHT if b == 1 else LEFT for b in bits]

        def harvest_probe0(obs: Sequence[Observation]) -> None:
            ctx["coll0"] = [o.coll for o in obs]

        def harvest_probe1(obs: Sequence[Observation]) -> None:
            ctx["coll1"] = [o.coll for o in obs]

        def decode(_obs: Sequence[Observation]) -> None:
            bits = ctx.pop("bits")
            colls = (ctx.pop("coll0"), ctx.pop("coll1"))
            from_right, from_left = self._decode_scalar(bits, colls)
            population = self.population
            population.set_column(KEY_FROM_RIGHT, from_right)
            population.set_column(KEY_FROM_LEFT, from_left)
            if on_decoded is not None:
                on_decoded(from_right, from_left)

        if self.unchecked:
            # Skip both restores; the decode needs no round of its own.
            def harvest_probe1_decode(obs: Sequence[Observation]) -> None:
                harvest_probe1(obs)
                decode(obs)

            self.push(probe_vector, harvest_probe0)
            self.push_restore()
            # After the skip, last_vector is already the inverse probe.
            self.push(REPEAT, harvest_probe1_decode)
            self.push_restore()
            return
        self.push(probe_vector, harvest_probe0)
        self.push(RESTORE)
        # After the restore, last_vector is already the inverse probe.
        self.push(REPEAT, harvest_probe1)
        self.push(RESTORE, decode)

    def _decode_scalar(self, bits, colls):
        """Per-agent channel decode (Prop 31), shared by the scalar
        plan and the fused plan's exact fallback."""
        from_right: List[int] = []
        from_left: List[int] = []
        for i in range(self.n):
            # Index of the probe in which slot i moved own-RIGHT.
            right_probe = 0 if bits[i] == 1 else 1
            left_probe = 1 - right_probe
            approached_r = (
                colls[right_probe][i] == self._gap_right[i] / 2
            )
            approached_l = (
                colls[left_probe][i] == self._gap_left[i] / 2
            )
            r_toward_in_probe0 = (
                approached_r if right_probe == 0 else not approached_r
            )
            l_toward_in_probe0 = (
                approached_l if left_probe == 0 else not approached_l
            )
            from_right.append(
                int(r_toward_in_probe0 == (not self._same_right[i]))
            )
            from_left.append(
                int(l_toward_in_probe0 == self._same_left[i])
            )
        return from_right, from_left

    def _push_bit_exchange_fused(
        self,
        bits_provider: Callable[[], Sequence[int]],
        on_decoded: Optional[Callable],
    ) -> None:
        """One fused four-round span; whole-column integer decode."""
        xp = self.xp
        ctx: dict = {}

        def build() -> Stretch:
            provided = bits_provider()
            bits = xp.asarray(provided)
            if bits.dtype.kind not in "iub":
                for b in provided:
                    if b not in (0, 1):
                        raise ProtocolError(
                            f"bit_of returned non-bit {b!r}"
                        )
                raise ProtocolError("bit column is not integral")
            bad = (bits != 0) & (bits != 1)
            if bool(bad.any()):
                b = bits[bad][0]
                raise ProtocolError(
                    f"bit_of returned non-bit {int(b)!r}"
                )
            bits = bits.astype(xp.int8)
            ctx["bits"] = bits
            signs = xp.where(bits == 1, 1, -1).astype(xp.int8)
            # Probe, restore, inverse probe, restore: [s, -s, -s, s].
            return Stretch(pairs=[(signs, 1), (-signs, 2), (signs, 1)])

        def harvest(result) -> None:
            self._decode_exchange(
                ctx.pop("bits"), result, 0, result, 2, on_decoded
            )

        if self.unchecked:
            # Skip the two provably-restoring rounds: probe, rewind,
            # inverse probe, rewind -- two executed rounds per bit.
            def harvest_probe(result) -> None:
                ctx["probe0"] = result

            def build_inverse() -> Stretch:
                return Stretch(self.last_vector, 1)

            def harvest_decode(result) -> None:
                self._decode_exchange(
                    ctx.pop("bits"), ctx.pop("probe0"), 0,
                    result, 0, on_decoded,
                )

            def build_probe() -> Stretch:
                span = build()
                return Stretch(span.pairs[0][0], 1)

            self.push_stretch(build_probe, harvest_probe)
            self.push_restore()
            # After the skip, last_vector is the inverse probe row.
            self.push_stretch(build_inverse, harvest_decode)
            self.push_restore()
            return

        self.push_stretch(build, harvest)

    def _decode_exchange(
        self, bits, res0, j0, res1, j1, on_decoded: Optional[Callable]
    ) -> None:
        """Decode one exchange from the two probe rounds' coll columns
        (round ``j0`` of ``res0`` is the bit probe, round ``j1`` of
        ``res1`` the inverse probe) and publish the result columns."""
        xp = self.xp
        c0 = res0.coll_ints(j0)
        c1 = res1.coll_ints(j1)
        if (
            res0.np is not None
            and res1.np is not None
            and c0 is not None
            and c1 is not None
            and res0.scale == self._scale
            and res1.scale == self._scale
        ):
            one = bits == 1
            coll_r = xp.where(one, c0, c1)
            coll_l = xp.where(one, c1, c0)
            appr_r = coll_r == self._grn
            appr_l = coll_l == self._gln
            r_toward0 = xp.where(one, appr_r, ~appr_r)
            l_toward0 = xp.where(one, ~appr_l, appr_l)
            from_right = (
                r_toward0 == ~self._same_r_arr
            ).astype(xp.int64)
            from_left = (
                l_toward0 == self._same_l_arr
            ).astype(xp.int64)
            from_right_col = from_right.tolist()
            from_left_col = from_left.tolist()
        else:
            # Span executed round by round (cross-validation) or
            # under a foreign scale: exact per-agent decode.
            colls = (res0.colls(j0), res1.colls(j1))
            from_right_col, from_left_col = self._decode_scalar(
                bits.tolist(), colls
            )
            from_right = xp.asarray(from_right_col, dtype=xp.int64)
            from_left = xp.asarray(from_left_col, dtype=xp.int64)
        population = self.population
        population.set_column(KEY_FROM_RIGHT, from_right_col)
        population.set_column(KEY_FROM_LEFT, from_left_col)
        if on_decoded is not None:
            on_decoded(from_right, from_left)

    # -- one (present, value) frame, 4 * (width + 1) rounds -------------

    def push_frame(
        self,
        frames_provider: Callable[[], Sequence[Optional[int]]],
        width: int,
        on_frame: Optional[Callable[[], None]] = None,
    ) -> None:
        """Plan one frame exchange.  ``frames_provider`` is evaluated at
        the first round's decide time (relay registers may have been
        rewritten by an earlier step of the same plan); decoded frames
        land in the ``comm.frame_from_right`` / ``comm.frame_from_left``
        columns, then ``on_frame()`` fires.  On the vectorised plan the
        provider may return an int64 array with ``-1`` as "no value"."""
        if self.xp is not None:
            self._push_frame_fused(frames_provider, width, on_frame)
        else:
            self._push_frame_scalar(frames_provider, width, on_frame)

    def _push_frame_scalar(
        self,
        frames_provider: Callable[[], Sequence[Optional[int]]],
        width: int,
        on_frame: Optional[Callable[[], None]],
    ) -> None:
        ctx: dict = {}

        def frame_bits(slot: int) -> Callable[[], List[int]]:
            def bits() -> List[int]:
                if slot == 0:
                    frames = list(frames_provider())
                    for v in frames:
                        if v is not None and not 0 <= v < (1 << width):
                            raise ProtocolError(
                                f"value {v} does not fit in {width} bits"
                            )
                    ctx["frames"] = frames
                return [
                    _bit_slice(v, slot) for v in ctx["frames"]
                ]

            return bits

        def fold(slot: int):
            def on_decoded(
                from_right: List[int], from_left: List[int]
            ) -> None:
                if slot == 0:
                    ctx["present"] = (
                        [bool(b) for b in from_right],
                        [bool(b) for b in from_left],
                    )
                    ctx["collected"] = ([0] * self.n, [0] * self.n)
                else:
                    for side, decoded in enumerate(
                        (from_right, from_left)
                    ):
                        collected = ctx["collected"][side]
                        for i, b in enumerate(decoded):
                            if b:
                                collected[i] |= 1 << (slot - 1)
                if slot == width:
                    population = self.population
                    for side, key in (
                        (0, KEY_FRAME_FROM_RIGHT),
                        (1, KEY_FRAME_FROM_LEFT),
                    ):
                        present = ctx["present"][side]
                        collected = ctx["collected"][side]
                        population.set_column(
                            key,
                            [
                                collected[i] if present[i] else None
                                for i in range(self.n)
                            ],
                        )
                    if on_frame is not None:
                        on_frame()

            return on_decoded

        for slot in range(width + 1):
            self.push_bit_exchange(frame_bits(slot), fold(slot))

    def _encode_frames(self, frames, width: int):
        """Normalise a frame column to the int64 ``-1 = None`` form,
        with the legacy range validation for plain sequences."""
        xp = self.xp
        if hasattr(frames, "dtype"):
            bad = (frames >= (1 << width)) | (
                (frames < 0) & (frames != -1)
            )
            if bool(bad.any()):
                v = int(frames[bad][0])
                raise ProtocolError(
                    f"value {v} does not fit in {width} bits"
                )
            return frames
        encoded = []
        for v in frames:
            if v is None:
                encoded.append(-1)
            else:
                if not 0 <= v < (1 << width):
                    raise ProtocolError(
                        f"value {v} does not fit in {width} bits"
                    )
                encoded.append(int(v))
        return xp.asarray(encoded, dtype=xp.int64)

    def _push_frame_fused(
        self,
        frames_provider: Callable,
        width: int,
        on_frame: Optional[Callable[[], None]],
    ) -> None:
        xp = self.xp
        n = self.n
        ctx: dict = {}

        def frame_bits(slot: int):
            def bits():
                if slot == 0:
                    ctx["frames"] = self._encode_frames(
                        frames_provider(), width
                    )
                frames = ctx["frames"]
                if slot == 0:
                    return (frames >= 0).astype(xp.int8)
                sliced = (frames >> (slot - 1)) & 1
                return xp.where(frames >= 0, sliced, 0).astype(xp.int8)

            return bits

        def fold(slot: int):
            def on_decoded(from_right, from_left) -> None:
                if slot == 0:
                    ctx["present"] = (
                        from_right.astype(bool),
                        from_left.astype(bool),
                    )
                    ctx["collected"] = (
                        xp.zeros(n, dtype=xp.int64),
                        xp.zeros(n, dtype=xp.int64),
                    )
                else:
                    shift = slot - 1
                    ctx["collected"][0][:] |= from_right << shift
                    ctx["collected"][1][:] |= from_left << shift
                if slot == width:
                    present = ctx.pop("present")
                    collected = ctx.pop("collected")
                    frame_r = xp.where(present[0], collected[0], -1)
                    frame_l = xp.where(present[1], collected[1], -1)
                    self._frame_right_arr = frame_r
                    self._frame_left_arr = frame_l
                    population = self.population
                    population.set_column(
                        KEY_FRAME_FROM_RIGHT,
                        [v if v >= 0 else None for v in frame_r.tolist()],
                    )
                    population.set_column(
                        KEY_FRAME_FROM_LEFT,
                        [v if v >= 0 else None for v in frame_l.tolist()],
                    )
                    if on_frame is not None:
                        on_frame()

            return on_decoded

        for slot in range(width + 1):
            self.push_bit_exchange(frame_bits(slot), fold(slot))


class RelayFloodPolicy(BitExchangePolicy):
    """Cor 34: flood source values up to ``distance`` hops both ways.

    ``initial_values[slot]`` is the slot's announced value or ``None``;
    after :meth:`run`, each slot's ``comm.received`` column cell lists
    ``(side, hop, value)`` exactly as the legacy driver records them.

    On the vectorised plan the relay registers (``out_right`` /
    ``out_left``) are int64 arrays with ``-1`` for "nothing to relay",
    the register shuffle is four ``where`` selects per hop, and the
    per-agent ``comm.received`` cells are assembled once in
    :meth:`finalize` from the recorded per-hop columns.
    """

    def __init__(
        self,
        sched: Scheduler,
        initial_values: Sequence[Optional[int]],
        distance: int,
        width: int,
    ) -> None:
        super().__init__(sched)
        n = self.n
        values = list(initial_values)
        if len(values) != n:
            raise ProtocolError(
                f"{len(values)} initial values for {n} agents"
            )
        self.width = width
        self.population.fill_with(KEY_RECEIVED, list)
        xp = self.xp
        if xp is not None:
            encoded = xp.asarray(
                [-1 if v is None else int(v) for v in values],
                dtype=xp.int64,
            )
            self.out_right = encoded.copy()
            self.out_left = encoded.copy()
            self._incoming_right = xp.full(n, -1, dtype=xp.int64)
            self._incoming_left = xp.full(n, -1, dtype=xp.int64)
            self._hop_records: List[tuple] = []
            for hop in range(1, distance + 1):
                self.push_frame(
                    lambda: self.out_right, width, self._receive_a_fused
                )
                self.push_frame(
                    lambda: self.out_left,
                    width,
                    lambda hop=hop: self._receive_b_fused(hop),
                )
            return
        self.out_right: List[Optional[int]] = list(values)
        self.out_left: List[Optional[int]] = list(values)
        self._incoming_right: List[Optional[int]] = [None] * n
        self._incoming_left: List[Optional[int]] = [None] * n
        for hop in range(1, distance + 1):
            # Slot A: everyone relays its rightward stream register.
            self.push_frame(
                lambda: self.out_right, width, self._receive_a
            )
            # Slot B: the leftward stream, then the register shuffle.
            self.push_frame(
                lambda: self.out_left,
                width,
                lambda hop=hop: self._receive_b_and_settle(hop),
            )

    def _receive_a(self) -> None:
        population = self.population
        from_left = population.column(KEY_FRAME_FROM_LEFT)
        from_right = population.column(KEY_FRAME_FROM_RIGHT)
        for i in range(self.n):
            # My left neighbor's rightward stream is destined to me iff
            # our chiralities agree; a flipped right neighbor's
            # "rightward" stream also comes to me.
            if self._same_left[i]:
                self._incoming_right[i] = from_left[i]
            if not self._same_right[i]:
                self._incoming_left[i] = from_right[i]

    def _receive_b_and_settle(self, hop: int) -> None:
        population = self.population
        from_left = population.column(KEY_FRAME_FROM_LEFT)
        from_right = population.column(KEY_FRAME_FROM_RIGHT)
        received = population.column(KEY_RECEIVED)
        for i in range(self.n):
            if not self._same_left[i]:
                self._incoming_right[i] = from_left[i]
            if self._same_right[i]:
                self._incoming_left[i] = from_right[i]
        for i in range(self.n):
            inc_from_left = self._incoming_right[i]
            inc_from_right = self._incoming_left[i]
            if inc_from_left is not None:
                received[i].append(("left", hop, inc_from_left))
            if inc_from_right is not None:
                received[i].append(("right", hop, inc_from_right))
            self.out_right[i] = inc_from_left
            self.out_left[i] = inc_from_right
            self._incoming_right[i] = None
            self._incoming_left[i] = None

    def _receive_a_fused(self) -> None:
        xp = self.xp
        self._incoming_right = xp.where(
            self._same_l_arr, self._frame_left_arr, self._incoming_right
        )
        self._incoming_left = xp.where(
            ~self._same_r_arr, self._frame_right_arr, self._incoming_left
        )

    def _receive_b_fused(self, hop: int) -> None:
        xp = self.xp
        inc_from_left = xp.where(
            ~self._same_l_arr, self._frame_left_arr, self._incoming_right
        )
        inc_from_right = xp.where(
            self._same_r_arr, self._frame_right_arr, self._incoming_left
        )
        self._hop_records.append((hop, inc_from_left, inc_from_right))
        self.out_right = inc_from_left
        self.out_left = inc_from_right
        n = self.n
        self._incoming_right = xp.full(n, -1, dtype=xp.int64)
        self._incoming_left = xp.full(n, -1, dtype=xp.int64)

    def finalize(self) -> None:
        if self.xp is None:
            return
        # One pass over the recorded per-hop columns builds the exact
        # per-agent (side, hop, value) cells the legacy driver appends
        # round by round.
        received = self.population.column(KEY_RECEIVED)
        for hop, inc_from_left, inc_from_right in self._hop_records:
            lefts = inc_from_left.tolist()
            rights = inc_from_right.tolist()
            for i in range(self.n):  # lint: allow[per-agent-loop] -- one-pass finalize assembling ragged (side, hop, value) cells; runs once after the flood, not per round
                v = lefts[i]
                if v >= 0:
                    received[i].append(("left", hop, v))
                v = rights[i]
                if v >= 0:
                    received[i].append(("right", hop, v))


def exchange_bits(sched: Scheduler, bits: Sequence[int]) -> None:
    """Native twin of :func:`repro.protocols.bitcomm.exchange_bits`:
    every slot transmits ``bits[slot]`` to both neighbors (4 rounds)."""
    policy = BitExchangePolicy(sched)
    bits = list(bits)
    policy.push_bit_exchange(lambda: bits)
    policy.run()


def exchange_frame(
    sched: Scheduler, values: Sequence[Optional[int]], width: int
) -> None:
    """Native twin of :func:`repro.protocols.bitcomm.exchange_frame`."""
    policy = BitExchangePolicy(sched)
    values = list(values)
    policy.push_frame(lambda: values, width)
    policy.run()


def relay_flood(
    sched: Scheduler,
    initial_values: Sequence[Optional[int]],
    distance: int,
    width: int,
) -> None:
    """Native twin of :func:`repro.protocols.bitcomm.relay_flood`."""
    RelayFloodPolicy(sched, initial_values, distance, width).run()
