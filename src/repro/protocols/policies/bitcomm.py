"""Native collision-channel communication (vectorised twin of
:mod:`repro.protocols.bitcomm`).

The 1-bit neighbor channel (Prop 31) is four rounds -- probe, restore,
inverse probe, restore -- whose vectors derive from the transmitted bit
column; frames (Cor 32) stack ``width + 1`` bit exchanges; the sparsed
relay flood (Cor 34) stacks two frames per hop with the
chirality-corrected register shuffle between them.
:class:`RelayFloodPolicy` plans the *entire* flood as one policy --
``8 * (width + 1) * distance`` rounds -- whose vectors are evaluated
lazily from the relay registers, so the whole dissemination runs with
one ``decide`` per round and zero per-agent dispatch.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.bitcomm import (
    KEY_FROM_LEFT,
    KEY_FROM_RIGHT,
    KEY_RECEIVED,
)
from repro.protocols.neighbor_discovery import (
    KEY_GAP_LEFT,
    KEY_GAP_RIGHT,
    KEY_SAME_LEFT,
    KEY_SAME_RIGHT,
)
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    REPEAT,
    RESTORE,
    RIGHT,
)
from repro.types import Model, Observation

KEY_FRAME_FROM_RIGHT = "comm.frame_from_right"
KEY_FRAME_FROM_LEFT = "comm.frame_from_left"


def _bit_slice(value: Optional[int], slot: int) -> int:
    """(present, value) frame encoding: slot 0 is the present flag."""
    if slot == 0:
        return 1 if value is not None else 0
    if value is None:
        return 0
    return (value >> (slot - 1)) & 1


class BitExchangePolicy(PhasePolicy):
    """Plumbing shared by all collision-channel policies: plans bit
    exchanges and (present, value) frames over the neighbor channel."""

    def __init__(self, sched: Scheduler) -> None:
        if sched.model is not Model.PERCEPTIVE:
            raise ProtocolError("bit exchange requires the perceptive model")
        super().__init__(sched)
        population = self.population
        if not population.all_set(KEY_GAP_RIGHT):
            raise ProtocolError(
                "bit communication requires neighbor discovery results"
            )
        self._gap_right = population.column(KEY_GAP_RIGHT)
        self._gap_left = population.column(KEY_GAP_LEFT)
        self._same_right = population.column(KEY_SAME_RIGHT)
        self._same_left = population.column(KEY_SAME_LEFT)

    # -- one bit, both neighbors, 4 rounds ------------------------------

    def push_bit_exchange(
        self,
        bits_provider: Callable[[], Sequence[int]],
        on_decoded: Optional[Callable[[List[int], List[int]], None]] = None,
    ) -> None:
        """Plan one bit exchange: every slot transmits
        ``bits_provider()[slot]`` to both neighbors.  Decoded bits land
        in the ``comm.bit_from_right`` / ``comm.bit_from_left`` columns
        and are passed to ``on_decoded(from_right, from_left)``."""
        ctx: dict = {}

        def probe_vector():
            bits = list(bits_provider())
            for b in bits:
                if b not in (0, 1):
                    raise ProtocolError(f"bit_of returned non-bit {b!r}")
            ctx["bits"] = bits
            return [RIGHT if b == 1 else LEFT for b in bits]

        def harvest_probe0(obs: Sequence[Observation]) -> None:
            ctx["coll0"] = [o.coll for o in obs]

        def harvest_probe1(obs: Sequence[Observation]) -> None:
            ctx["coll1"] = [o.coll for o in obs]

        def decode(_obs: Sequence[Observation]) -> None:
            bits = ctx.pop("bits")
            colls = (ctx.pop("coll0"), ctx.pop("coll1"))
            from_right: List[int] = []
            from_left: List[int] = []
            for i in range(self.n):
                # Index of the probe in which slot i moved own-RIGHT.
                right_probe = 0 if bits[i] == 1 else 1
                left_probe = 1 - right_probe
                approached_r = (
                    colls[right_probe][i] == self._gap_right[i] / 2
                )
                approached_l = (
                    colls[left_probe][i] == self._gap_left[i] / 2
                )
                r_toward_in_probe0 = (
                    approached_r if right_probe == 0 else not approached_r
                )
                l_toward_in_probe0 = (
                    approached_l if left_probe == 0 else not approached_l
                )
                from_right.append(
                    int(r_toward_in_probe0 == (not self._same_right[i]))
                )
                from_left.append(
                    int(l_toward_in_probe0 == self._same_left[i])
                )
            population = self.population
            population.set_column(KEY_FROM_RIGHT, from_right)
            population.set_column(KEY_FROM_LEFT, from_left)
            if on_decoded is not None:
                on_decoded(from_right, from_left)

        self.push(probe_vector, harvest_probe0)
        self.push(RESTORE)
        # After the restore, last_vector is already the inverse probe.
        self.push(REPEAT, harvest_probe1)
        self.push(RESTORE, decode)

    # -- one (present, value) frame, 4 * (width + 1) rounds -------------

    def push_frame(
        self,
        frames_provider: Callable[[], Sequence[Optional[int]]],
        width: int,
        on_frame: Optional[Callable[[], None]] = None,
    ) -> None:
        """Plan one frame exchange.  ``frames_provider`` is evaluated at
        the first round's decide time (relay registers may have been
        rewritten by an earlier step of the same plan); decoded frames
        land in the ``comm.frame_from_right`` / ``comm.frame_from_left``
        columns, then ``on_frame()`` fires."""
        ctx: dict = {}

        def frame_bits(slot: int) -> Callable[[], List[int]]:
            def bits() -> List[int]:
                if slot == 0:
                    frames = list(frames_provider())
                    for v in frames:
                        if v is not None and not 0 <= v < (1 << width):
                            raise ProtocolError(
                                f"value {v} does not fit in {width} bits"
                            )
                    ctx["frames"] = frames
                return [
                    _bit_slice(v, slot) for v in ctx["frames"]
                ]

            return bits

        def fold(slot: int):
            def on_decoded(
                from_right: List[int], from_left: List[int]
            ) -> None:
                if slot == 0:
                    ctx["present"] = (
                        [bool(b) for b in from_right],
                        [bool(b) for b in from_left],
                    )
                    ctx["collected"] = ([0] * self.n, [0] * self.n)
                else:
                    for side, decoded in enumerate(
                        (from_right, from_left)
                    ):
                        collected = ctx["collected"][side]
                        for i, b in enumerate(decoded):
                            if b:
                                collected[i] |= 1 << (slot - 1)
                if slot == width:
                    population = self.population
                    for side, key in (
                        (0, KEY_FRAME_FROM_RIGHT),
                        (1, KEY_FRAME_FROM_LEFT),
                    ):
                        present = ctx["present"][side]
                        collected = ctx["collected"][side]
                        population.set_column(
                            key,
                            [
                                collected[i] if present[i] else None
                                for i in range(self.n)
                            ],
                        )
                    if on_frame is not None:
                        on_frame()

            return on_decoded

        for slot in range(width + 1):
            self.push_bit_exchange(frame_bits(slot), fold(slot))


class RelayFloodPolicy(BitExchangePolicy):
    """Cor 34: flood source values up to ``distance`` hops both ways.

    ``initial_values[slot]`` is the slot's announced value or ``None``;
    after :meth:`run`, each slot's ``comm.received`` column cell lists
    ``(side, hop, value)`` exactly as the legacy driver records them.
    """

    def __init__(
        self,
        sched: Scheduler,
        initial_values: Sequence[Optional[int]],
        distance: int,
        width: int,
    ) -> None:
        super().__init__(sched)
        n = self.n
        values = list(initial_values)
        if len(values) != n:
            raise ProtocolError(
                f"{len(values)} initial values for {n} agents"
            )
        self.width = width
        self.out_right: List[Optional[int]] = list(values)
        self.out_left: List[Optional[int]] = list(values)
        self._incoming_right: List[Optional[int]] = [None] * n
        self._incoming_left: List[Optional[int]] = [None] * n
        self.population.fill_with(KEY_RECEIVED, list)
        for hop in range(1, distance + 1):
            # Slot A: everyone relays its rightward stream register.
            self.push_frame(
                lambda: self.out_right, width, self._receive_a
            )
            # Slot B: the leftward stream, then the register shuffle.
            self.push_frame(
                lambda: self.out_left,
                width,
                lambda hop=hop: self._receive_b_and_settle(hop),
            )

    def _receive_a(self) -> None:
        population = self.population
        from_left = population.column(KEY_FRAME_FROM_LEFT)
        from_right = population.column(KEY_FRAME_FROM_RIGHT)
        for i in range(self.n):
            # My left neighbor's rightward stream is destined to me iff
            # our chiralities agree; a flipped right neighbor's
            # "rightward" stream also comes to me.
            if self._same_left[i]:
                self._incoming_right[i] = from_left[i]
            if not self._same_right[i]:
                self._incoming_left[i] = from_right[i]

    def _receive_b_and_settle(self, hop: int) -> None:
        population = self.population
        from_left = population.column(KEY_FRAME_FROM_LEFT)
        from_right = population.column(KEY_FRAME_FROM_RIGHT)
        received = population.column(KEY_RECEIVED)
        for i in range(self.n):
            if not self._same_left[i]:
                self._incoming_right[i] = from_left[i]
            if self._same_right[i]:
                self._incoming_left[i] = from_right[i]
        for i in range(self.n):
            inc_from_left = self._incoming_right[i]
            inc_from_right = self._incoming_left[i]
            if inc_from_left is not None:
                received[i].append(("left", hop, inc_from_left))
            if inc_from_right is not None:
                received[i].append(("right", hop, inc_from_right))
            self.out_right[i] = inc_from_left
            self.out_left[i] = inc_from_right
            self._incoming_right[i] = None
            self._incoming_left[i] = None


def exchange_bits(sched: Scheduler, bits: Sequence[int]) -> None:
    """Native twin of :func:`repro.protocols.bitcomm.exchange_bits`:
    every slot transmits ``bits[slot]`` to both neighbors (4 rounds)."""
    policy = BitExchangePolicy(sched)
    bits = list(bits)
    policy.push_bit_exchange(lambda: bits)
    policy.run()


def exchange_frame(
    sched: Scheduler, values: Sequence[Optional[int]], width: int
) -> None:
    """Native twin of :func:`repro.protocols.bitcomm.exchange_frame`."""
    policy = BitExchangePolicy(sched)
    values = list(values)
    policy.push_frame(lambda: values, width)
    policy.run()


def relay_flood(
    sched: Scheduler,
    initial_values: Sequence[Optional[int]],
    distance: int,
    width: int,
) -> None:
    """Native twin of :func:`repro.protocols.bitcomm.relay_flood`."""
    RelayFloodPolicy(sched, initial_values, distance, width).run()
