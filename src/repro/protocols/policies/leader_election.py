"""Native leader election (vectorised twin of
:mod:`repro.protocols.leader_election`).

:class:`LeaderElectionPolicy` is Algorithm 2 as one whole-population
policy: per ID bit, a candidate probe (2 rounds, data-dependent vector
from the candidate state) whose restore-step harvest refines the
candidate set.  The Lemma 13 emptiness-bisection route reuses the
native emptiness test.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.agent import id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_LEADER, KEY_NMOVE_DIR
from repro.protocols.leader_election import _KEY_SAW_NONZERO
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    RESTORE,
    RIGHT,
    aligned_vector,
    require_column,
)
from repro.protocols.policies.emptiness import emptiness_test
from repro.types import Observation


class LeaderElectionPolicy(PhasePolicy):
    """Algorithm 2: refine the candidate set one ID bit at a time.

    Preconditions: ``nmove.dir`` and ``frame.flip`` columns are set.
    After :meth:`run`, exactly one slot holds ``leader.is_leader`` and
    :attr:`leader_id` is its ID.  Costs 2 rounds per ID bit, exactly
    like the legacy driver.
    """

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        population = self.population
        precondition = (
            "Algorithm 2 requires nontrivial move + direction agreement"
        )
        nmove = require_column(population, KEY_NMOVE_DIR, precondition)
        flips = require_column(population, KEY_FRAME_FLIP, precondition)
        self._flips = flips
        # Candidates: agents that moved common-RIGHT in the nontrivial
        # round (aligned_direction(view, RIGHT) is nmove.dir).
        self._candidates = [
            (LEFT if flip else RIGHT) is direction
            for flip, direction in zip(flips, nmove)
        ]
        self.leader_id: Optional[int] = None
        for bit in range(id_bits(population.id_bound)):
            self.push(
                lambda bit=bit: self._probe_vector(bit),
                self._harvest_probe,
            )
            self.push(
                RESTORE, lambda obs, bit=bit: self._refine(bit)
            )

    def _probe_vector(self, bit: int):
        """Probe RI(X0), X0 = candidates whose ID bit ``bit`` is 0:
        members move common-RIGHT, everyone else common-LEFT."""
        ids = self.population.ids
        commons = [
            RIGHT
            if candidate and ((ids[i] >> bit) & 1) == 0
            else LEFT
            for i, candidate in enumerate(self._candidates)
        ]
        return aligned_vector(self._flips, commons)

    def _harvest_probe(self, obs: Sequence[Observation]) -> None:
        nonzeros = [o.dist != 0 for o in obs]
        self.population.set_column(_KEY_SAW_NONZERO, nonzeros)
        self._keep_zero_half = nonzeros[0]

    def _refine(self, bit: int) -> None:
        ids = self.population.ids
        keep_zero = self._keep_zero_half
        self._candidates = [
            candidate
            and (((ids[i] >> bit) & 1) == 0) == keep_zero
            for i, candidate in enumerate(self._candidates)
        ]

    def finalize(self) -> None:
        self.population.set_column(KEY_LEADER, list(self._candidates))
        self.leader_id = unique_leader_id(self.sched)


def unique_leader_id(sched: Scheduler) -> int:
    """The single elected leader's ID (raises unless exactly one)."""
    population = sched.population
    leaders_column = population.get_column(KEY_LEADER)
    leaders: List[int] = (
        []
        if leaders_column is None
        else [
            population.ids[i]
            for i, cell in enumerate(leaders_column)
            if cell is True
        ]
    )
    if len(leaders) != 1:
        raise ProtocolError(
            f"leader election produced {len(leaders)} leaders: {leaders}"
        )
    return leaders[0]


def elect_leader_with_nontrivial_move(sched: Scheduler) -> int:
    """Native twin of Algorithm 2 (see :class:`LeaderElectionPolicy`)."""
    return LeaderElectionPolicy(sched).run().leader_id


def elect_leader_common_sense(sched: Scheduler) -> int:
    """Native twin of Lemma 13: binary-search the ID space with
    emptiness tests; the smallest present ID leads."""
    population = sched.population
    lo, hi = 1, population.id_bound
    while lo < hi:
        mid = (lo + hi) // 2
        if emptiness_test(sched, range(lo, mid + 1)):
            lo = mid + 1
        else:
            hi = mid
    population.set_column(
        KEY_LEADER, [agent_id == lo for agent_id in population.ids]
    )
    return unique_leader_id(sched)
