"""Native Distances / Algorithm 6 (vectorised twin of
:mod:`repro.protocols.distances`).

The Convolution/Pivot *directions* are public (one pass over the label
column per round), but the phase is data-dependent in its ending: every
round's ``dist()``/``coll()`` observations feed each agent's equation
system, and the protocol is done exactly when every system reaches full
rank -- which Lemma 41 guarantees on the last Pivot round.  The whole
n/2 + 3 round schedule is therefore planned as one
:class:`~repro.ring.stretch.SpeculativeStretch`: the stop predicate
harvests round ``j``'s observation columns into the equation systems
and fires once all of them are full rank.  On a stretch-capable backend
the raw integer dist/coll columns feed straight into
:class:`~repro.analysis.int_equations.IntEquationSystem` rows over the
shared denominator -- no ``Fraction(v, scale)`` per cell, and the
elimination itself is fraction-free (the solutions still materialise
as exact Fractions, identical to the spec engine's); on scalar
backends the predicate interleaves with per-round execution on the
exact-`Fraction` :class:`~repro.analysis.equations.EquationSystem`,
reproducing the legacy loop bit for bit.  Either way the firing round
is the schedule's planned end, so the native driver stays bit-exact
with the callback reference.  ``engine="fraction"`` forces the spec
engine everywhere (the benchmark's baseline side); ``engine="cross"``
runs both engines in lockstep and asserts identical rank trajectories
and solutions.

Reuses the legacy module's pure schedule helpers
(:func:`~repro.protocols.distances.convolution_direction`,
:func:`~repro.protocols.distances.pivot_direction`,
:func:`~repro.protocols.distances.coll_window`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.analysis.equations import Equation, EquationSystem
from repro.analysis.int_equations import IntEquation, IntEquationSystem
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LABEL,
    KEY_LD_GAPS,
    KEY_RING_SIZE,
)
from repro.protocols.distances import (
    coll_window,
    convolution_direction,
    pivot_direction,
)
from repro.protocols.policies.base import (
    LEFT,
    RIGHT,
    aligned_vector,
)
from repro.ring.stretch import SpeculativeStretch
from repro.types import Model

#: One schedule entry: (moves_right, rho, rotation) exactly as the
#: legacy ``_run_structured_round`` consumes them.
_ScheduleEntry = Tuple[object, int, int]


def _schedule(n: int) -> List[_ScheduleEntry]:
    """The Convolution/Pivot schedule (n/2 rounds + 3 pivots)."""
    entries: List[_ScheduleEntry] = []
    for i in range(1, n // 2 + 1):
        exception = n - 2 * (i - 1)
        rho = (2 * (i - 1)) % n
        entries.append((convolution_direction(n, exception), rho, 2))
    # Cumulative rotation is now n = 0 (mod n): initial configuration.
    for j in (n, n - 1, n - 2):
        entries.append((pivot_direction(n, j), 0, 0))
    return entries


def _round_columns(result, j: int, flips, cache: Dict[int, Fraction]):
    """Round ``j``'s common-frame dists and doubled colls as Fractions.

    Returns ``(dists, colls2)`` where ``colls2[slot]`` is ``2 * coll``
    (the Prop 4/37 window right-hand side) or None.  Raw integer
    columns go through one interning cache; the materialised-round
    fallback mirrors the legacy per-agent arithmetic bit for bit.
    """
    ints = result.dist_ints(j)
    if ints is not None:
        scale = result.scale
        raw = ints.tolist() if result.np is not None else list(ints)
        dists: List[Fraction] = []
        for flip, v in zip(flips, raw):
            if flip and v:
                v = scale - v
            value = cache.get(v)
            if value is None:
                value = cache[v] = Fraction(v, scale)
            dists.append(value)
        craw = result.coll_ints(j)
        if craw is None:
            colls2: List[Optional[Fraction]] = [None] * len(raw)
        else:
            craw = craw.tolist() if result.np is not None else list(craw)
            colls2 = []
            for c in craw:
                if c < 0:
                    colls2.append(None)
                    continue
                # coll is over 2*scale, so 2*coll is c over scale.
                value = cache.get(c)
                if value is None:
                    value = cache[c] = Fraction(c, scale)
                colls2.append(value)
        return dists, colls2
    obs = result.observations(j)
    dists = [
        (Fraction(1) - o.dist if o.dist != 0 else Fraction(0))
        if flip
        else o.dist
        for flip, o in zip(flips, obs)
    ]
    colls2 = [None if o.coll is None else 2 * o.coll for o in obs]
    return dists, colls2


def _int_round_columns(result, j: int, flips, flip_mask):
    """Round ``j``'s common-frame dist numerators (over ``scale``) and
    doubled-coll numerators (over ``scale``; negative = no collision)
    as plain ints -- the :class:`IntEquationSystem` right-hand sides.

    The integer-column read is the hot path (one vectorised ``where``
    under numpy); a materialised round inside an integer-mode run is
    recovered from the interned Fractions' numerator/denominator
    attributes -- integer arithmetic only, exact because every
    observation's denominator divides the shared ``scale``.
    """
    scale = result.scale
    ints = result.dist_ints(j)
    if ints is not None:
        xp = result.np
        if xp is not None:
            dists = xp.where(
                flip_mask & (ints != 0), scale - ints, ints
            ).tolist()
        else:
            dists = [
                scale - v if flip and v else v
                for flip, v in zip(flips, ints)
            ]
        craw = result.coll_ints(j)
        if craw is None:
            colls2 = None
        else:
            colls2 = craw.tolist() if xp is not None else list(craw)
        return dists, colls2
    obs = result.observations(j)
    dists = []
    for flip, o in zip(flips, obs):
        d = o.dist
        v = d.numerator * (scale // d.denominator)
        if flip and v:
            v = scale - v
        dists.append(v)
    # coll is over 2 * scale, so 2 * coll's numerator over scale is
    # coll's numerator rescaled to the doubled grid.
    colls2 = [
        -1
        if o.coll is None
        else o.coll.numerator * ((2 * scale) // o.coll.denominator)
        for o in obs
    ]
    return dists, colls2


def discover_distances(
    sched: Scheduler, engine: Optional[str] = None
) -> int:
    """Native twin of Algorithm 6.  Returns the rounds used (n/2 + 3);
    postcondition: every agent's gap vector under ``ld.gaps``.

    ``engine`` picks the equation backend: ``None``/``"int"`` harvest
    into the fraction-free :class:`IntEquationSystem` whenever the
    stretch outcome carries integer columns (falling back to the spec
    engine on scale-less materialised runs); ``"cross"`` does the same
    but shadows every system on a live :class:`EquationSystem` and
    asserts lockstep agreement; ``"fraction"`` forces the
    exact-`Fraction` spec everywhere.
    """
    if engine not in (None, "int", "cross", "fraction"):
        raise ProtocolError(f"unknown equation engine {engine!r}")
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("Distances requires the perceptive model")
    population = sched.population
    for key in (KEY_LABEL, KEY_RING_SIZE, KEY_FRAME_FLIP):
        if not population.all_set(key):
            raise ProtocolError(f"Distances requires {key} to be set")
    n = population.column(KEY_RING_SIZE)[0]
    if n % 2 != 0:
        raise ProtocolError(
            "Distances requires even n; use the rotation sweeps for odd n"
        )

    labels = population.column(KEY_LABEL)
    flips = population.column(KEY_FRAME_FLIP)
    schedule = _schedule(n)
    rows = [
        aligned_vector(
            flips,
            [RIGHT if moves_right(label - 1) else LEFT for label in labels],
        )
        for moves_right, _rho, _rotation in schedule
    ]
    # Structural coll() windows, precomputed per (round, slot) -- the
    # schedule is public, only the observation values are not.
    windows = [
        [
            coll_window(n, moves_right, labels[slot] - 1, rho)
            for slot in range(population.n)
        ]
        for moves_right, rho, _rotation in schedule
    ]
    cache: Dict[int, Fraction] = {}
    one = Fraction(1)  # lint: allow[fraction-hot-path] -- one interned constant for the Fraction-spec engine, built once per discovery
    cross_check = engine == "cross" or bool(
        getattr(sched.simulator, "cross_validate", False)
    )
    systems: List[object] = []
    mode: Dict[str, object] = {"ints": None, "mask": None}

    def stop(result, j: int) -> bool:
        """Harvest round ``j``'s equations; fire at full rank."""
        use_ints = mode["ints"]
        if use_ints is None:
            # First harvested round decides the engine: the stretch
            # outcome either carries the shared denominator (integer
            # columns -> fraction-free engine) or it does not (scalar
            # materialised rounds -> the Fraction spec, as before).
            use_ints = (
                engine != "fraction" and result.scale is not None
            )
            mode["ints"] = use_ints
            if use_ints:
                scale = result.scale
                systems.extend(  # lint: allow[per-agent-loop] -- one-time O(N) system construction on the first harvested round, not per-round work
                    IntEquationSystem(n, scale, cross_check=cross_check)
                    for _ in range(population.n)
                )
                if result.np is not None:
                    mask = result.np.asarray(
                        [bool(f) for f in flips]
                    )
                    mode["mask"] = mask
            else:
                systems.extend(  # lint: allow[per-agent-loop] -- one-time O(N) system construction on the first harvested round, not per-round work
                    EquationSystem(n) for _ in range(population.n)
                )
        _moves_right, rho, rotation = schedule[j]
        round_windows = windows[j]
        done = True
        if use_ints:
            xp = result.np
            dists, colls2 = _int_round_columns(
                result, j, flips, mode["mask"]
            )
            for slot in range(population.n):  # lint: allow[per-agent-loop] -- per-slot rank bookkeeping over already-columnar integer rows; each iteration is O(1) equation appends
                label0 = labels[slot] - 1
                system = systems[slot]
                if rotation % n != 0:
                    system.add(
                        IntEquation.window(
                            n, (label0 + rho) % n, rotation,
                            dists[slot], xp=xp,
                        )
                    )
                window = round_windows[slot]
                if (
                    window is not None
                    and colls2 is not None
                    and colls2[slot] >= 0
                ):
                    start, hops = window
                    system.add(
                        IntEquation.window(
                            n, start, hops, colls2[slot], xp=xp
                        )
                    )
                if done and not system.full_rank:
                    done = False
            return done
        dists, colls2 = _round_columns(result, j, flips, cache)
        for slot in range(population.n):  # lint: allow[per-agent-loop] -- Fraction-spec fallback engine: per-slot appends against the executable spec, kept scalar on purpose
            label0 = labels[slot] - 1
            system = systems[slot]
            if rotation % n != 0:
                system.add(
                    Equation.window(
                        n, (label0 + rho) % n, rotation, one, dists[slot]
                    )
                )
            window = round_windows[slot]
            if window is not None and colls2[slot] is not None:
                start, hops = window
                system.add(
                    Equation.window(n, start, hops, one, colls2[slot])
                )
            if done and not system.full_rank:
                done = False
        return done

    before = sched.rounds
    sched.run_stretch(
        SpeculativeStretch(pairs=[(row, 1) for row in rows], stop=stop)
    )

    if not systems:
        raise ProtocolError("the Convolution/Pivot schedule ran no rounds")
    gaps_column: List[List[Fraction]] = []
    for slot, system in enumerate(systems):
        if not system.full_rank:
            raise ProtocolError(
                f"agent {population.ids[slot]} ended with rank "
                f"{system.rank} < {n}; the Convolution/Pivot schedule "
                "should reach full rank"
            )
        x = system.solve()
        label0 = labels[slot] - 1
        gaps_column.append([x[(label0 + k) % n] for k in range(n)])
    population.set_column(KEY_LD_GAPS, gaps_column)
    return sched.rounds - before
