"""Native Distances / Algorithm 6 (vectorised twin of
:mod:`repro.protocols.distances`).

The Convolution/Pivot schedule is public, so every round's direction
vector is one pass over the label column; the per-agent equation
systems (private computation, not communication) accumulate in plain
slot-indexed lists and solve in :func:`discover_distances`'s final
pass.  Reuses the legacy module's pure schedule helpers
(:func:`~repro.protocols.distances.convolution_direction`,
:func:`~repro.protocols.distances.pivot_direction`,
:func:`~repro.protocols.distances.coll_window`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.analysis.equations import Equation, EquationSystem
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LABEL,
    KEY_LD_GAPS,
    KEY_RING_SIZE,
)
from repro.protocols.distances import (
    DirectionMap,
    coll_window,
    convolution_direction,
    pivot_direction,
)
from repro.protocols.policies.base import (
    LEFT,
    RIGHT,
    aligned_vector,
    common_dists,
    run_vector,
)
from repro.types import Model


def _run_structured_round(
    sched: Scheduler,
    moves_right: DirectionMap,
    rho: int,
    rotation: int,
    systems: List[EquationSystem],
) -> None:
    """Execute one scheduled round and harvest each slot's equations."""
    population = sched.population
    labels = population.column(KEY_LABEL)
    flips = population.column(KEY_FRAME_FLIP)
    n_ring = population.column(KEY_RING_SIZE)[0]

    commons = [
        RIGHT if moves_right(label - 1) else LEFT for label in labels
    ]
    obs = run_vector(sched, aligned_vector(flips, commons))

    dists = common_dists(flips, obs)
    for slot in range(population.n):
        label0 = labels[slot] - 1
        system = systems[slot]
        if rotation % n_ring != 0:
            system.add(
                Equation.window(
                    n_ring,
                    (label0 + rho) % n_ring,
                    rotation,
                    Fraction(1),
                    dists[slot],
                )
            )
        window = coll_window(n_ring, moves_right, label0, rho)
        if window is not None and obs[slot].coll is not None:
            start, hops = window
            system.add(
                Equation.window(
                    n_ring, start, hops, Fraction(1), 2 * obs[slot].coll
                )
            )


def discover_distances(sched: Scheduler) -> int:
    """Native twin of Algorithm 6.  Returns the rounds used (n/2 + 3);
    postcondition: every agent's gap vector under ``ld.gaps``."""
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("Distances requires the perceptive model")
    population = sched.population
    for key in (KEY_LABEL, KEY_RING_SIZE, KEY_FRAME_FLIP):
        if not population.all_set(key):
            raise ProtocolError(f"Distances requires {key} to be set")
    n = population.column(KEY_RING_SIZE)[0]
    if n % 2 != 0:
        raise ProtocolError(
            "Distances requires even n; use the rotation sweeps for odd n"
        )

    systems = [EquationSystem(n) for _ in range(population.n)]

    before = sched.rounds
    for i in range(1, n // 2 + 1):
        exception = n - 2 * (i - 1)
        rho = (2 * (i - 1)) % n
        _run_structured_round(
            sched, convolution_direction(n, exception), rho, 2, systems
        )
    # Cumulative rotation is now n = 0 (mod n): initial configuration.
    for j in (n, n - 1, n - 2):
        _run_structured_round(sched, pivot_direction(n, j), 0, 0, systems)

    labels = population.column(KEY_LABEL)
    gaps_column: List[List[Fraction]] = []
    for slot, system in enumerate(systems):
        if not system.full_rank:
            raise ProtocolError(
                f"agent {population.ids[slot]} ended with rank "
                f"{system.rank} < {n}; the Convolution/Pivot schedule "
                "should reach full rank"
            )
        x = system.solve()
        label0 = labels[slot] - 1
        gaps_column.append([x[(label0 + k) % n] for k in range(n)])
    population.set_column(KEY_LD_GAPS, gaps_column)
    return sched.rounds - before
