"""Native neighbor discovery (vectorised twin of
:mod:`repro.protocols.neighbor_discovery`).

Algorithm 3's whole round plan is static -- 4 rounds per ID bit plus 4
uniform rounds -- so :class:`NeighborDiscoveryPolicy` precomputes every
probe vector from the ID column at construction time; harvests file
collision observations per side, and :meth:`finalize` posts the gap and
relative-chirality columns.

Every probe/restore pair is planned as one fused
:class:`~repro.ring.stretch.Stretch`.  On a stretch backend the probe
vectors are int8 sign rows derived from the ID column in one shot, the
harvests keep the raw integer ``coll()`` columns (over ``2 * scale``,
``-1`` = no collision), and :meth:`finalize` reduces the stacked probe
matrix with masked column minima -- the per-agent work of the legacy
driver collapses to a handful of numpy reductions plus one interning
pass for the gap Fractions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.core.agent import id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.neighbor_discovery import (
    KEY_GAP_LEFT,
    KEY_GAP_RIGHT,
    KEY_SAME_LEFT,
    KEY_SAME_RIGHT,
)
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    RIGHT,
    Vector,
    opposite_vector,
)
from repro.types import Model, Observation


class NeighborDiscoveryPolicy(PhasePolicy):
    """Algorithm 3 as one native policy: learn both gaps and both
    neighbors' relative chirality in ``4 * id_bits(N) + 4`` rounds."""

    def __init__(self, sched: Scheduler) -> None:
        if sched.model is not Model.PERCEPTIVE:
            raise ProtocolError(
                "neighbor discovery requires the perceptive model"
            )
        super().__init__(sched)
        population = self.population
        n = self.n
        ids = population.ids
        if self.xp is not None and not sched.simulator.cross_validate:
            self._plan_vectorised(ids)
            return
        self._columnar = False
        self._right_obs: List[List[Fraction]] = [[] for _ in range(n)]
        self._left_obs: List[List[Fraction]] = [[] for _ in range(n)]
        self._uniform_r: Optional[List[Optional[Fraction]]] = None
        self._uniform_l: Optional[List[Optional[Fraction]]] = None

        for bit in range(id_bits(population.id_bound)):
            vector = [
                RIGHT if (agent_id >> bit) & 1 else LEFT
                for agent_id in ids
            ]
            self._push_probe(vector)
            self._push_probe(opposite_vector(vector))
        self._push_probe([RIGHT] * n, uniform="r")
        self._push_probe([LEFT] * n, uniform="l")

    # -- vectorised plan -------------------------------------------------

    def _plan_vectorised(self, ids: Sequence[int]) -> None:
        xp = self.xp
        n = self.n
        self._columnar = True
        self._scale = self.sched.simulator.backend.scale
        #: Per probe: (moved-own-right bool row, coll int row).
        self._probe_rows: List[tuple] = []
        self._uniform_r_ints = None
        self._uniform_l_ints = None
        ids_arr = xp.asarray(list(ids), dtype=xp.int64)
        for bit in range(id_bits(self.population.id_bound)):
            signs = xp.where(
                (ids_arr >> bit) & 1 == 1, 1, -1
            ).astype(xp.int8)
            self._push_probe_vec(signs)
            self._push_probe_vec(-signs)
        ones = xp.ones(n, dtype=xp.int8)
        self._push_probe_vec(ones, uniform="r")
        self._push_probe_vec(-ones, uniform="l")

    def _push_probe_vec(self, signs, uniform: Optional[str] = None) -> None:
        """Fused probe/restore pair keeping the integer coll column."""

        def harvest(result) -> None:
            coll = result.coll_ints(0)
            if coll is None or result.np is None:
                # Span executed round by round: rebuild the integer
                # column exactly (colls are on the 1/(2*scale) grid).
                twice = 2 * self._scale
                coll = self.xp.asarray(
                    [
                        -1 if c is None else int(c * twice)
                        for c in result.colls(0)
                    ],
                    dtype=self.xp.int64,
                )
            self._probe_rows.append((signs > 0, coll))
            if uniform == "r":
                self._uniform_r_ints = coll
            elif uniform == "l":
                self._uniform_l_ints = coll

        self.push_probe_span(signs, harvest)

    # -- legacy plan -----------------------------------------------------

    def _push_probe(
        self, vector: Vector, uniform: Optional[str] = None
    ) -> None:
        """Information round + REVERSEDROUND; the harvest files each
        slot's coll() by the direction that slot moved."""

        def harvest(obs: Sequence[Observation]) -> None:
            right_obs = self._right_obs
            left_obs = self._left_obs
            for i, o in enumerate(obs):
                if o.coll is not None:
                    (right_obs if vector[i] is RIGHT else left_obs)[
                        i
                    ].append(o.coll)
            if uniform == "r":
                self._uniform_r = [o.coll for o in obs]
            elif uniform == "l":
                self._uniform_l = [o.coll for o in obs]

        self.push_probe(vector, harvest)

    def finalize(self) -> None:
        if self._columnar:
            self._finalize_vectorised()
            return
        population = self.population
        gap_right: List[Fraction] = []
        gap_left: List[Fraction] = []
        same_right: List[bool] = []
        same_left: List[bool] = []
        for i in range(self.n):  # lint: allow[per-agent-loop] -- documented scalar fallback for ragged observation lists; the columnar path takes _finalize_vectorised above
            right_obs = self._right_obs[i]
            left_obs = self._left_obs[i]
            if not right_obs or not left_obs:
                raise ProtocolError(
                    f"agent {population.ids[i]} saw no collision on one "
                    "side; impossible for n > 4 with unique IDs"
                )
            gr = 2 * min(right_obs)
            gl = 2 * min(left_obs)
            gap_right.append(gr)
            gap_left.append(gl)
            # Chirality: in the all-RIGHT round my right neighbor
            # approached me iff it is flipped relative to me.
            same_right.append(self._uniform_r[i] != gr / 2)
            same_left.append(self._uniform_l[i] != gl / 2)
        population.set_column(KEY_GAP_RIGHT, gap_right)
        population.set_column(KEY_GAP_LEFT, gap_left)
        population.set_column(KEY_SAME_RIGHT, same_right)
        population.set_column(KEY_SAME_LEFT, same_left)

    def _finalize_vectorised(self) -> None:
        xp = self.xp
        population = self.population
        colls = xp.stack([row for _m, row in self._probe_rows])
        moved_right = xp.stack([m for m, _row in self._probe_rows])
        seen = colls >= 0
        none_seen = 1 << 62
        right_min = xp.min(
            xp.where(moved_right & seen, colls, none_seen), axis=0
        )
        left_min = xp.min(
            xp.where(~moved_right & seen, colls, none_seen), axis=0
        )
        missing = (right_min >= none_seen) | (left_min >= none_seen)
        if bool(missing.any()):
            i = int(xp.argmax(missing))
            raise ProtocolError(
                f"agent {population.ids[i]} saw no collision on one "
                "side; impossible for n > 4 with unique IDs"
            )
        # coll numerators are over 2 * scale, so the gap (twice the
        # nearest first-collision arc) is min/scale -- one interning
        # pass builds the same Fraction values the legacy driver posts.
        backend = self.sched.simulator.backend
        frac1 = backend._frac1
        population.set_column(
            KEY_GAP_RIGHT, [frac1(v) for v in right_min.tolist()]
        )
        population.set_column(
            KEY_GAP_LEFT, [frac1(v) for v in left_min.tolist()]
        )
        population.set_column(
            KEY_SAME_RIGHT, (self._uniform_r_ints != right_min).tolist()
        )
        population.set_column(
            KEY_SAME_LEFT, (self._uniform_l_ints != left_min).tolist()
        )


def discover_neighbors(sched: Scheduler) -> None:
    """Native twin of Algorithm 3 (see :class:`NeighborDiscoveryPolicy`)."""
    NeighborDiscoveryPolicy(sched).run()
