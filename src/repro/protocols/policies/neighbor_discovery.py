"""Native neighbor discovery (vectorised twin of
:mod:`repro.protocols.neighbor_discovery`).

Algorithm 3's whole round plan is static -- 4 rounds per ID bit plus 4
uniform rounds -- so :class:`NeighborDiscoveryPolicy` precomputes every
probe vector from the ID column at construction time; harvests file
collision observations per side, and :meth:`finalize` posts the gap and
relative-chirality columns.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.core.agent import id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.neighbor_discovery import (
    KEY_GAP_LEFT,
    KEY_GAP_RIGHT,
    KEY_SAME_LEFT,
    KEY_SAME_RIGHT,
)
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    RIGHT,
    Vector,
    opposite_vector,
)
from repro.types import Model, Observation


class NeighborDiscoveryPolicy(PhasePolicy):
    """Algorithm 3 as one native policy: learn both gaps and both
    neighbors' relative chirality in ``4 * id_bits(N) + 4`` rounds."""

    def __init__(self, sched: Scheduler) -> None:
        if sched.model is not Model.PERCEPTIVE:
            raise ProtocolError(
                "neighbor discovery requires the perceptive model"
            )
        super().__init__(sched)
        population = self.population
        n = self.n
        ids = population.ids
        self._right_obs: List[List[Fraction]] = [[] for _ in range(n)]
        self._left_obs: List[List[Fraction]] = [[] for _ in range(n)]
        self._uniform_r: Optional[List[Optional[Fraction]]] = None
        self._uniform_l: Optional[List[Optional[Fraction]]] = None

        for bit in range(id_bits(population.id_bound)):
            vector = [
                RIGHT if (agent_id >> bit) & 1 else LEFT
                for agent_id in ids
            ]
            self._push_probe(vector)
            self._push_probe(opposite_vector(vector))
        self._push_probe([RIGHT] * n, uniform="r")
        self._push_probe([LEFT] * n, uniform="l")

    def _push_probe(
        self, vector: Vector, uniform: Optional[str] = None
    ) -> None:
        """Information round + REVERSEDROUND; the harvest files each
        slot's coll() by the direction that slot moved."""

        def harvest(obs: Sequence[Observation]) -> None:
            right_obs = self._right_obs
            left_obs = self._left_obs
            for i, o in enumerate(obs):
                if o.coll is not None:
                    (right_obs if vector[i] is RIGHT else left_obs)[
                        i
                    ].append(o.coll)
            if uniform == "r":
                self._uniform_r = [o.coll for o in obs]
            elif uniform == "l":
                self._uniform_l = [o.coll for o in obs]

        self.push_probe(vector, harvest)

    def finalize(self) -> None:
        population = self.population
        gap_right: List[Fraction] = []
        gap_left: List[Fraction] = []
        same_right: List[bool] = []
        same_left: List[bool] = []
        for i in range(self.n):
            right_obs = self._right_obs[i]
            left_obs = self._left_obs[i]
            if not right_obs or not left_obs:
                raise ProtocolError(
                    f"agent {population.ids[i]} saw no collision on one "
                    "side; impossible for n > 4 with unique IDs"
                )
            gr = 2 * min(right_obs)
            gl = 2 * min(left_obs)
            gap_right.append(gr)
            gap_left.append(gl)
            # Chirality: in the all-RIGHT round my right neighbor
            # approached me iff it is flipped relative to me.
            same_right.append(self._uniform_r[i] != gr / 2)
            same_left.append(self._uniform_l[i] != gl / 2)
        population.set_column(KEY_GAP_RIGHT, gap_right)
        population.set_column(KEY_GAP_LEFT, gap_left)
        population.set_column(KEY_SAME_RIGHT, same_right)
        population.set_column(KEY_SAME_LEFT, same_left)


def discover_neighbors(sched: Scheduler) -> None:
    """Native twin of Algorithm 3 (see :class:`NeighborDiscoveryPolicy`)."""
    NeighborDiscoveryPolicy(sched).run()
