"""Native direction agreement (vectorised twin of
:mod:`repro.protocols.direction_agreement`).

Same round sequences (Lemma 2 classification of the nontrivial round or
the all-RIGHT round), same ``frame.flip`` / ``probe.class`` memory
state; the flip decision is one pass over the verdict column.
"""

from __future__ import annotations

from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_NMOVE_DIR
from repro.protocols.policies.base import RIGHT
from repro.protocols.policies.rotation_probe import RotationProbePolicy
from repro.protocols.rotation_probe import KEY_PROBE_CLASS, RotationClass


def _nmove_vector(sched: Scheduler):
    population = sched.population
    column = population.get_column(KEY_NMOVE_DIR)
    missing = (
        0
        if column is None
        else next(
            (i for i, cell in enumerate(column) if cell is MISSING), None
        )
    )
    if missing is not None:
        raise ProtocolError(
            "direction agreement requires a solved nontrivial move "
            f"(agent {population.ids[missing]} has no stored direction)"
        )
    return list(column)


def agree_direction_from_nontrivial_move(sched: Scheduler) -> None:
    """Native twin of Algorithm 1: classify the stored nontrivial round,
    flip the frames of agents that saw more than half a turn."""
    vector = _nmove_vector(sched)
    RotationProbePolicy(sched, vector, classify=True, restore=True).run()

    population = sched.population
    verdicts = population.column(KEY_PROBE_CLASS)
    if verdicts[0].trivial:
        raise ProtocolError(
            "DirAgr was run on a trivial move; the nontrivial move "
            "precondition is violated"
        )
    population.set_column(
        KEY_FRAME_FLIP,
        [v is RotationClass.ABOVE_HALF for v in verdicts],
    )


def agree_direction_odd(sched: Scheduler) -> None:
    """Native twin of Proposition 17 (odd n, O(1))."""
    population = sched.population
    if population.n and population.parity_even:
        raise ProtocolError("agree_direction_odd requires odd n")

    RotationProbePolicy(
        sched, [RIGHT] * population.n, classify=True, restore=True
    ).run()

    verdicts = population.column(KEY_PROBE_CLASS)
    flips = []
    for verdict in verdicts:
        if verdict is RotationClass.HALF:
            raise ProtocolError("half-turn observed with odd n: impossible")
        flips.append(verdict is RotationClass.ABOVE_HALF)
    population.set_column(KEY_FRAME_FLIP, flips)


def assume_common_frame(sched: Scheduler) -> None:
    """Native twin of the Table II declaration: no rounds, one column."""
    sched.population.fill(KEY_FRAME_FLIP, False)
