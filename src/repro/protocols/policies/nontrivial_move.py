"""Native nontrivial-move search (vectorised twin of
:mod:`repro.protocols.nontrivial_move`).

The Lemma 2 classification core lives in
:meth:`~repro.protocols.policies.base.PhasePolicy.push_classify`; this
module wires it to the Lemma 10 leader rounds and the Theorem 27
published distinguisher sequence, mirroring the legacy probes round for
round (including the data-dependent 2-vs-4 round cost per probe).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_LEADER, KEY_NMOVE_DIR
from repro.protocols.nontrivial_move import FAMILY_SEED, MAX_FAMILY_PROBES
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    RIGHT,
    Vector,
)
from repro.types import LocalDirection


def classify_nontrivial(
    sched: Scheduler, vector: Sequence[LocalDirection], weak: bool
) -> bool:
    """Probe one vector's round; True iff it is a (weak) nontrivial
    move.  Native twin of ``nontrivial_move._classify`` (1 + 1 rounds
    when the rotation is zero, else 2 + 2)."""
    policy = PhasePolicy(sched)
    result: List[bool] = []
    policy.push_classify(list(vector), weak, result.append)
    policy.run()
    return result[0]


def store_direction(sched: Scheduler, vector: Sequence[LocalDirection]) -> None:
    """Publish the winning round under ``nmove.dir`` (one column write)."""
    sched.population.set_column(KEY_NMOVE_DIR, list(vector))


def nmove_from_leader(sched: Scheduler) -> None:
    """Native twin of Lemma 10: try all-RIGHT, then
    all-RIGHT-except-leader."""
    population = sched.population
    leaders = population.get_column(KEY_LEADER)
    all_right: Vector = [RIGHT] * population.n
    if leaders is None:
        all_right_but_leader = list(all_right)
    else:
        all_right_but_leader = [
            LEFT if cell is not MISSING and cell else RIGHT
            for cell in leaders
        ]
    for vector in (all_right, all_right_but_leader):
        if classify_nontrivial(sched, vector, weak=False):
            store_direction(sched, vector)
            return
    raise ProtocolError(
        "neither candidate round was nontrivial; impossible for n > 4 "
        "with a unique leader (Lemma 10)"
    )


def nmove_seeded_family(
    sched: Scheduler,
    weak: bool = False,
    seed: int = FAMILY_SEED,
    max_probes: Optional[int] = None,
) -> int:
    """Native twin of Theorem 27: probe the published pseudo-random set
    sequence until a (weak) nontrivial move appears."""
    rng = random.Random(seed)
    limit = max_probes if max_probes is not None else MAX_FAMILY_PROBES
    population = sched.population
    ids = population.ids
    n_bound = population.id_bound
    for probe in range(1, limit + 1):
        draw = rng.getrandbits(n_bound + 1)
        vector = [
            RIGHT if (draw >> agent_id) & 1 else LEFT for agent_id in ids
        ]
        if classify_nontrivial(sched, vector, weak=weak):
            store_direction(sched, vector)
            return probe
    raise ProtocolError(
        f"no nontrivial move within {limit} probes; the published "
        "sequence guarantee failed (bug or adversarial seed collision)"
    )
