"""Native rotation-index probes (vectorised twin of
:mod:`repro.protocols.rotation_probe`).

:class:`RotationProbePolicy` runs the probe-zero test (1 round + 1
restore) or the Lemma 2 classification (2 + 2) over one precomputed
direction vector, writing the same ``probe.zero`` / ``probe.class``
memory columns as the legacy per-agent driver.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.scheduler import Scheduler
from repro.protocols.policies.base import (
    PhasePolicy,
    REPEAT,
    RESTORE,
    RIGHT,
    Vector,
)
from repro.protocols.rotation_probe import (
    KEY_PROBE_CLASS,
    KEY_PROBE_ZERO,
    RotationClass,
)
from repro.types import LocalDirection, Observation


class RotationProbePolicy(PhasePolicy):
    """Probe one fixed round's rotation index, restoring positions.

    With ``classify=False`` (the RI-zero test): run the round once and
    post ``probe.zero`` -- 2 rounds with ``restore``.  With
    ``classify=True`` (Lemma 2): run it twice and post the per-slot
    :class:`~repro.protocols.rotation_probe.RotationClass` under
    ``probe.class`` -- 4 rounds with ``restore``.

    After :meth:`run`, :attr:`zero` / :attr:`verdict` hold the slot-0
    answer (triviality is consensus).
    """

    def __init__(
        self,
        sched: Scheduler,
        vector: Sequence[LocalDirection],
        classify: bool = False,
        restore: bool = True,
    ) -> None:
        super().__init__(sched)
        vector = list(vector)
        self.zero: Optional[bool] = None
        self.verdict: Optional[RotationClass] = None
        self._d1: Optional[List] = None
        if classify:
            self.push(vector, self._harvest_first)
            self.push(REPEAT, self._harvest_second)
            if restore:
                self.push(RESTORE)
                self.push(REPEAT)
        else:
            self.push(vector, self._harvest_zero)
            if restore:
                self.push(RESTORE)

    def _harvest_zero(self, obs: Sequence[Observation]) -> None:
        self.population.set_column(
            KEY_PROBE_ZERO, [o.dist == 0 for o in obs]
        )
        self.zero = obs[0].dist == 0

    def _harvest_first(self, obs: Sequence[Observation]) -> None:
        self._d1 = [o.dist for o in obs]

    def _harvest_second(self, obs: Sequence[Observation]) -> None:
        verdicts = []
        for d1, o in zip(self._d1, obs):
            total = d1 + o.dist
            if d1 == 0:
                verdicts.append(RotationClass.ZERO)
            elif total == 1:
                verdicts.append(RotationClass.HALF)
            elif total < 1:
                verdicts.append(RotationClass.BELOW_HALF)
            else:
                verdicts.append(RotationClass.ABOVE_HALF)
        self.population.set_column(KEY_PROBE_CLASS, verdicts)
        self.verdict = verdicts[0]
        self._d1 = None


def probe_zero(
    sched: Scheduler, vector: Sequence[LocalDirection], restore: bool = True
) -> bool:
    """Native twin of :func:`repro.protocols.rotation_probe.probe_zero`."""
    return RotationProbePolicy(sched, vector, restore=restore).run().zero


def classify_rotation(
    sched: Scheduler, vector: Sequence[LocalDirection], restore: bool = True
) -> RotationClass:
    """Native twin of
    :func:`repro.protocols.rotation_probe.classify_rotation`; returns
    the slot-0 verdict (triviality is consensus)."""
    policy = RotationProbePolicy(sched, vector, classify=True,
                                 restore=restore)
    return policy.run().verdict


def membership_vector(
    ids: Sequence[int],
    members: Set[int],
    member_dir: LocalDirection = RIGHT,
) -> Vector:
    """Column form of
    :func:`repro.protocols.rotation_probe.membership_choice`."""
    other = member_dir.opposite()
    return [member_dir if i in members else other for i in ids]


def ri_is_zero(
    sched: Scheduler, members: Set[int], restore: bool = True
) -> bool:
    """Native twin of :func:`repro.protocols.rotation_probe.ri_is_zero`."""
    vector = membership_vector(sched.population.ids, members)
    return probe_zero(sched, vector, restore=restore)
