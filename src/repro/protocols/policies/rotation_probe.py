"""Native rotation-index probes (vectorised twin of
:mod:`repro.protocols.rotation_probe`).

:class:`RotationProbePolicy` runs the probe-zero test (1 round + 1
restore) or the Lemma 2 classification (2 + 2) over one precomputed
direction vector, writing the same ``probe.zero`` / ``probe.class``
memory columns as the legacy per-agent driver.

Fused execution: the probe/restore pair is planned as one
:class:`~repro.ring.stretch.Stretch`, so on a stretch-capable backend
the restore round never materialises observations, and the zero test /
Lemma 2 classification read the probe's ``dist`` column as raw integer
numerators (one vectorised compare) instead of per-agent Fractions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.core.scheduler import Scheduler
from repro.protocols.policies.base import (
    PhasePolicy,
    RIGHT,
    Vector,
)
from repro.protocols.rotation_probe import (
    KEY_PROBE_CLASS,
    KEY_PROBE_ZERO,
    RotationClass,
)
from repro.ring.stretch import Stretch
from repro.types import LocalDirection


class RotationProbePolicy(PhasePolicy):
    """Probe one fixed round's rotation index, restoring positions.

    With ``classify=False`` (the RI-zero test): run the round once and
    post ``probe.zero`` -- 2 rounds with ``restore``.  With
    ``classify=True`` (Lemma 2): run it twice and post the per-slot
    :class:`~repro.protocols.rotation_probe.RotationClass` under
    ``probe.class`` -- 4 rounds with ``restore``.

    After :meth:`run`, :attr:`zero` / :attr:`verdict` hold the slot-0
    answer (triviality is consensus).
    """

    def __init__(
        self,
        sched: Scheduler,
        vector: Sequence[LocalDirection],
        classify: bool = False,
        restore: bool = True,
    ) -> None:
        super().__init__(sched)
        vector = list(vector)
        self.zero: Optional[bool] = None
        self.verdict: Optional[RotationClass] = None
        self._d1 = None  # first probe's dist column (ints or Fractions)
        self._d1_ints = False
        if classify:
            self.push_stretch(Stretch(vector, 1), self._harvest_first)
            self.push_stretch(
                lambda: Stretch(self.last_vector, 1), self._harvest_second
            )
            if restore:
                self.push_restore(2)
        else:
            if restore:
                self.push_probe_span(vector, self._harvest_zero)
            else:
                self.push_stretch(Stretch(vector, 1), self._harvest_zero)

    def _harvest_zero(self, result) -> None:
        dist = result.dist_ints(0)
        if dist is not None and result.np is not None:
            zeros = (dist == 0).tolist()
        else:
            zeros = [o.dist == 0 for o in result.observations(0)]
        self.population.set_column(KEY_PROBE_ZERO, zeros)
        self.zero = zeros[0]

    def _harvest_first(self, result) -> None:
        dist = result.dist_ints(0)
        if dist is not None and result.np is not None:
            self._d1 = dist
            self._d1_ints = True
            self._scale = result.scale
        else:
            self._d1 = result.dists(0)
            self._d1_ints = False

    def _harvest_second(self, result) -> None:
        dist2 = result.dist_ints(0)
        if (
            self._d1_ints
            and dist2 is not None
            and result.np is not None
            and result.scale == self._scale
        ):
            np = result.np
            d1, scale = self._d1, result.scale
            total = d1 + dist2
            codes = np.where(
                d1 == 0,
                0,
                np.where(
                    total == scale,
                    1,
                    np.where(total < scale, 2, 3),
                ),
            ).tolist()
            classes = (
                RotationClass.ZERO,
                RotationClass.HALF,
                RotationClass.BELOW_HALF,
                RotationClass.ABOVE_HALF,
            )
            verdicts = [classes[c] for c in codes]
        else:
            if self._d1_ints:
                # Representation changed between the two probes (only
                # possible after an external state rewrite): fall back
                # to exact Fractions.
                from fractions import Fraction

                d1s = [Fraction(int(v), self._scale) for v in self._d1]  # lint: allow[fraction-hot-path] -- exact fallback when the representation changed between probes (external state rewrite); never taken on the steady path
            else:
                d1s = self._d1
            d2s = [o.dist for o in result.observations(0)]
            verdicts = []
            for d1, d2 in zip(d1s, d2s):
                total = d1 + d2
                if d1 == 0:
                    verdicts.append(RotationClass.ZERO)
                elif total == 1:
                    verdicts.append(RotationClass.HALF)
                elif total < 1:
                    verdicts.append(RotationClass.BELOW_HALF)
                else:
                    verdicts.append(RotationClass.ABOVE_HALF)
        self.population.set_column(KEY_PROBE_CLASS, verdicts)
        self.verdict = verdicts[0]
        self._d1 = None


def probe_zero(
    sched: Scheduler, vector: Sequence[LocalDirection], restore: bool = True
) -> bool:
    """Native twin of :func:`repro.protocols.rotation_probe.probe_zero`."""
    return RotationProbePolicy(sched, vector, restore=restore).run().zero


def classify_rotation(
    sched: Scheduler, vector: Sequence[LocalDirection], restore: bool = True
) -> RotationClass:
    """Native twin of
    :func:`repro.protocols.rotation_probe.classify_rotation`; returns
    the slot-0 verdict (triviality is consensus)."""
    policy = RotationProbePolicy(sched, vector, classify=True,
                                 restore=restore)
    return policy.run().verdict


def membership_vector(
    ids: Sequence[int],
    members: Set[int],
    member_dir: LocalDirection = RIGHT,
) -> Vector:
    """Column form of
    :func:`repro.protocols.rotation_probe.membership_choice`."""
    other = member_dir.opposite()
    return [member_dir if i in members else other for i in ids]


def ri_is_zero(
    sched: Scheduler, members: Set[int], restore: bool = True
) -> bool:
    """Native twin of :func:`repro.protocols.rotation_probe.ri_is_zero`."""
    vector = membership_vector(sched.population.ids, members)
    return probe_zero(sched, vector, restore=restore)
