"""Native NMoveS (vectorised twin of
:mod:`repro.protocols.nmove_perceptive`).

Same Algorithm 4 skeleton: probe all-own-RIGHT, fall back to neighbor
discovery + doubling local-leader sparsification (native relay floods)
+ seeded selective-family probes.  :class:`SelectiveFamilyProbePolicy`
is one family-set probe as a whole-population policy: the vector comes
from the local-leader column and the published member set, and the
Lemma 2 classification extends the plan round by round.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.combinatorics.selective_families import scale_family
from repro.core.agent import id_bits
from repro.core.population import MISSING
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.bitcomm import KEY_RECEIVED
from repro.protocols.nmove_perceptive import (
    KEY_LOCAL_LEADER,
    SELECTIVE_SEED,
)
from repro.protocols.policies.base import (
    LEFT,
    PhasePolicy,
    RIGHT,
)
from repro.protocols.policies.bitcomm import RelayFloodPolicy
from repro.protocols.policies.neighbor_discovery import discover_neighbors
from repro.protocols.policies.nontrivial_move import (
    classify_nontrivial,
    store_direction,
)
from repro.types import Model


class SelectiveFamilyProbePolicy(PhasePolicy):
    """Probe one selective-family set: local leaders with ID in the set
    play own-LEFT, everyone else own-RIGHT; classify via Lemma 2 and,
    if the round is nontrivial, publish it under ``nmove.dir``.

    After :meth:`run`, :attr:`nontrivial` holds the verdict.  4 rounds
    when the probed round is nontrivial or a half-turn, 2 when trivial
    -- exactly the legacy ``_family_probe`` cost.
    """

    def __init__(self, sched: Scheduler, member_ids: Iterable[int]) -> None:
        super().__init__(sched)
        population = self.population
        members = set(member_ids)
        leaders = population.get_column(KEY_LOCAL_LEADER)
        self._vector = [
            LEFT
            if (
                leaders is not None
                and leaders[i] is not MISSING
                and leaders[i]
                and agent_id in members
            )
            else RIGHT
            for i, agent_id in enumerate(population.ids)
        ]
        self.nontrivial: Optional[bool] = None
        self.push_classify(self._vector, weak=False, on_verdict=self._set)

    def _set(self, nontrivial: bool) -> None:
        self.nontrivial = nontrivial

    def finalize(self) -> None:
        if self.nontrivial:
            store_direction(self.sched, self._vector)


def nmove_perceptive(sched: Scheduler) -> dict:
    """Native twin of Algorithm 4.  Postcondition: ``nmove.dir`` set for
    every agent; returns the same stats dict as the legacy driver."""
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("NMoveS requires the perceptive model")

    population = sched.population
    stats = {"levels": 0, "family_probes": 0, "rounds_start": sched.rounds}

    all_right = [RIGHT] * population.n
    if classify_nontrivial(sched, all_right, weak=False):
        store_direction(sched, all_right)
        stats["rounds"] = sched.rounds - stats.pop("rounds_start")
        return stats

    discover_neighbors(sched)
    leaders = population.fill(KEY_LOCAL_LEADER, True)

    n_bound = population.id_bound
    width = id_bits(n_bound)
    max_level = width + 1
    for level in range(max_level + 1):
        distance = 1 << level
        stats["levels"] = level + 1

        RelayFloodPolicy(
            sched,
            [
                agent_id if leaders[i] else None
                for i, agent_id in enumerate(population.ids)
            ],
            distance=distance,
            width=width,
        ).run()

        received = population.column(KEY_RECEIVED)
        for i, agent_id in enumerate(population.ids):
            if leaders[i] and any(
                value > agent_id for _s, _h, value in received[i]
            ):
                leaders[i] = False

        family = scale_family(n_bound, distance, seed=SELECTIVE_SEED + level)
        for f in family:
            stats["family_probes"] += 1
            probe = SelectiveFamilyProbePolicy(sched, f)
            probe.run()
            if probe.nontrivial:
                stats["rounds"] = sched.rounds - stats.pop("rounds_start")
                return stats

    raise ProtocolError(
        "NMoveS exhausted all levels without a nontrivial move; the "
        "selective family seed failed (bug or astronomically unlucky seed)"
    )
