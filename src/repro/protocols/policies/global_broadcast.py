"""Native rotation-coded broadcast (vectorised twin of
:mod:`repro.protocols.global_broadcast`)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.agent import id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP
from repro.protocols.global_broadcast import KEY_BROADCAST_VALUE
from repro.protocols.policies.base import (
    LEFT,
    RIGHT,
    aligned_vector,
    require_column,
    run_vector,
)


def broadcast_value(
    sched: Scheduler,
    announcers: Sequence[bool],
    values: Sequence[Optional[int]],
    width: Optional[int] = None,
    result_key: str = KEY_BROADCAST_VALUE,
) -> int:
    """Native twin of
    :func:`repro.protocols.global_broadcast.broadcast_value`: the unique
    slot with ``announcers[slot]`` set transmits ``values[slot]`` to
    everyone, one bit per (probe + restore) round pair."""
    population = sched.population
    flips = require_column(
        population, KEY_FRAME_FLIP, "global broadcast requires a common frame"
    )
    announcer_slots = [i for i, a in enumerate(announcers) if a]
    if len(announcer_slots) != 1:
        raise ProtocolError(
            "broadcast requires exactly one announcer, found "
            f"{len(announcer_slots)}"
        )
    value = values[announcer_slots[0]]
    if value is None or value < 0:
        raise ProtocolError("announcer must hold a non-negative value")
    bits = width if width is not None else id_bits(population.id_bound)
    if value >= (1 << bits):
        raise ProtocolError(f"value {value} does not fit in {bits} bits")

    acc: List[int] = [0] * population.n
    for bit in range(bits):
        commons = [
            RIGHT if announcers[i] and ((value >> bit) & 1) else LEFT
            for i in range(population.n)
        ]
        vector = aligned_vector(flips, commons)
        obs = run_vector(sched, vector)
        for i, o in enumerate(obs):
            if o.dist != 0:
                acc[i] |= 1 << bit
        run_vector(sched, [d.opposite() for d in vector])

    population.set_column(result_key, acc)
    results = set(acc)
    if results != {value}:
        raise ProtocolError(f"broadcast diverged: {results} != {value}")
    return value
