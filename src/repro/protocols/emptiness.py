"""Emptiness testing (Lemma 12).

Given a publicly known set B ⊆ [N], decide whether any present agent's
ID lies in B.  All variants assume a common sense of direction (either
native, or established by direction agreement) and end with consensus:
every agent stores the same boolean under ``empty.result``.

Costs (information rounds; each is paired with a restoring reversed
round):

* lazy model: 1 round -- members of B move RIGHT, everyone else idles;
  the rotation index is |B ∩ A| mod n, nonzero for a non-member iff the
  intersection is nonempty.
* perceptive model: 1 round -- members RIGHT, others LEFT; if the
  intersection is proper and nonempty *every* agent collides within
  half a time unit (some token moves each way and tokens move uniformly
  forever), so a non-member detects occupancy via dist() or coll().
* basic model, odd n: 1 round -- members RIGHT, others LEFT; the
  rotation index (2|B ∩ A| - n) mod n vanishes for a non-member only
  when the intersection is empty.
* basic model, even n: 1 + ceil(log N) rounds -- probe B itself, then
  for each bit position the subset of B with that bit set.  If all
  probes have rotation index 0 and the intersection M were nonempty,
  then |M| = n/2 and every probed bit is constant on M, forcing
  |M| = 1 < n/2: contradiction (n > 4).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.core.agent import AgentView, id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, aligned_direction
from repro.types import LocalDirection, Model

KEY_EMPTY_RESULT = "empty.result"   # bool: True means B ∩ A == ∅
_KEY_SAW = "empty._saw_occupancy"


def _require_frame(view: AgentView) -> None:
    if KEY_FRAME_FLIP not in view.memory:
        raise ProtocolError(
            "emptiness testing requires an established common frame"
        )


def _member_round(
    sched: Scheduler,
    members: Set[int],
    non_member_dir: LocalDirection,
    record: bool,
) -> None:
    """One probe round (plus its reversal): members of ``members`` move
    common-RIGHT, everyone else plays ``non_member_dir`` (common frame).
    With ``record``, each non-member ORs occupancy evidence into memory."""

    def choose(view: AgentView) -> LocalDirection:
        _require_frame(view)
        common = (
            LocalDirection.RIGHT
            if view.agent_id in members
            else non_member_dir
        )
        return aligned_direction(view, common)

    sched.run_round(choose)
    if record:

        def note(view: AgentView) -> None:
            saw = view.last.dist != 0 or view.last.coll is not None
            view.memory[_KEY_SAW] = view.memory.get(_KEY_SAW, False) or saw

        sched.for_each_agent(note)
    sched.run_round(lambda view: choose(view).opposite())


def emptiness_test(sched: Scheduler, candidate_ids: Iterable[int]) -> bool:
    """Decide whether any present agent's ID is in ``candidate_ids``.

    Every agent ends with the consensus verdict under ``empty.result``
    (True = empty).  Returns that verdict for caller convenience.
    """
    members = set(candidate_ids)
    model = sched.model
    parity_even = sched.views[0].parity_even

    sched.for_each_agent(lambda view: view.memory.__setitem__(_KEY_SAW, False))

    if model is Model.LAZY:
        _member_round(sched, members, LocalDirection.IDLE, record=True)
        probes = 1
    elif model is Model.PERCEPTIVE or not parity_even:
        _member_round(sched, members, LocalDirection.LEFT, record=True)
        probes = 1
    else:
        # Basic model, even n: probe B, then each bit-slice of B.
        _member_round(sched, members, LocalDirection.LEFT, record=True)
        bits = id_bits(sched.views[0].id_bound)
        for i in range(bits):
            slice_i = {x for x in members if (x >> i) & 1}
            _member_round(sched, slice_i, LocalDirection.LEFT, record=True)
        probes = 1 + bits

    def conclude(view: AgentView) -> None:
        if view.agent_id in members:
            empty = False  # the agent itself witnesses occupancy
        else:
            empty = not view.memory.pop(_KEY_SAW)
        view.memory[KEY_EMPTY_RESULT] = empty

    sched.for_each_agent(conclude)
    del probes
    verdict = sched.unanimous_memory(KEY_EMPTY_RESULT)
    if verdict is None:
        raise ProtocolError("emptiness test reached no consensus: bug")
    return bool(verdict)
