"""Direction agreement (Algorithm 1 and Proposition 17).

Algorithm 1 (``DirAgr``): given an assignment of directions that is a
*nontrivial move* (rotation index r ∉ {0, n/2}), run the round twice.
Writing δ for the objective clockwise arc an agent is carried per round,
the two runs together sweep the arcs of 2r consecutive slots:
d1 + d2 < 1 exactly when the rotation is less than half a turn in the
agent's own clockwise direction.  Agents for whom it is *more* than half
flip their sense; afterwards everyone's "clockwise" is the direction in
which the nontrivial round rotated by less than half a turn -- a common
frame.

Proposition 17 (odd n, O(1)): the all-RIGHT round is trivial only when
all agents already share a sense of direction (for odd n a round is
trivial iff everyone moves the same objective way).  So run all-RIGHT
twice: agents either observe d1 = 0 (already agreed -- keep) or apply
the Algorithm 1 rule to this automatically-nontrivial round.

Both protocols restore positions before flipping (two reversed rounds),
so they are drop-in phases.
"""

from __future__ import annotations

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, KEY_NMOVE_DIR
from repro.protocols.rotation_probe import (
    KEY_PROBE_CLASS,
    RotationClass,
    classify_rotation,
)
from repro.types import LocalDirection


def _nmove_choice(view: AgentView) -> LocalDirection:
    direction = view.memory.get(KEY_NMOVE_DIR)
    if direction is None:
        raise ProtocolError(
            "direction agreement requires a solved nontrivial move "
            f"(agent {view.agent_id} has no stored direction)"
        )
    return direction


def agree_direction_from_nontrivial_move(sched: Scheduler) -> None:
    """Algorithm 1: establish a common sense of direction in O(1) rounds.

    Preconditions: every agent holds a direction under ``nmove.dir``
    whose round is a nontrivial move.  Postcondition: every agent holds
    ``frame.flip``; interpreting RIGHT through the flip yields a common
    clockwise for all agents.  Costs 4 rounds (2 probing + 2 restoring).
    """
    classify_rotation(sched, _nmove_choice, restore=True)

    def decide(view: AgentView) -> None:
        verdict = view.memory[KEY_PROBE_CLASS]
        if verdict.trivial:
            raise ProtocolError(
                "DirAgr was run on a trivial move; the nontrivial move "
                "precondition is violated"
            )
        view.memory[KEY_FRAME_FLIP] = verdict is RotationClass.ABOVE_HALF

    sched.for_each_agent(decide)


def agree_direction_odd(sched: Scheduler) -> None:
    """Proposition 17: O(1) direction agreement in the basic model, odd n.

    Costs 4 rounds.  Raises if run on an even ring (the all-RIGHT round
    can then be an undetectable half-turn).
    """
    if sched.views and sched.views[0].parity_even:
        raise ProtocolError("agree_direction_odd requires odd n")

    classify_rotation(
        sched, lambda view: LocalDirection.RIGHT, restore=True
    )

    def decide(view: AgentView) -> None:
        verdict = view.memory[KEY_PROBE_CLASS]
        if verdict is RotationClass.HALF:
            raise ProtocolError("half-turn observed with odd n: impossible")
        if verdict is RotationClass.ZERO:
            # Everyone moved the same objective way, so senses already
            # coincide; keep the current frame.
            view.memory[KEY_FRAME_FLIP] = False
        else:
            view.memory[KEY_FRAME_FLIP] = verdict is RotationClass.ABOVE_HALF

    sched.for_each_agent(decide)


def assume_common_frame(sched: Scheduler) -> None:
    """Declare the agents' native senses already common (Table II rows).

    Models the paper's "with common sense of direction" setting: each
    agent simply trusts its own RIGHT.  No rounds are consumed.  It is
    the caller's responsibility that the configuration really has a
    shared chirality; nothing is checked here because agents cannot
    check it for free.
    """
    sched.for_each_agent(
        lambda view: view.memory.__setitem__(KEY_FRAME_FLIP, False)
    )
