"""Shared conventions and result types for the protocol suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from repro.core.agent import AgentView
from repro.exceptions import ProtocolError
from repro.types import LocalDirection

# Memory keys shared across protocols.  A key's value is always written
# by the protocol that owns the phase and read by later phases.
KEY_FRAME_FLIP = "frame.flip"          # bool: does my RIGHT differ from the
                                       # agreed common clockwise?
KEY_LEADER = "leader.is_leader"        # bool
KEY_NMOVE_DIR = "nmove.dir"            # LocalDirection giving a nontrivial move
KEY_LABEL = "ringdist.label"           # int: right ring distance from leader
KEY_RING_SIZE = "ld.n"                 # int: n, once published
KEY_LD_GAPS = "ld.gaps"                # list[Fraction]: gaps from own slot


def aligned_direction(view: AgentView, common: LocalDirection) -> LocalDirection:
    """Translate a direction in the agreed common frame into the agent's
    local frame, honouring the flip decided during direction agreement."""
    if common is LocalDirection.IDLE:
        return LocalDirection.IDLE
    if view.memory.get(KEY_FRAME_FLIP, False):
        return common.opposite()
    return common


def common_dist(view: AgentView, dist: Fraction) -> Fraction:
    """Convert a ``dist()`` observation from the agent's own clockwise
    frame into the agreed common clockwise frame."""
    if not view.memory.get(KEY_FRAME_FLIP, False):
        return dist
    return (Fraction(1) - dist) if dist != 0 else Fraction(0)


@dataclass
class CoordinationResult:
    """Outcome of solving the coordination problems on a ring.

    Attributes:
        rounds: Total rounds consumed.
        leader_id: The elected leader's ID (None if leader election was
            not part of the requested pipeline).
        rounds_by_phase: Round counts per phase name, for benchmarks.
    """

    rounds: int
    leader_id: Optional[int] = None
    rounds_by_phase: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (consumed by RunReport and ``--json``)."""
        return {
            "kind": "coordination",
            "rounds": self.rounds,
            "leader_id": self.leader_id,
            "rounds_by_phase": dict(self.rounds_by_phase),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoordinationResult":
        """Inverse of :meth:`to_dict` (the run-cache fetch path)."""
        leader = data.get("leader_id")
        return cls(
            rounds=int(data["rounds"]),  # type: ignore[arg-type]
            leader_id=None if leader is None else int(leader),  # type: ignore[arg-type]
            rounds_by_phase={
                str(name): int(rounds)  # type: ignore[arg-type]
                for name, rounds in dict(data["rounds_by_phase"]).items()  # type: ignore[arg-type]
            },
        )


@dataclass
class LocationDiscoveryResult:
    """Outcome of location discovery.

    Attributes:
        rounds: Total rounds consumed (including coordination phases).
        rounds_by_phase: Round counts per phase name.
        gaps_by_agent: For each ring index i (harness-side bookkeeping),
            the gap vector that agent reconstructed, expressed in the
            common frame starting from its own slot: entry k is the arc
            from the k-th agent to the (k+1)-th agent, counting common-
            clockwise from the reconstructing agent itself.
    """

    rounds: int
    rounds_by_phase: Dict[str, int] = field(default_factory=dict)
    gaps_by_agent: List[List[Fraction]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (consumed by RunReport and ``--json``).

        Gaps are exact ``"p/q"`` strings -- floats would destroy the
        bit-exactness the cross-backend tests rely on.
        """
        return {
            "kind": "location_discovery",
            "rounds": self.rounds,
            "rounds_by_phase": dict(self.rounds_by_phase),
            "gaps_by_agent": [
                [str(g) for g in gaps] for gaps in self.gaps_by_agent
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LocationDiscoveryResult":
        """Inverse of :meth:`to_dict` (the run-cache fetch path).

        ``"p/q"`` strings parse back to exact :class:`Fraction` values,
        so a fetched result round-trips byte-identically through
        :meth:`to_dict`.
        """
        return cls(
            rounds=int(data["rounds"]),  # type: ignore[arg-type]
            rounds_by_phase={
                str(name): int(rounds)  # type: ignore[arg-type]
                for name, rounds in dict(data["rounds_by_phase"]).items()  # type: ignore[arg-type]
            },
            gaps_by_agent=[
                [Fraction(str(gap)) for gap in gaps]
                for gaps in data["gaps_by_agent"]  # type: ignore[union-attr]
            ],
        )


@dataclass
class ContentionResult:
    """Outcome of a contention-channel (medium access) protocol run.

    Attributes:
        rounds: Total ring rounds consumed (each channel slot costs two
            physical rounds -- a probe and its restoring reverse; fused
            idle runs cost two rounds per fused slot).
        rounds_by_phase: Round counts per phase name.
        slots: Channel slots simulated (idle, busy and collision slots).
        attempts: Total transmission attempts across all agents.
        collisions: Slots adjudicated as collisions.
        lost: Transmissions dropped by the loss model (ALOHA only).
        delivered_order: Agent slots in the order their message got
            through the channel.
        undelivered: Agent slots whose message never got through (e.g.
            crash-stopped transmitters under a fault plan) -- the
            partial-result surface of the graceful-degradation
            contract.
    """

    rounds: int
    rounds_by_phase: Dict[str, int] = field(default_factory=dict)
    slots: int = 0
    attempts: int = 0
    collisions: int = 0
    lost: int = 0
    delivered_order: List[int] = field(default_factory=list)
    undelivered: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (consumed by RunReport and ``--json``)."""
        return {
            "kind": "contention",
            "rounds": self.rounds,
            "rounds_by_phase": dict(self.rounds_by_phase),
            "slots": self.slots,
            "attempts": self.attempts,
            "collisions": self.collisions,
            "lost": self.lost,
            "delivered_order": list(self.delivered_order),
            "undelivered": list(self.undelivered),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ContentionResult":
        """Inverse of :meth:`to_dict` (the run-cache fetch path)."""
        return cls(
            rounds=int(data["rounds"]),  # type: ignore[arg-type]
            rounds_by_phase={
                str(name): int(rounds)  # type: ignore[arg-type]
                for name, rounds in dict(data["rounds_by_phase"]).items()  # type: ignore[arg-type]
            },
            slots=int(data["slots"]),  # type: ignore[arg-type]
            attempts=int(data["attempts"]),  # type: ignore[arg-type]
            collisions=int(data["collisions"]),  # type: ignore[arg-type]
            lost=int(data["lost"]),  # type: ignore[arg-type]
            delivered_order=[int(s) for s in data["delivered_order"]],  # type: ignore[union-attr]
            undelivered=[int(s) for s in data["undelivered"]],  # type: ignore[union-attr]
        )


#: Result classes by their ``to_dict()["kind"]`` discriminator.
_RESULT_KINDS = {
    "contention": ContentionResult,
    "coordination": CoordinationResult,
    "location_discovery": LocationDiscoveryResult,
}


def result_from_dict(data: Dict[str, object]) -> object:
    """Rebuild a protocol result object from its ``to_dict`` payload.

    The run cache stores results as their JSON payloads; this is the
    dispatcher that turns a fetched payload back into the object
    :meth:`RingSession.run <repro.api.session.RingSession.run>` would
    have returned.
    """
    kind = data.get("kind")
    cls = _RESULT_KINDS.get(str(kind))
    if cls is None:
        known = ", ".join(sorted(_RESULT_KINDS))
        raise ProtocolError(
            f"unknown result kind {kind!r} in stored payload; known: {known}"
        )
    return cls.from_dict(data)
