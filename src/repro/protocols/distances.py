"""Distances (Algorithm 6): location discovery in n/2 + O(1) rounds.

Preconditions: perceptive model, even n, a common frame, every agent
knows its 1-based label (RingDist) and n (ring-size broadcast), and the
configuration is at its initial positions.

The schedule is n/2 *Convolution* rounds followed by three *Pivot*
rounds.  Writing x_t (0-based label t) for the initial common-clockwise
gap between agents t and t+1, and ρ for the cumulative rotation when a
round starts:

* ``Convolution(e)``: odd 1-based labels move common-RIGHT, even ones
  common-LEFT, except that label e moves RIGHT.  Rotation index 2, so
  each agent's ``dist()`` is the sum of the two gaps ahead of its
  current slot -- one linear equation.  Its ``coll()`` gives a second:
  a RIGHT mover's first collision comes after half the arc to the
  nearest LEFT mover ahead (the cascade closed form, Prop 4/37), a
  LEFT mover's after half the arc back to the nearest RIGHT mover --
  windows that are *structurally* determined by the public schedule.
* ``Pivot(j)``: the n/2 labels ending at j move RIGHT, the other half
  LEFT.  Rotation index 0 (no ``dist()`` information), but the single
  converging boundary behind a_j hands every agent one long half-sum
  equation, with a boundary offset that shifts with j.

Every agent accumulates its own two equations per Convolution round and
one per Pivot in an exact incremental Gaussian system and solves once
full rank is reached.  The n/2 Convolutions rotate the ring by exactly
n slots, so the Pivots run at the initial configuration and the
protocol ends where it started.

This realises Lemma 41 / Theorem 42; together with the O(√n log N)
coordination prefix, location discovery costs n/2 + o(n) rounds
(for log N = o(√n)), matching the Lemma 6 lower bound of n/2.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Optional

from repro.analysis.equations import Equation, EquationSystem
from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LABEL,
    KEY_LD_GAPS,
    KEY_RING_SIZE,
    aligned_direction,
    common_dist,
)
from repro.types import LocalDirection, Model

_KEY_SYSTEM = "distances._system"

DirectionMap = Callable[[int], bool]  # 0-based label -> moves common-RIGHT?


def convolution_direction(n: int, exception_label: int) -> DirectionMap:
    """Direction map of Convolution with the given 1-based exception."""
    exc = exception_label - 1

    def moves_right(label0: int) -> bool:
        return label0 % 2 == 0 or label0 == exc

    return moves_right


def pivot_direction(n: int, j: int) -> DirectionMap:
    """Direction map of Pivot(j) (1-based j): the half-ring of labels
    ending at j moves common-RIGHT, the other half common-LEFT."""
    j0 = (j - 1) % n
    right = {(j0 - offset) % n for offset in range(n // 2)}

    def moves_right(label0: int) -> bool:
        return label0 in right

    return moves_right


def coll_window(
    n: int, moves_right: DirectionMap, label0: int, rho: int
) -> Optional[tuple]:
    """(start_slot, hop_count) of the gap window measured by coll().

    A RIGHT mover's window runs forward from its current slot to the
    nearest LEFT mover; a LEFT mover's runs backward to the nearest
    RIGHT mover.  Returns None when everyone moves the same way.
    """
    if moves_right(label0):
        for h in range(1, n):
            if not moves_right((label0 + h) % n):
                return ((label0 + rho) % n, h)
        return None
    for h in range(1, n):
        if moves_right((label0 - h) % n):
            return ((label0 - h + rho) % n, h)
    return None


def _run_structured_round(
    sched: Scheduler,
    moves_right: DirectionMap,
    rho: int,
    rotation: int,
) -> None:
    """Execute one scheduled round and harvest each agent's equations."""

    def choose(view: AgentView) -> LocalDirection:
        label0 = view.memory[KEY_LABEL] - 1
        common = (
            LocalDirection.RIGHT
            if moves_right(label0)
            else LocalDirection.LEFT
        )
        return aligned_direction(view, common)

    sched.run_round(choose)

    def harvest(view: AgentView) -> None:
        n = view.memory[KEY_RING_SIZE]
        label0 = view.memory[KEY_LABEL] - 1
        system: EquationSystem = view.memory[_KEY_SYSTEM]
        if rotation % n != 0:
            d = common_dist(view, view.last.dist)
            system.add(
                Equation.window(
                    n, (label0 + rho) % n, rotation, Fraction(1), d
                )
            )
        window = coll_window(n, moves_right, label0, rho)
        if window is not None and view.last.coll is not None:
            start, hops = window
            system.add(
                Equation.window(n, start, hops, Fraction(1), 2 * view.last.coll)
            )

    sched.for_each_agent(harvest)


def discover_distances(sched: Scheduler) -> int:
    """Algorithm 6.  Returns the number of rounds used (n/2 + 3).

    Postcondition: every agent stores under ``ld.gaps`` the full gap
    vector in common-clockwise order starting from its own slot.
    """
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("Distances requires the perceptive model")
    view0 = sched.views[0]
    for key in (KEY_LABEL, KEY_RING_SIZE, KEY_FRAME_FLIP):
        if any(key not in v.memory for v in sched.views):
            raise ProtocolError(f"Distances requires {key} to be set")
    n = view0.memory[KEY_RING_SIZE]
    if n % 2 != 0:
        raise ProtocolError(
            "Distances requires even n; use the rotation sweeps for odd n"
        )

    sched.for_each_agent(
        lambda v: v.memory.__setitem__(_KEY_SYSTEM, EquationSystem(n))
    )

    before = sched.rounds
    for i in range(1, n // 2 + 1):
        exception = n - 2 * (i - 1)
        rho = (2 * (i - 1)) % n
        _run_structured_round(
            sched, convolution_direction(n, exception), rho, rotation=2
        )
    # Cumulative rotation is now n = 0 (mod n): initial configuration.
    for j in (n, n - 1, n - 2):
        _run_structured_round(sched, pivot_direction(n, j), 0, rotation=0)

    def solve(view: AgentView) -> None:
        system: EquationSystem = view.memory.pop(_KEY_SYSTEM)
        if not system.full_rank:
            raise ProtocolError(
                f"agent {view.agent_id} ended with rank {system.rank} < {n}; "
                "the Convolution/Pivot schedule should reach full rank"
            )
        x = system.solve()
        label0 = view.memory[KEY_LABEL] - 1
        view.memory[KEY_LD_GAPS] = [x[(label0 + k) % n] for k in range(n)]

    sched.for_each_agent(solve)
    return sched.rounds - before
