"""Nontrivial move protocols (Lemma 10, Prop 19, Theorem 27, Lemma 15).

A *nontrivial move* is an assignment of directions whose round has
rotation index r ∉ {0, n/2}; the *weak* variant only excludes r = 0.
Solutions provided:

* :func:`nmove_from_leader` (Lemma 10): with a leader elected, try the
  all-RIGHT round and the all-RIGHT-except-leader round; their rotation
  indices differ by 2 (mod n), so for n > 4 at least one is nontrivial.
  O(1) rounds.

* :func:`nmove_odd_bisection` (Prop 19): odd n, common frame.  Probe
  interval halves of the ID space; a trivial round means all present
  agents sit on the prober's side, so the search interval halves while
  always containing all of A.  An interval shorter than n cannot hold n
  distinct IDs, so a split (= nontrivial move, as every objectively
  split round is nontrivial for odd n) appears within log(N/n) + O(1)
  probes.

* :func:`nmove_seeded_family` (Theorem 27 / Lemma 15): even n.  The
  paper proves by the probabilistic method that a fixed sequence of
  subsets of [N] -- each ID included independently with probability 1/2
  -- yields a nontrivial move within O(n log(N/n) / log n) rounds for
  every configuration.  We realise the fixed sequence with a seeded
  PRNG over IDs (public knowledge, so the protocol stays deterministic)
  and classify each probed round via Lemma 2.  Works with or without a
  common frame: a chirality split only re-partitions which agents move
  which way, which is exactly the symmetry the distinguisher breaks.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_NMOVE_DIR, aligned_direction
from repro.protocols.rotation_probe import (
    KEY_PROBE_CLASS,
    RotationClass,
    classify_rotation,
)
from repro.types import LocalDirection

#: Seed defining the published probe-set sequence of Theorem 27.  Part of
#: the protocol definition (all agents share it), not a knob.
FAMILY_SEED = 0x5EED

#: Safety valve for the seeded search; the expected number of probes is
#: O(1) per configuration and the paper's guarantee is
#: O(n log(N/n)/log n), so hitting this limit indicates a bug.
MAX_FAMILY_PROBES = 100_000


def _store_direction(sched: Scheduler, choose) -> None:
    sched.for_each_agent(
        lambda view: view.memory.__setitem__(KEY_NMOVE_DIR, choose(view))
    )


def _classify(sched: Scheduler, choose, weak: bool) -> bool:
    """Probe a round; True iff it is a (weak) nontrivial move.

    Consensus: triviality is a global property of the round.  Uses 1
    round + 1 restore when the rotation is zero, else 2 + 2.
    """
    sched.run_round(choose)
    zero = sched.views[0].last.dist == 0
    if zero:
        sched.run_round(lambda view: choose(view).opposite())
        return False
    if weak:
        sched.run_round(lambda view: choose(view).opposite())
        return True
    sched.for_each_agent(
        lambda view: view.memory.__setitem__("nmove._d1", view.last.dist)
    )
    sched.run_round(choose)

    def verdict(view: AgentView) -> None:
        d1 = view.memory.pop("nmove._d1")
        d2 = view.last.dist
        view.memory["nmove._half"] = d1 + d2 == 1

    sched.for_each_agent(verdict)
    sched.run_round(lambda view: choose(view).opposite())
    sched.run_round(lambda view: choose(view).opposite())
    return not sched.views[0].memory["nmove._half"]


def nmove_from_leader(sched: Scheduler) -> None:
    """Lemma 10: O(1) nontrivial move once a leader exists.

    Preconditions: exactly one agent has ``leader.is_leader`` = True.
    Postcondition: ``nmove.dir`` holds a direction assignment whose
    round is nontrivial.  Costs at most 8 rounds.
    """

    def all_right(view: AgentView) -> LocalDirection:
        return LocalDirection.RIGHT

    def all_right_but_leader(view: AgentView) -> LocalDirection:
        if view.memory.get("leader.is_leader"):
            return LocalDirection.LEFT
        return LocalDirection.RIGHT

    for choose in (all_right, all_right_but_leader):
        if _classify(sched, choose, weak=False):
            _store_direction(sched, choose)
            return
    raise ProtocolError(
        "neither candidate round was nontrivial; impossible for n > 4 "
        "with a unique leader (Lemma 10)"
    )


def nmove_odd_bisection(sched: Scheduler) -> None:
    """Prop 19: Θ(log(N/n)) nontrivial move, odd n, common frame.

    Preconditions: odd n and ``frame.flip`` set (run
    :func:`~repro.protocols.direction_agreement.agree_direction_odd`
    first; it costs O(1)).  Postcondition: ``nmove.dir`` set.
    """
    view0 = sched.views[0]
    if view0.parity_even:
        raise ProtocolError("nmove_odd_bisection requires odd n")

    lo, hi = 1, view0.id_bound

    while True:
        mid = (lo + hi) // 2

        def choose(view: AgentView, lo=lo, mid=mid) -> LocalDirection:
            common = (
                LocalDirection.RIGHT
                if lo <= view.agent_id <= mid
                else LocalDirection.LEFT
            )
            return aligned_direction(view, common)

        sched.run_round(choose)
        split = sched.views[0].last.dist != 0
        sched.run_round(lambda view: choose(view).opposite())
        if split:
            # For odd n, any objectively split round is nontrivial.
            _store_direction(sched, choose)
            return

        # Trivial: all present agents are on one side of the interval,
        # and each agent knows which side it itself is on.
        def on_low_side(view: AgentView) -> bool:
            return lo <= view.agent_id <= mid

        # All agents agree (they are all on the same side); use any.
        if on_low_side(sched.views[0]):
            hi = mid
        else:
            lo = mid + 1
        if lo > hi or hi - lo + 1 < 1:
            raise ProtocolError("bisection exhausted the ID space: bug")


def nmove_seeded_family(
    sched: Scheduler,
    weak: bool = False,
    seed: int = FAMILY_SEED,
    max_probes: Optional[int] = None,
) -> int:
    """Theorem 27: nontrivial move via the published random set sequence.

    Probes rounds defined by pseudo-random subsets of [N] until one is a
    (weak, if requested) nontrivial move.  Returns the number of sets
    probed.  Postcondition: ``nmove.dir`` set.

    Also covers Lemma 15 (common-frame O(log N), even n): pass a
    scheduler whose agents hold a common frame -- membership then fixes
    each agent's objective direction and the same sequence applies.
    """
    rng = random.Random(seed)
    limit = max_probes if max_probes is not None else MAX_FAMILY_PROBES
    n_bound = sched.views[0].id_bound
    for probe in range(1, limit + 1):
        # Derive round membership for every possible ID; each agent reads
        # only its own entry (the sequence is public knowledge).
        draw = rng.getrandbits(n_bound + 1)

        def choose(view: AgentView, draw=draw) -> LocalDirection:
            member = (draw >> view.agent_id) & 1
            return LocalDirection.RIGHT if member else LocalDirection.LEFT

        if _classify(sched, choose, weak=weak):
            _store_direction(sched, choose)
            return probe
    raise ProtocolError(
        f"no nontrivial move within {limit} probes; the published "
        "sequence guarantee failed (bug or adversarial seed collision)"
    )
