"""Neighbor discovery (Algorithm 3): learn gaps and relative chirality.

Runs in the perceptive model, *without* any common frame.  Afterwards
each agent knows, in its own frame:

* ``nbr.gap_right`` / ``nbr.gap_left`` -- the arcs to its two ring
  neighbors;
* ``nbr.same_right`` / ``nbr.same_left`` -- whether each neighbor's
  sense of direction agrees with its own.

Mechanics.  Whenever an agent moves (own-)RIGHT from the start of a
round, its first collision is necessarily ahead on its right, and
``coll() == gap_right / 2`` holds *iff* the right neighbor moved toward
it from the round's start (a delayed or reflected approach meets
strictly beyond the midpoint).  Hence:

* ``gap_right = 2 * min`` over collisions observed while moving RIGHT --
  provided some round makes the right neighbor approach head-on.  The
  bit rounds (move RIGHT iff the current ID bit is 1, plus the inverse
  round) provide this for same-chirality neighbors (IDs differ in some
  bit, and differing commands mean approaching motions when chiralities
  agree), while the uniform all-RIGHT round provides it for opposite-
  chirality neighbors (equal commands then mean approaching motions).
* chirality: the neighbor approaches during the uniform round iff its
  chirality differs -- a one-round test per side.

Every information round is followed by a REVERSEDROUND, so gaps are the
same in every probe and positions are restored on exit.  Cost: 4 rounds
per ID bit + 4 uniform rounds = O(log N).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.agent import AgentView, id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.types import LocalDirection, Model

KEY_GAP_RIGHT = "nbr.gap_right"
KEY_GAP_LEFT = "nbr.gap_left"
KEY_SAME_RIGHT = "nbr.same_right"
KEY_SAME_LEFT = "nbr.same_left"

_KEY_RIGHT_OBS = "nbr._right_obs"   # collisions seen while moving RIGHT
_KEY_LEFT_OBS = "nbr._left_obs"     # collisions seen while moving LEFT
_KEY_UNIFORM_R = "nbr._uniform_right_coll"
_KEY_UNIFORM_L = "nbr._uniform_left_coll"


def _probe(sched: Scheduler, choose, uniform_key: Optional[str]) -> None:
    """Run choose + its reversal; file each agent's coll() by direction."""
    directions = {}

    def deciding(view: AgentView) -> LocalDirection:
        d = choose(view)
        directions[view.agent_id] = d
        return d

    sched.run_round(deciding)

    def record(view: AgentView) -> None:
        moved = directions[view.agent_id]
        key = _KEY_RIGHT_OBS if moved is LocalDirection.RIGHT else _KEY_LEFT_OBS
        if view.last.coll is not None:
            view.memory[key].append(view.last.coll)
        if uniform_key is not None:
            view.memory[uniform_key] = view.last.coll

    sched.for_each_agent(record)
    sched.run_round(lambda view: choose(view).opposite())


def discover_neighbors(sched: Scheduler) -> None:
    """Algorithm 3.  Perceptive model only; no common frame required."""
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("neighbor discovery requires the perceptive model")

    def init(view: AgentView) -> None:
        view.memory[_KEY_RIGHT_OBS] = []
        view.memory[_KEY_LEFT_OBS] = []

    sched.for_each_agent(init)

    bits = id_bits(sched.views[0].id_bound)
    for bit in range(bits):

        def bit_round(view: AgentView, bit=bit) -> LocalDirection:
            return (
                LocalDirection.RIGHT
                if view.id_bit(bit) == 1
                else LocalDirection.LEFT
            )

        _probe(sched, bit_round, uniform_key=None)
        _probe(
            sched, lambda view, bit=bit: bit_round(view, bit).opposite(),
            uniform_key=None,
        )

    _probe(sched, lambda view: LocalDirection.RIGHT, uniform_key=_KEY_UNIFORM_R)
    _probe(sched, lambda view: LocalDirection.LEFT, uniform_key=_KEY_UNIFORM_L)

    def conclude(view: AgentView) -> None:
        right_obs: List[Fraction] = view.memory.pop(_KEY_RIGHT_OBS)
        left_obs: List[Fraction] = view.memory.pop(_KEY_LEFT_OBS)
        if not right_obs or not left_obs:
            raise ProtocolError(
                f"agent {view.agent_id} saw no collision on one side; "
                "impossible for n > 4 with unique IDs"
            )
        gap_right = 2 * min(right_obs)
        gap_left = 2 * min(left_obs)
        view.memory[KEY_GAP_RIGHT] = gap_right
        view.memory[KEY_GAP_LEFT] = gap_left
        # Chirality tests: in the all-RIGHT round every agent moves its
        # own right, so my right neighbor approached me iff it is
        # flipped relative to me; symmetrically for all-LEFT.
        uniform_r = view.memory.pop(_KEY_UNIFORM_R)
        uniform_l = view.memory.pop(_KEY_UNIFORM_L)
        view.memory[KEY_SAME_RIGHT] = uniform_r != gap_right / 2
        view.memory[KEY_SAME_LEFT] = uniform_l != gap_left / 2

    sched.for_each_agent(conclude)


def neighbor_info(view: AgentView) -> Tuple[Fraction, Fraction, bool, bool]:
    """(gap_right, gap_left, same_right, same_left) for this agent."""
    try:
        return (
            view.memory[KEY_GAP_RIGHT],
            view.memory[KEY_GAP_LEFT],
            view.memory[KEY_SAME_RIGHT],
            view.memory[KEY_SAME_LEFT],
        )
    except KeyError:
        raise ProtocolError("neighbor discovery has not run") from None
