"""The paper's protocol suite, written against agent-local views.

Every protocol here follows the same contract:

* it drives rounds through a :class:`repro.core.scheduler.Scheduler`;
* agent-side state lives in ``AgentView.memory`` under namespaced keys;
* per-agent decisions are computed from that agent's view alone;
* unless documented otherwise, protocols are *position restoring*: every
  information-gathering round is paired with a REVERSEDROUND, so the
  configuration at exit equals the configuration at entry.  This keeps
  the final location-discovery phase expressed in the initial frame
  (the paper's footnote 1 discusses the same device).
"""

from repro.protocols.base import (
    CoordinationResult,
    LocationDiscoveryResult,
    KEY_FRAME_FLIP,
    KEY_LEADER,
    KEY_NMOVE_DIR,
)

__all__ = [
    "CoordinationResult",
    "LocationDiscoveryResult",
    "KEY_FRAME_FLIP",
    "KEY_LEADER",
    "KEY_NMOVE_DIR",
]
