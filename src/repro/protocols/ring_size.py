"""Ring-size (and parity) discovery -- the paper's deferred question.

Section I-F defers "the problem of determining the parity of n" to the
full version.  This module settles it constructively for two of the
three models, with pipelines that never consult the a-priori parity
bit:

* **Lazy model**: the parity-free coordination chain (published
  distinguisher sequence -> Algorithm 1 -> Algorithm 2) elects a leader
  without knowing the parity; the rotation-1 sweep then visits every
  slot and each agent's gap total reaches exactly 1 after precisely n
  rounds -- a self-terminating census.  Cost n + O(log N).
* **Perceptive model**: NMoveS -> Algorithm 1 -> Algorithm 2 ->
  neighbor discovery -> RingDist; the leader's anticlockwise neighbor
  learns n as its own label and the rotation-coded broadcast publishes
  it.  Cost O(√n log N) + n is *not* needed: the whole pipeline is
  sublinear in n except for nothing -- ring size costs O(√n log N).

* **Basic model**: the analogous census is ambiguous.  Every basic
  round has even rotation index relative to the agent count it visits:
  the rotation-2 sweep's stopping statistic t* equals n for odd n but
  n/2 for even n, so observing t* leaves {t*, 2t*} indistinguishable
  without further information -- the same parity obstruction as
  Lemma 5.  We refuse rather than guess.

Every agent ends with n under ``ld.n`` and its parity under
``ringsize.parity_even``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_LEADER,
    KEY_RING_SIZE,
    aligned_direction,
)
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
)
from repro.protocols.leader_election import elect_leader_with_nontrivial_move
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.nontrivial_move import nmove_seeded_family
from repro.protocols.nmove_perceptive import nmove_perceptive
from repro.protocols.ring_distance import publish_ring_size, ring_distances
from repro.types import LocalDirection, Model

KEY_PARITY = "ringsize.parity_even"


def _census_sweep_lazy(sched: Scheduler) -> int:
    """Rotation-1 rounds until each agent's collected gaps total 1.

    Unlike the location-discovery sweep this needs no reconstruction --
    only the stopping time, which *is* n.
    """
    sched.for_each_agent(
        lambda view: view.memory.__setitem__("ringsize._acc", Fraction(0))
    )

    def choose(view: AgentView) -> LocalDirection:
        if view.memory.get(KEY_LEADER):
            return aligned_direction(view, LocalDirection.RIGHT)
        return LocalDirection.IDLE

    rounds = 0
    while True:
        sched.run_round(choose)
        rounds += 1

        def accumulate(view: AgentView) -> None:
            from repro.protocols.base import common_dist

            view.memory["ringsize._acc"] += common_dist(view, view.last.dist)

        sched.for_each_agent(accumulate)
        if sched.views[0].memory["ringsize._acc"] == 1:
            break
        if rounds > 4 * sched.state.n + 8:
            raise ProtocolError("census sweep failed to close: bug")
    sched.for_each_agent(lambda view: view.memory.pop("ringsize._acc"))
    return rounds


def discover_ring_size(sched: Scheduler) -> int:
    """Determine n exactly, without using the a-priori parity bit.

    Returns n; every agent stores it under ``ld.n`` and the parity
    under ``ringsize.parity_even``.

    Raises:
        ProtocolError: In the basic model, where the census statistic
            is parity-ambiguous (see module docstring).
    """
    if sched.model is Model.BASIC:
        raise ProtocolError(
            "ring-size discovery is parity-ambiguous in the basic model: "
            "a rotation-2 census stops after n rounds for odd n but n/2 "
            "for even n; use the lazy or perceptive model"
        )

    # Parity-free coordination chain.
    if sched.model is Model.PERCEPTIVE:
        nmove_perceptive(sched)
    else:
        nmove_seeded_family(sched)
    agree_direction_from_nontrivial_move(sched)
    elect_leader_with_nontrivial_move(sched)

    if sched.model is Model.PERCEPTIVE:
        from repro.protocols.neighbor_discovery import KEY_GAP_RIGHT

        if any(KEY_GAP_RIGHT not in v.memory for v in sched.views):
            discover_neighbors(sched)
        ring_distances(sched)
        n = publish_ring_size(sched)
    else:
        n = _census_sweep_lazy(sched)
        sched.for_each_agent(
            lambda view: view.memory.__setitem__(KEY_RING_SIZE, n)
        )

    sched.for_each_agent(
        lambda view: view.memory.__setitem__(KEY_PARITY, n % 2 == 0)
    )
    values = {v.memory[KEY_RING_SIZE] for v in sched.views}
    if values != {n}:
        raise ProtocolError(f"ring-size discovery diverged: {values}")
    return n
