"""Global bit broadcast via rotation-coded rounds.

A single designated agent can announce one bit per round to the entire
ring: everyone else moves common-LEFT, and the announcer moves
common-RIGHT for 1 or common-LEFT for 0.  The round's rotation index is
2 - n ≢ 0 (mod n) in the first case and 0 in the second (for n > 2), so
every agent reads the bit off its own ``dist()``.

The paper uses this implicitly when results of a phase must become
common knowledge (e.g. the ring size n after RingDist, which Algorithm 6
needs); it costs O(log N) rounds for an O(log N)-bit value, within every
pipeline's lower-order budget.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.agent import AgentView, id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import KEY_FRAME_FLIP, aligned_direction
from repro.types import LocalDirection

KEY_BROADCAST_VALUE = "broadcast.value"


def broadcast_value(
    sched: Scheduler,
    is_announcer: Callable[[AgentView], bool],
    value_of: Callable[[AgentView], Optional[int]],
    width: Optional[int] = None,
    result_key: str = KEY_BROADCAST_VALUE,
) -> int:
    """Broadcast an integer from the unique announcer to every agent.

    Args:
        is_announcer: Exactly one agent must answer True.
        value_of: The announcer's value (asked only of the announcer).
        width: Bits to transmit; defaults to ``id_bits(N)``.
        result_key: Memory key under which every agent stores the value.

    Returns:
        The broadcast value.  Costs ``2 * width`` rounds (each bit round
        is paired with a restoring reversed round).
    """
    if any(KEY_FRAME_FLIP not in v.memory for v in sched.views):
        raise ProtocolError("global broadcast requires a common frame")
    announcers = [v for v in sched.views if is_announcer(v)]
    if len(announcers) != 1:
        raise ProtocolError(
            f"broadcast requires exactly one announcer, found {len(announcers)}"
        )
    value = value_of(announcers[0])
    if value is None or value < 0:
        raise ProtocolError("announcer must hold a non-negative value")
    bits = width if width is not None else id_bits(sched.views[0].id_bound)
    if value >= (1 << bits):
        raise ProtocolError(f"value {value} does not fit in {bits} bits")

    for view in sched.views:
        view.memory["broadcast._acc"] = 0

    for bit in range(bits):

        def choose(view: AgentView, bit=bit) -> LocalDirection:
            if is_announcer(view) and ((value_of(view) >> bit) & 1):
                return aligned_direction(view, LocalDirection.RIGHT)
            return aligned_direction(view, LocalDirection.LEFT)

        sched.run_round(choose)

        def read(view: AgentView, bit=bit) -> None:
            if view.last.dist != 0:
                view.memory["broadcast._acc"] |= 1 << bit

        sched.for_each_agent(read)
        sched.run_round(lambda view: choose(view).opposite())

    def conclude(view: AgentView) -> None:
        view.memory[result_key] = view.memory.pop("broadcast._acc")

    sched.for_each_agent(conclude)

    results = {v.memory[result_key] for v in sched.views}
    if results != {value}:
        raise ProtocolError(f"broadcast diverged: {results} != {value}")
    return value
