"""RingDist (Algorithm 5): every agent learns its ring distance to the
leader in O(√n log N) rounds, perceptive model.

Labels are 1-based: the leader is a_1 and a_{i+1} sits i ring places
common-clockwise from it.  The protocol needs the leader elected, a
common frame, and neighbor discovery (for the relay channel).

Phases per iteration i (k = 2^i):

1. **y-phase**: run Shift(-k/2) k times.  Each round rotates everyone
   back by k slots, and the backward arc (1 - common ``dist()``) of the
   j-th round equals y_j = x_{l-jk} + ... + x_{l-(j-1)k-1} for the agent
   whose label is l -- a block of k gaps walking backwards (Prop 37).
   Then the k rounds are reversed to restore positions.
2. **z-phase**: run Shift(k).  Labels <= k move clockwise, everyone else
   anticlockwise, so there is a single converging boundary behind a_k,
   and the first collision of a_l (l > k) happens after the arc
   z = (x_k + ... + x_{l-1})/2.  One reversed Shift restores positions.
3. **match**: 2z and the prefix sums of y are both sums of the same
   backward gap-walk ending at x_{l-1}; since gaps are positive the
   walk's sums strictly increase, so 2z = y_1 + ... + y_j holds iff
   l = k + jk (Cor 38).  Matching agents learn their label.
4. **label flood**: freshly labelled agents broadcast their label k hops
   both ways (Cor 34 relay); receivers at hop h on the common-left of a
   sender with label m adopt m + h, on the common-right m - h.
5. **CheckCompleteness**: the leader's common-left neighbor (which knows
   it is a_n from the leader's initial 4-hop marker flood) moves
   common-RIGHT iff it has a label, everyone else common-LEFT.  A
   nonzero rotation index tells everyone the labelling is complete --
   a_n has the largest label, and coverage grows as a prefix interval.

Finally a_n knows n (= its own label), and
:func:`publish_ring_size` broadcasts it to everyone (O(log N) rounds).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.core.agent import AgentView, id_bits
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LABEL,
    KEY_LEADER,
    KEY_RING_SIZE,
    aligned_direction,
    common_dist,
)
from repro.protocols.bitcomm import received_messages, relay_flood
from repro.protocols.global_broadcast import broadcast_value
from repro.protocols.neighbor_discovery import KEY_GAP_RIGHT
from repro.types import LocalDirection, Model

KEY_IS_LAST = "ringdist.is_last"
_KEY_Y = "ringdist._y"
_KEY_Z = "ringdist._z"
_KEY_FRESH = "ringdist._fresh"

_LEADER_MARKER_DISTANCE = 4


def _common_side(view: AgentView, own_side: str) -> str:
    """Translate an own-frame side label into the common frame."""
    if not view.memory[KEY_FRAME_FLIP]:
        return own_side
    return "left" if own_side == "right" else "right"


def _shift_choice(view: AgentView, threshold: int, low_right: bool):
    """Direction for Shift rounds: labelled agents with label <=
    ``threshold`` move common-RIGHT iff ``low_right`` (LEFT otherwise);
    all other agents move the opposite way."""
    label = view.memory.get(KEY_LABEL)
    low = label is not None and label <= threshold
    if low == low_right:
        return aligned_direction(view, LocalDirection.RIGHT)
    return aligned_direction(view, LocalDirection.LEFT)


def _seed_labels_from_leader(sched: Scheduler) -> None:
    """Leader marker flood: labels 2..5 learned; a_n identified."""

    def init(view: AgentView) -> None:
        view.memory[KEY_LABEL] = 1 if view.memory.get(KEY_LEADER) else None
        view.memory[KEY_IS_LAST] = False

    sched.for_each_agent(init)
    relay_flood(
        sched,
        lambda view: 1 if view.memory.get(KEY_LEADER) else None,
        distance=_LEADER_MARKER_DISTANCE,
        width=1,
    )

    def conclude(view: AgentView) -> None:
        for own_side, hop, _value in received_messages(view):
            side = _common_side(view, own_side)
            if side == "left":
                # The leader is hop places common-anticlockwise of me.
                if view.memory[KEY_LABEL] is None:
                    view.memory[KEY_LABEL] = 1 + hop
            else:
                if hop == 1:
                    view.memory[KEY_IS_LAST] = True

    sched.for_each_agent(conclude)


def _check_completeness(sched: Scheduler) -> bool:
    """One probe + restore; True iff a_n (hence everyone) is labelled."""

    def choose(view: AgentView) -> LocalDirection:
        if view.memory.get(KEY_IS_LAST) and view.memory.get(KEY_LABEL):
            return aligned_direction(view, LocalDirection.RIGHT)
        return aligned_direction(view, LocalDirection.LEFT)

    sched.run_round(choose)
    done = sched.views[0].last.dist != 0
    sched.run_round(lambda view: choose(view).opposite())
    return done


def ring_distances(sched: Scheduler, on_iteration=None) -> None:
    """Algorithm 5: assign every agent its 1-based ring label.

    Preconditions: perceptive model, elected leader, common frame,
    neighbor discovery completed.  Postcondition: every agent holds
    ``ringdist.label``.

    Args:
        on_iteration: Optional harness callback invoked as
            ``on_iteration(k)`` after the seed phase (k = 1) and after
            each main-loop iteration (k = 2^i); used by the Figure 3
            anatomy experiment to snapshot labelling progress.
    """
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("RingDist requires the perceptive model")
    if any(KEY_GAP_RIGHT not in v.memory for v in sched.views):
        raise ProtocolError("RingDist requires neighbor discovery")
    if any(KEY_FRAME_FLIP not in v.memory for v in sched.views):
        raise ProtocolError("RingDist requires a common frame")

    label_width = id_bits(sched.views[0].id_bound)
    _seed_labels_from_leader(sched)
    if on_iteration is not None:
        on_iteration(1)
    if _check_completeness(sched):
        return

    max_iterations = id_bits(sched.views[0].id_bound) + 2
    for i in range(1, max_iterations + 1):
        k = 1 << i

        # --- y-phase -------------------------------------------------
        sched.for_each_agent(lambda v: v.memory.__setitem__(_KEY_Y, []))
        for _j in range(k):
            sched.run_round(
                lambda view: _shift_choice(view, k // 2, low_right=False)
            )

            def harvest_y(view: AgentView) -> None:
                d = common_dist(view, view.last.dist)
                if d == 0:
                    raise ProtocolError(
                        "Shift(-k/2) had rotation 0: k reached n; "
                        "the completeness check should have fired earlier"
                    )
                view.memory[_KEY_Y].append(Fraction(1) - d)

            sched.for_each_agent(harvest_y)
        for _j in range(k):
            sched.run_round(
                lambda view: _shift_choice(view, k // 2, low_right=True)
            )

        # --- z-phase -------------------------------------------------
        sched.run_round(lambda view: _shift_choice(view, k, low_right=True))
        sched.for_each_agent(
            lambda view: view.memory.__setitem__(_KEY_Z, view.last.coll)
        )
        sched.run_round(lambda view: _shift_choice(view, k, low_right=False))

        # --- match ----------------------------------------------------
        def match(view: AgentView, k=k) -> None:
            view.memory[_KEY_FRESH] = False
            label = view.memory.get(KEY_LABEL)
            if label is not None:
                # The paper's marking excludes only a_1..a_k; an agent
                # that already knows a label of the form k + jk must
                # still flood it (it may be the only source reaching the
                # not-yet-labelled tail of the ring).
                j, rem = divmod(label - k, k)
                view.memory[_KEY_FRESH] = rem == 0 and 1 <= j <= k
                return
            z = view.memory[_KEY_Z]
            if z is None:
                return
            prefix = Fraction(0)
            for j, y in enumerate(view.memory[_KEY_Y], start=1):
                prefix += y
                if 2 * z == prefix:
                    view.memory[KEY_LABEL] = k + j * k
                    view.memory[_KEY_FRESH] = True
                    return

        sched.for_each_agent(match)

        # --- label flood ----------------------------------------------
        relay_flood(
            sched,
            lambda view: (
                view.memory[KEY_LABEL] if view.memory[_KEY_FRESH] else None
            ),
            distance=k,
            width=label_width,
        )

        def adopt(view: AgentView) -> None:
            if view.memory.get(KEY_LABEL) is not None:
                return
            for own_side, hop, sender_label in received_messages(view):
                side = _common_side(view, own_side)
                label = (
                    sender_label + hop if side == "left" else sender_label - hop
                )
                if label >= 1:
                    view.memory[KEY_LABEL] = label
                    return

        sched.for_each_agent(adopt)

        if on_iteration is not None:
            on_iteration(k)
        if _check_completeness(sched):
            for view in sched.views:
                view.memory.pop(_KEY_Y, None)
                view.memory.pop(_KEY_Z, None)
                view.memory.pop(_KEY_FRESH, None)
            return

    raise ProtocolError("RingDist did not converge: bug")


def publish_ring_size(sched: Scheduler) -> int:
    """Broadcast n (known to a_n as its own label) to every agent.

    Postcondition: every agent stores n under ``ld.n``.  O(log N) rounds.
    """
    return broadcast_value(
        sched,
        is_announcer=lambda view: bool(view.memory.get(KEY_IS_LAST)),
        value_of=lambda view: view.memory.get(KEY_LABEL),
        result_key=KEY_RING_SIZE,
    )
