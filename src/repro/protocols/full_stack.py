"""Deprecated end-to-end entry points (use :class:`repro.api.RingSession`).

``solve_coordination`` and ``solve_location_discovery`` predate the
protocol registry; they are kept as thin shims that plan and run the
registered pipeline and emit a :class:`DeprecationWarning`.  Results are
identical to the registry path by construction (the shims *are* the
registry path) and tested to stay that way.

The routing table the registry implements, for reference:

===========================  =========================================
Setting                      Pipeline
===========================  =========================================
odd n (any model)            DirAgr (Prop 17, O(1)) -> leader via
                             emptiness bisection (O(log N)) -> NMove
                             from leader (O(1))
even n, basic/lazy           NMove via the published distinguisher
                             sequence (Thm 27) -> DirAgr (Alg 1) ->
                             leader (Alg 2)
even n, perceptive           NMoveS (Alg 4, O(√n log N)) -> DirAgr ->
                             leader (Alg 2)
common chirality declared    leader via emptiness bisection (Lemma 13)
                             -> NMove from leader
===========================  =========================================

Location discovery then runs the best discovery phase for the model:
rotation-1 sweep (lazy, n rounds), rotation-2 sweep (basic, odd n only
-- Lemma 5 forbids even n), or neighbor discovery + RingDist + ring-size
broadcast + Distances (perceptive, even n, n/2 + o(n)).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.scheduler import Scheduler
from repro.protocols.base import (
    CoordinationResult,
    LocationDiscoveryResult,
)
from repro.ring.state import RingState
from repro.types import Model


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old}() is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def solve_coordination(
    state: RingState,
    model: Model = Model.BASIC,
    common_sense: bool = False,
    scheduler: Optional[Scheduler] = None,
    backend: Optional[str] = None,
) -> CoordinationResult:
    """Deprecated: use ``RingSession(...).run("coordination")``.

    Solve direction agreement, leader election and nontrivial move.

    Args:
        state: A fresh ring configuration.
        model: Model variant to run under.
        common_sense: Declare that agents share a sense of direction
            (the Table II setting).  The caller must guarantee it.
        scheduler: Reuse an existing scheduler (e.g. to continue with
            location discovery); a new one is created otherwise.
        backend: Kinematics backend name ("lattice"/"fraction") for a
            newly created scheduler; ignored when ``scheduler`` is given.

    Returns:
        A :class:`CoordinationResult` with the leader's ID and per-phase
        round counts.  Positions are restored to the initial
        configuration on exit.
    """
    from repro.api.session import RingSession

    _warn_deprecated(
        "solve_coordination", 'repro.api.RingSession(...).run("coordination")'
    )
    sched = scheduler or Scheduler(state, model, backend=backend)
    session = RingSession.from_scheduler(sched, common_sense=common_sense)
    return session.run("coordination")


def solve_location_discovery(
    state: RingState,
    model: Model = Model.LAZY,
    common_sense: bool = False,
    backend: Optional[str] = None,
) -> LocationDiscoveryResult:
    """Deprecated: use ``RingSession(...).run("location-discovery")``.

    Full location discovery from a cold start.

    Args:
        backend: Kinematics backend name ("lattice"/"fraction"); the
            default picks :data:`repro.ring.backends.DEFAULT_BACKEND`.

    Raises:
        InfeasibleProblemError: basic model with even n (Lemma 5).

    Returns:
        Per-agent reconstructed gap vectors (see
        :class:`LocationDiscoveryResult`) and per-phase round counts.
    """
    from repro.api.session import RingSession

    _warn_deprecated(
        "solve_location_discovery",
        'repro.api.RingSession(...).run("location-discovery")',
    )
    session = RingSession.from_state(
        state, model=model, backend=backend, common_sense=common_sense
    )
    return session.run("location-discovery")
