"""End-to-end pipelines: solve coordination and location discovery from
scratch, routing to the optimal protocol per Table I / Table II.

These are the library's top-level entry points.  Given a fresh
:class:`~repro.ring.state.RingState` and a model variant they run the
complete phase sequence the paper prescribes for that cell:

===========================  =========================================
Setting                      Pipeline
===========================  =========================================
odd n (any model)            DirAgr (Prop 17, O(1)) -> leader via
                             emptiness bisection (O(log N)) -> NMove
                             from leader (O(1))
even n, basic/lazy           NMove via the published distinguisher
                             sequence (Thm 27) -> DirAgr (Alg 1) ->
                             leader (Alg 2)
even n, perceptive           NMoveS (Alg 4, O(√n log N)) -> DirAgr ->
                             leader (Alg 2)
common chirality declared    leader via emptiness bisection (Lemma 13)
                             -> NMove from leader
===========================  =========================================

Location discovery then runs the best discovery phase for the model:
rotation-1 sweep (lazy, n rounds), rotation-2 sweep (basic, odd n only
-- Lemma 5 forbids even n), or neighbor discovery + RingDist + ring-size
broadcast + Distances (perceptive, even n, n/2 + o(n)).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.protocols.base import (
    CoordinationResult,
    KEY_LD_GAPS,
    LocationDiscoveryResult,
)
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    agree_direction_odd,
    assume_common_frame,
)
from repro.protocols.distances import discover_distances
from repro.protocols.leader_election import (
    elect_leader_common_sense,
    elect_leader_with_nontrivial_move,
)
from repro.protocols.location_discovery import (
    sweep_rotation_one,
    sweep_rotation_two,
)
from repro.protocols.neighbor_discovery import discover_neighbors
from repro.protocols.nontrivial_move import (
    nmove_from_leader,
    nmove_seeded_family,
)
from repro.protocols.nmove_perceptive import nmove_perceptive
from repro.protocols.ring_distance import publish_ring_size, ring_distances
from repro.ring.state import RingState
from repro.types import Model


def _phase(phases: Dict[str, int], sched: Scheduler, name: str, fn) -> None:
    before = sched.rounds
    fn()
    phases[name] = sched.rounds - before


def solve_coordination(
    state: RingState,
    model: Model = Model.BASIC,
    common_sense: bool = False,
    scheduler: Optional[Scheduler] = None,
    backend: Optional[str] = None,
) -> CoordinationResult:
    """Solve direction agreement, leader election and nontrivial move.

    Args:
        state: A fresh ring configuration.
        model: Model variant to run under.
        common_sense: Declare that agents share a sense of direction
            (the Table II setting).  The caller must guarantee it.
        scheduler: Reuse an existing scheduler (e.g. to continue with
            location discovery); a new one is created otherwise.
        backend: Kinematics backend name ("lattice"/"fraction") for a
            newly created scheduler; ignored when ``scheduler`` is given.

    Returns:
        A :class:`CoordinationResult` with the leader's ID and per-phase
        round counts.  Positions are restored to the initial
        configuration on exit.
    """
    sched = scheduler or Scheduler(state, model, backend=backend)
    phases: Dict[str, int] = {}
    parity_even = state.parity_even

    if common_sense:
        _phase(phases, sched, "direction_agreement",
               lambda: assume_common_frame(sched))
        _phase(phases, sched, "leader_election",
               lambda: elect_leader_common_sense(sched))
        _phase(phases, sched, "nontrivial_move",
               lambda: nmove_from_leader(sched))
    elif not parity_even:
        _phase(phases, sched, "direction_agreement",
               lambda: agree_direction_odd(sched))
        _phase(phases, sched, "leader_election",
               lambda: elect_leader_common_sense(sched))
        _phase(phases, sched, "nontrivial_move",
               lambda: nmove_from_leader(sched))
    else:
        if model is Model.PERCEPTIVE:
            _phase(phases, sched, "nontrivial_move",
                   lambda: nmove_perceptive(sched))
        else:
            _phase(phases, sched, "nontrivial_move",
                   lambda: nmove_seeded_family(sched))
        _phase(phases, sched, "direction_agreement",
               lambda: agree_direction_from_nontrivial_move(sched))
        _phase(phases, sched, "leader_election",
               lambda: elect_leader_with_nontrivial_move(sched))

    from repro.protocols.leader_election import leader_id

    return CoordinationResult(
        rounds=sched.rounds,
        leader_id=leader_id(sched),
        rounds_by_phase=phases,
    )


def solve_location_discovery(
    state: RingState,
    model: Model = Model.LAZY,
    common_sense: bool = False,
    backend: Optional[str] = None,
) -> LocationDiscoveryResult:
    """Full location discovery from a cold start.

    Args:
        backend: Kinematics backend name ("lattice"/"fraction"); the
            default picks :data:`repro.ring.backends.DEFAULT_BACKEND`.

    Raises:
        InfeasibleProblemError: basic model with even n (Lemma 5).

    Returns:
        Per-agent reconstructed gap vectors (see
        :class:`LocationDiscoveryResult`) and per-phase round counts.
    """
    if model is Model.BASIC and state.parity_even:
        raise InfeasibleProblemError(
            "location discovery in the basic model with even n is "
            "impossible (Lemma 5): every rotation index is even, so an "
            "agent can never visit odd-ring-distance positions"
        )
    sched = Scheduler(state, model, backend=backend)
    coordination = solve_coordination(
        state, model, common_sense=common_sense, scheduler=sched
    )
    phases = dict(coordination.rounds_by_phase)

    if model is Model.LAZY:
        _phase(phases, sched, "discovery",
               lambda: sweep_rotation_one(sched))
    elif model is Model.BASIC:
        _phase(phases, sched, "discovery",
               lambda: sweep_rotation_two(sched))
    else:
        if state.parity_even:

            def ensure_neighbors() -> None:
                from repro.protocols.neighbor_discovery import KEY_GAP_RIGHT

                # NMoveS may already have run neighbor discovery (it
                # skips it only when its first probe succeeds).
                if any(KEY_GAP_RIGHT not in v.memory for v in sched.views):
                    discover_neighbors(sched)

            _phase(phases, sched, "neighbor_discovery", ensure_neighbors)
            _phase(phases, sched, "ring_distances",
                   lambda: ring_distances(sched))
            _phase(phases, sched, "ring_size_broadcast",
                   lambda: publish_ring_size(sched))
            _phase(phases, sched, "discovery",
                   lambda: discover_distances(sched))
        else:
            # Odd n: the rotation-2 sweep is already optimal up to
            # O(log N) (Table I's odd row); Algorithm 6's alternating
            # pairing needs even n.
            _phase(phases, sched, "discovery",
                   lambda: sweep_rotation_two(sched))

    gaps = []
    for view in sched.views:
        if KEY_LD_GAPS not in view.memory:
            raise ProtocolError("an agent ended without a gap vector: bug")
        gaps.append(list(view.memory[KEY_LD_GAPS]))

    return LocationDiscoveryResult(
        rounds=sched.rounds,
        rounds_by_phase=phases,
        gaps_by_agent=gaps,
    )
