"""Walk-based location discovery (Lemma 16).

With a leader and a common frame, a round in which only the leader moves
common-RIGHT and everyone else idles has rotation index 1 in the common
frame (lazy model); all-common-LEFT-except-the-leader has rotation index
2 (basic model).  Repeating the round n times cycles every agent through
every slot (for index 2 this needs odd n) and returns everyone to the
start, while each agent's per-round ``dist()`` values -- converted into
the common frame -- are windows of the gap vector:

* rotation 1: round t hands the agent the single gap x_{s+t} ahead of
  its current slot, so after n rounds the agent holds the entire gap
  vector starting from its own slot;
* rotation 2 (odd n): round t hands the agent the pair sum
  x_{s+2t} + x_{s+2t+1}; the n cyclic pair sums determine the gaps via
  the odd-circulant inverse.

Agents do not know n in advance; they detect completion locally:
rotation-1 sweeps stop when the collected gaps first sum to 1 (a full
turn), rotation-2 sweeps when the pair sums first total 2 (each gap is
covered exactly twice for odd n).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.analysis.linear_system import solve_cyclic_pair_sums
from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.protocols.base import (
    KEY_FRAME_FLIP,
    KEY_LD_GAPS,
    KEY_LEADER,
    aligned_direction,
    common_dist,
)
from repro.types import LocalDirection, Model

_KEY_SWEEP = "ld._sweep_observations"


def _require_leader_and_frame(sched: Scheduler) -> None:
    if not any(v.memory.get(KEY_LEADER) for v in sched.views):
        raise ProtocolError("location discovery sweep requires a leader")
    if any(KEY_FRAME_FLIP not in v.memory for v in sched.views):
        raise ProtocolError("location discovery sweep requires a common frame")


def sweep_rotation_one(sched: Scheduler) -> int:
    """Lazy-model LD sweep: leader RIGHT, everyone else IDLE, n rounds.

    Postcondition: every agent stores under ``ld.gaps`` the full gap
    vector in common-clockwise order starting at its own slot.  Returns
    the number of rounds used (exactly n; agents detect completion when
    their gaps sum to a full turn).
    """
    if sched.model is not Model.LAZY:
        raise ProtocolError("rotation-1 sweep requires the lazy model")
    _require_leader_and_frame(sched)
    sched.for_each_agent(lambda v: v.memory.__setitem__(_KEY_SWEEP, []))

    def choose(view: AgentView) -> LocalDirection:
        if view.memory.get(KEY_LEADER):
            return aligned_direction(view, LocalDirection.RIGHT)
        return LocalDirection.IDLE

    rounds = 0
    while True:
        sched.run_round(choose)
        rounds += 1

        def harvest(view: AgentView) -> None:
            view.memory[_KEY_SWEEP].append(common_dist(view, view.last.dist))

        sched.for_each_agent(harvest)
        # Completion is a local test: a full turn of gaps has been seen.
        done = sum(sched.views[0].memory[_KEY_SWEEP], Fraction(0)) == 1
        if done:
            break
        if rounds > 4 * sched.state.n + 8:
            raise ProtocolError("rotation-1 sweep failed to close: bug")

    def finish(view: AgentView) -> None:
        gaps: List[Fraction] = view.memory.pop(_KEY_SWEEP)
        if sum(gaps, Fraction(0)) != 1:
            raise ProtocolError("agent's sweep did not cover a full turn")
        view.memory[KEY_LD_GAPS] = gaps

    sched.for_each_agent(finish)
    return rounds


def sweep_rotation_two(sched: Scheduler) -> int:
    """Basic-model LD sweep for odd n: leader RIGHT, others LEFT, n rounds.

    The common-frame rotation index is 2, so each round reports the sum
    of two consecutive gaps; odd n makes the n pair sums invertible.
    Postcondition/return as in :func:`sweep_rotation_one`.

    Raises:
        InfeasibleProblemError: If n is even (Lemma 5: the rotation
            index of every basic round is even, so an agent can only
            visit slots at even ring distance, and location discovery is
            unsolvable).
    """
    if sched.views[0].parity_even:
        raise InfeasibleProblemError(
            "location discovery in the basic model is unsolvable for even n"
        )
    _require_leader_and_frame(sched)
    sched.for_each_agent(lambda v: v.memory.__setitem__(_KEY_SWEEP, []))

    def choose(view: AgentView) -> LocalDirection:
        common = (
            LocalDirection.RIGHT
            if view.memory.get(KEY_LEADER)
            else LocalDirection.LEFT
        )
        return aligned_direction(view, common)

    rounds = 0
    while True:
        sched.run_round(choose)
        rounds += 1

        def harvest(view: AgentView) -> None:
            view.memory[_KEY_SWEEP].append(common_dist(view, view.last.dist))

        sched.for_each_agent(harvest)
        # n pair sums cover every gap exactly twice (odd n): total 2.
        done = sum(sched.views[0].memory[_KEY_SWEEP], Fraction(0)) == 2
        if done:
            break
        if rounds > 4 * sched.state.n + 8:
            raise ProtocolError("rotation-2 sweep failed to close: bug")

    def finish(view: AgentView) -> None:
        collected: List[Fraction] = view.memory.pop(_KEY_SWEEP)
        n = len(collected)
        # Round t was observed from slot (own + 2t), so the pair sum it
        # reports is y_{2t mod n} in own-relative indexing; reorder into
        # consecutive-j form before inverting the odd circulant.
        ordered: List[Fraction] = [Fraction(0)] * n
        for t, value in enumerate(collected):
            ordered[(2 * t) % n] = value
        view.memory[KEY_LD_GAPS] = solve_cyclic_pair_sums(ordered)

    sched.for_each_agent(finish)
    return rounds


def reconstructed_positions(view: AgentView) -> List[Fraction]:
    """Positions of all agents relative to this agent's own position.

    Entry k is the common-clockwise arc from this agent to the agent k
    ring places ahead (entry 0 is 0); derived from ``ld.gaps``.
    """
    gaps = view.memory.get(KEY_LD_GAPS)
    if gaps is None:
        raise ProtocolError("agent has not completed location discovery")
    positions = [Fraction(0)]
    for g in gaps[:-1]:
        positions.append(positions[-1] + g)
    return positions
