"""Neighbor communication built on collisions (Prop 31, Cor 32-34).

After neighbor discovery an agent knows its two gaps and its neighbors'
relative chirality, which turns collision observations into a 1-bit
full-duplex channel to both neighbors:

* **Bit exchange** (:func:`exchange_bits`).  Two probe rounds are run
  from restored positions -- the "bit round" (move own-RIGHT iff the
  bit is 1) and its inverse -- each followed by its REVERSEDROUND.  In
  whichever probe the agent moved own-RIGHT, ``coll() == gap_right/2``
  holds iff the right neighbor moved toward it from the start; combined
  with which probe that was and the neighbor's relative chirality this
  pins down the neighbor's bit.  Mirror logic on the left side.  Cost:
  4 rounds per bit, positions restored.

* **Relay flooding** (:func:`relay_flood`), the sparsed information
  dissemination of Cor 34.  Each agent maintains two registers, one per
  physical side; each relay step forwards the register received from one
  side out of the other side.  "In one side, out the other" is chirality
  independent, so messages travel consistently around the ring even
  when agents disagree on left/right.  Messages are (present, value)
  frames of a fixed bit width; a message received at step t originated
  exactly t hops away on the side it arrived from.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import ProtocolError
from repro.protocols.neighbor_discovery import (
    KEY_GAP_LEFT,
    KEY_GAP_RIGHT,
    KEY_SAME_LEFT,
    KEY_SAME_RIGHT,
)
from repro.types import LocalDirection, Model

KEY_FROM_RIGHT = "comm.bit_from_right"   # bit last received from own-right
KEY_FROM_LEFT = "comm.bit_from_left"
KEY_RECEIVED = "comm.received"           # list of (side, hop, value)

BitFn = Callable[[AgentView], int]


def _require_neighbor_data(view: AgentView) -> None:
    if KEY_GAP_RIGHT not in view.memory:
        raise ProtocolError(
            "bit communication requires neighbor discovery results"
        )


def exchange_bits(sched: Scheduler, bit_of: BitFn) -> None:
    """Every agent transmits one bit to both neighbors; 4 rounds.

    Postcondition: ``comm.bit_from_right`` and ``comm.bit_from_left``
    hold the bits of the agent's own-right and own-left ring neighbors.
    """
    if sched.model is not Model.PERCEPTIVE:
        raise ProtocolError("bit exchange requires the perceptive model")

    bits = {}

    def stash_bit(view: AgentView) -> None:
        _require_neighbor_data(view)
        b = bit_of(view)
        if b not in (0, 1):
            raise ProtocolError(f"bit_of returned non-bit {b!r}")
        bits[view.agent_id] = b

    sched.for_each_agent(stash_bit)

    def probe_choice(view: AgentView) -> LocalDirection:
        return (
            LocalDirection.RIGHT if bits[view.agent_id] == 1 else LocalDirection.LEFT
        )

    colls: List[dict] = []
    for probe_round in (probe_choice, lambda v: probe_choice(v).opposite()):
        sched.run_round(probe_round)
        observed = {}

        def record(view: AgentView) -> None:
            observed[view.agent_id] = view.last.coll

        sched.for_each_agent(record)
        colls.append(observed)
        sched.run_round(lambda v: probe_round(v).opposite())

    def decode(view: AgentView) -> None:
        my_bit = bits[view.agent_id]
        gap_right = view.memory[KEY_GAP_RIGHT]
        gap_left = view.memory[KEY_GAP_LEFT]
        same_right = view.memory[KEY_SAME_RIGHT]
        same_left = view.memory[KEY_SAME_LEFT]

        # Index of the probe in which I moved own-RIGHT / own-LEFT.
        right_probe = 0 if my_bit == 1 else 1
        left_probe = 1 - right_probe

        approached_r = colls[right_probe][view.agent_id] == gap_right / 2
        approached_l = colls[left_probe][view.agent_id] == gap_left / 2

        # Was the right neighbor moving toward me (my-leftward) during
        # probe 0?  Probe 1 is everyone's opposite of probe 0.
        r_toward_in_probe0 = approached_r if right_probe == 0 else not approached_r
        l_toward_in_probe0 = approached_l if left_probe == 0 else not approached_l

        # Right neighbor's probe-0 own direction was RIGHT (bit 1) iff:
        # same chirality -> own-RIGHT points away from me (my-rightward);
        # flipped       -> own-RIGHT points toward me.
        view.memory[KEY_FROM_RIGHT] = int(
            r_toward_in_probe0 == (not same_right)
        )
        # Left neighbor's own-RIGHT points toward me iff same chirality.
        view.memory[KEY_FROM_LEFT] = int(l_toward_in_probe0 == same_left)

    sched.for_each_agent(decode)


def exchange_frame(
    sched: Scheduler, value_of: Callable[[AgentView], Optional[int]], width: int
) -> None:
    """Exchange a (present, value) frame with both neighbors.

    ``None`` encodes "nothing to transmit".  Costs 4 * (width + 1)
    rounds.  Postcondition: ``comm.frame_from_right`` /
    ``comm.frame_from_left`` hold Optional[int] values.
    """
    frames = {}

    def stash(view: AgentView) -> None:
        v = value_of(view)
        if v is not None and not (0 <= v < (1 << width)):
            raise ProtocolError(f"value {v} does not fit in {width} bits")
        frames[view.agent_id] = v

    sched.for_each_agent(stash)

    received_right: List[int] = []
    received_left: List[int] = []

    def bit_slice(view: AgentView, slot: int) -> int:
        v = frames[view.agent_id]
        if slot == 0:
            return 1 if v is not None else 0
        if v is None:
            return 0
        return (v >> (slot - 1)) & 1

    collected = [dict(), dict()]  # per-agent accumulated ints (right, left)
    present = [dict(), dict()]
    for slot in range(width + 1):
        exchange_bits(sched, lambda view, slot=slot: bit_slice(view, slot))

        def fold(view: AgentView, slot=slot) -> None:
            for side, key in ((0, KEY_FROM_RIGHT), (1, KEY_FROM_LEFT)):
                b = view.memory[key]
                if slot == 0:
                    present[side][view.agent_id] = bool(b)
                    collected[side][view.agent_id] = 0
                elif b:
                    collected[side][view.agent_id] |= 1 << (slot - 1)

        sched.for_each_agent(fold)

    def finish(view: AgentView) -> None:
        view.memory["comm.frame_from_right"] = (
            collected[0][view.agent_id] if present[0][view.agent_id] else None
        )
        view.memory["comm.frame_from_left"] = (
            collected[1][view.agent_id] if present[1][view.agent_id] else None
        )

    sched.for_each_agent(finish)
    del received_right, received_left


def relay_flood(
    sched: Scheduler,
    initial_value_of: Callable[[AgentView], Optional[int]],
    distance: int,
    width: int,
) -> None:
    """Cor 34: flood marked agents' values up to ``distance`` hops.

    Agents whose ``initial_value_of`` is not None are sources.  After
    the flood each agent's ``comm.received`` holds a list of
    ``(side, hop, value)`` with side in {"left", "right"} (own frame):
    a source ``hop`` ring-places away on that side announced ``value``.
    Overlapping sources on the same side and hop overwrite each other,
    so callers must keep sources ``>= distance`` apart (the paper's
    sparseness condition) or accept last-writer semantics.

    Cost: ``8 * (width + 1) * distance`` rounds.
    """
    out_right = {}
    out_left = {}

    def init(view: AgentView) -> None:
        v = initial_value_of(view)
        out_right[view.agent_id] = v
        out_left[view.agent_id] = v
        view.memory[KEY_RECEIVED] = []

    sched.for_each_agent(init)

    for hop in range(1, distance + 1):
        # Slot A: everyone transmits its rightward stream register.
        exchange_frame(sched, lambda view: out_right[view.agent_id], width)

        def receive_a(view: AgentView) -> None:
            # My left physical neighbor's rightward stream is destined
            # to me iff, from its perspective, I am its own-right -- i.e.
            # iff our chiralities agree.
            if view.memory[KEY_SAME_LEFT]:
                view.memory["comm._incoming_right"] = view.memory[
                    "comm.frame_from_left"
                ]
            # If my right neighbor is flipped, its "rightward" stream
            # actually comes to me.
            if not view.memory[KEY_SAME_RIGHT]:
                view.memory["comm._incoming_left"] = view.memory[
                    "comm.frame_from_right"
                ]

        sched.for_each_agent(receive_a)

        # Slot B: everyone transmits its leftward stream register.
        exchange_frame(sched, lambda view: out_left[view.agent_id], width)

        def receive_b(view: AgentView) -> None:
            if not view.memory[KEY_SAME_LEFT]:
                view.memory["comm._incoming_right"] = view.memory[
                    "comm.frame_from_left"
                ]
            if view.memory[KEY_SAME_RIGHT]:
                view.memory["comm._incoming_left"] = view.memory[
                    "comm.frame_from_right"
                ]

        sched.for_each_agent(receive_b)

        def settle(view: AgentView, hop=hop) -> None:
            inc_from_left = view.memory.pop("comm._incoming_right", None)
            inc_from_right = view.memory.pop("comm._incoming_left", None)
            if inc_from_left is not None:
                view.memory[KEY_RECEIVED].append(("left", hop, inc_from_left))
            if inc_from_right is not None:
                view.memory[KEY_RECEIVED].append(("right", hop, inc_from_right))
            out_right[view.agent_id] = inc_from_left
            out_left[view.agent_id] = inc_from_right

        sched.for_each_agent(settle)


def received_messages(view: AgentView) -> List[Tuple[str, int, int]]:
    """All (side, hop, value) messages this agent has received."""
    return list(view.memory.get(KEY_RECEIVED, []))
