"""Rotation-index probes (Lemma 2 and the RI(B) tests of Section II).

A round's rotation index r is global, so simple functions of it are
consensus observations:

* r = 0  ⇔  every agent's ``dist()`` is 0  ⇔  any agent's ``dist()`` is 0;
* running the *same* round twice, each agent's two measurements satisfy
  d1 + d2 = 1 exactly when r = n/2 (the two half-turns complete the
  circle); d1 + d2 < 1 means the rotation is less than half a turn in
  the agent's own clockwise direction, d1 + d2 > 1 more than half.

Each probe can restore positions by appending reversed rounds, so
callers can compose probes without tracking drift.
"""

from __future__ import annotations

import enum
from typing import Callable, Set

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.types import LocalDirection

ChoiceFn = Callable[[AgentView], LocalDirection]

KEY_PROBE_ZERO = "probe.zero"      # bool: was the probed round's r == 0?
KEY_PROBE_CLASS = "probe.class"    # RotationClass of the probed round


class RotationClass(enum.Enum):
    """Classification of a round's rotation index, per Lemma 2.

    ``BELOW_HALF``/``ABOVE_HALF`` are relative to each agent's own sense
    of direction: a rotation below half a turn clockwise for one
    chirality is above half for the other.  ``ZERO`` and ``HALF`` are
    absolute.  ``HALF`` can only occur for even n.
    """

    ZERO = "zero"
    HALF = "half"
    BELOW_HALF = "below_half"
    ABOVE_HALF = "above_half"

    @property
    def trivial(self) -> bool:
        """Whether the round is a trivial move (r in {0, n/2})."""
        return self in (RotationClass.ZERO, RotationClass.HALF)

    @property
    def weakly_trivial(self) -> bool:
        """Whether the round fails even the *weak* nontrivial move test
        (only r = 0 counts as weakly trivial)."""
        return self is RotationClass.ZERO


def probe_zero(sched: Scheduler, choose: ChoiceFn, restore: bool = True) -> bool:
    """Run the round once and report whether its rotation index was 0.

    Every agent stores the (consensus) answer under ``probe.zero``.
    Costs 1 round, or 2 with ``restore``.
    """
    sched.run_round(choose)
    sched.for_each_agent(
        lambda view: view.memory.__setitem__(KEY_PROBE_ZERO, view.last.dist == 0)
    )
    if restore:
        sched.run_round(lambda view: choose(view).opposite())
    return bool(sched.views[0].memory[KEY_PROBE_ZERO])


def classify_rotation(
    sched: Scheduler, choose: ChoiceFn, restore: bool = True
) -> None:
    """Lemma 2: classify the probed round's rotation index.

    Runs the round twice (and, with ``restore``, two reversed rounds).
    Each agent stores its own :class:`RotationClass` under
    ``probe.class``.  ``ZERO``/``HALF`` verdicts agree across agents;
    ``BELOW_HALF``/``ABOVE_HALF`` are frame-relative, but *triviality*
    (the property protocols branch on) is consensus.
    """
    sched.run_round(choose)
    sched.for_each_agent(
        lambda view: view.memory.__setitem__("probe._d1", view.last.dist)
    )
    sched.run_round(choose)

    def classify(view: AgentView) -> None:
        d1 = view.memory.pop("probe._d1")
        d2 = view.last.dist
        if d1 == 0:
            verdict = RotationClass.ZERO
        elif d1 + d2 == 1:
            verdict = RotationClass.HALF
        elif d1 + d2 < 1:
            verdict = RotationClass.BELOW_HALF
        else:
            verdict = RotationClass.ABOVE_HALF
        view.memory[KEY_PROBE_CLASS] = verdict

    sched.for_each_agent(classify)
    if restore:
        reversed_choice = lambda view: choose(view).opposite()  # noqa: E731
        sched.run_round(reversed_choice)
        sched.run_round(reversed_choice)


def probed_class(view: AgentView) -> RotationClass:
    """The verdict this agent stored during the last classification."""
    return view.memory[KEY_PROBE_CLASS]


def membership_choice(
    members: Set[int],
    member_dir: LocalDirection = LocalDirection.RIGHT,
) -> ChoiceFn:
    """Choice function: agents whose ID is in ``members`` play
    ``member_dir``; everyone else plays the opposite direction."""
    other = member_dir.opposite()

    def choose(view: AgentView) -> LocalDirection:
        return member_dir if view.agent_id in members else other

    return choose


def ri_is_zero(sched: Scheduler, members: Set[int], restore: bool = True) -> bool:
    """The RI(B) = 0 test of Section II: members move RIGHT, everyone
    else LEFT; the round's rotation index is zero iff nobody's position
    changed.  Costs 1 round (2 with restore)."""
    return probe_zero(sched, membership_choice(members), restore=restore)
