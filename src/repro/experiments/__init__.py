"""Experiment drivers that regenerate the paper's tables and figures.

Each module mirrors one artifact of the evaluation:

* :mod:`repro.experiments.table1` -- Table I (general setting);
* :mod:`repro.experiments.table2` -- Table II (common sense of direction);
* :mod:`repro.experiments.figures` -- Figures 1-2 (reduction costs) and
  Figure 3 (RingDist anatomy);
* :mod:`repro.experiments.lower_bounds` -- Lemmas 5-6 and the
  distinguisher size bounds (Cor 29).

The drivers return structured rows and can render aligned-text tables;
the benchmark suite wraps them with pytest-benchmark for timing.
"""

from repro.experiments.harness import ExperimentRow, render_table, geometric_sizes

__all__ = ["ExperimentRow", "render_table", "geometric_sizes"]
